"""Command-line driver: run the analysis for a domain and print the paper-
style artifacts.

Usage::

    repro-cat run  --domain branch                  # pipeline + metric table
    repro-cat noise --domain dcache                 # Fig 2-style variability plot
    repro-cat list-events --system aurora --prefix BR_
    repro-cat run --domain cpu_flops --save-presets presets.json
    repro-cat sweep --systems aurora,frontier-cpu --domains cpu_flops,branch
    repro-cat serve --catalog ./catalog --cache-dir ./cache
    repro-cat catalog list --root ./catalog
    repro-cat vet run --system aurora --output vet.json
    repro-cat run --domain branch --priors vet.json
    repro-cat vet drift --root ./catalog

Exit codes follow one convention across every verb: 0 success, 1 the
analysis itself failed (failed sweep task, strict-mode guard violation,
unaccounted faults), 2 usage or validation error (bad flags, unknown
names, malformed inputs).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.pipeline import AnalysisPipeline, DOMAIN_CONFIGS, PipelineConfig
from repro.core.sweep import SWEEP_SYSTEMS, SYSTEM_DOMAINS
from repro.guard import GuardViolation
from repro.hardware.systems import aurora_node, frontier_node
from repro.io.store import save_presets
from repro.viz.ascii import log_scatter
from repro.viz.series import fig2_series

__all__ = ["main"]

_DOMAIN_SYSTEM = {
    "cpu_flops": "aurora",
    "branch": "aurora",
    "dcache": "aurora",
    "dtlb": "aurora",
    "gpu_flops": "frontier",
}


def _usage_exit(message: str) -> SystemExit:
    """Usage/validation failure: message on stderr, exit status 2 (the
    same status argparse itself uses for bad flags)."""
    print(message, file=sys.stderr)
    return SystemExit(2)


def _node(system: str, seed: int):
    if system == "aurora":
        return aurora_node(seed=seed)
    if system == "frontier":
        return frontier_node(seed=seed)
    raise _usage_exit(
        f"unknown system {system!r}; expected aurora or frontier"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cat",
        description="Automated definition of performance metrics from raw "
        "hardware events (IPDPSW'24 reproduction).",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full analysis for a domain")
    run.add_argument("--domain", required=True, choices=sorted(DOMAIN_CONFIGS))
    run.add_argument("--seed", type=int, default=2024)
    run.add_argument("--tau", type=float, default=None, help="noise threshold")
    run.add_argument("--alpha", type=float, default=None, help="QRCP tolerance")
    run.add_argument("--repetitions", type=int, default=None)
    run.add_argument("--rounded", action="store_true", help="show rounded coefficients")
    run.add_argument("--save-presets", metavar="PATH", default=None)
    run.add_argument(
        "--rcond",
        type=float,
        default=None,
        help="least-squares rank-truncation threshold "
        "(default: LAPACK convention max(m,n)*eps)",
    )
    run.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 1) instead of printing metrics whose certification "
        "is 'reject' or whose selection needed guarded intervention",
    )
    run.add_argument(
        "--no-guard",
        action="store_true",
        help="disable the numerical-robustness layer "
        "(sentinels, fallback ladders, certification)",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record an observability trace of the run and write it as "
        "JSONL (render it with: repro-cat trace PATH)",
    )
    run.add_argument(
        "--priors",
        metavar="PATH",
        default=None,
        help="validation report (from: repro-cat vet run --output) whose "
        "verdicts gate the analysis: refuted events are excluded before "
        "QRCP selection and every metric carries the vet evidence",
    )

    noise = sub.add_parser("noise", help="Fig 2-style variability plot")
    noise.add_argument("--domain", required=True, choices=sorted(DOMAIN_CONFIGS))
    noise.add_argument("--seed", type=int, default=2024)

    report = sub.add_parser(
        "report", help="full paper-style markdown report for a domain"
    )
    report.add_argument("--domain", required=True, choices=sorted(DOMAIN_CONFIGS))
    report.add_argument("--seed", type=int, default=2024)
    report.add_argument("--output", metavar="PATH", default=None)
    report.add_argument(
        "--auto-thresholds",
        action="store_true",
        help="derive tau and alpha from the data (Section-VII extension) "
        "instead of the paper's constants",
    )

    presets = sub.add_parser(
        "presets", help="derive the full preset table for a system"
    )
    presets.add_argument("--system", required=True, choices=("aurora", "frontier"))
    presets.add_argument("--seed", type=int, default=2024)
    presets.add_argument("--output", metavar="PATH", default=None)

    listing = sub.add_parser("list-events", help="enumerate catalog events")
    listing.add_argument("--system", required=True, choices=("aurora", "frontier"))
    listing.add_argument("--prefix", default=None)
    listing.add_argument("--seed", type=int, default=2024)

    sweep = sub.add_parser(
        "sweep",
        help="fan (system x domain) pipelines across a worker pool; "
        "results print in deterministic task order",
    )
    sweep.add_argument(
        "--systems",
        default="aurora,frontier",
        help="comma-separated: aurora, frontier, frontier-cpu",
    )
    sweep.add_argument(
        "--domains",
        default="cpu_flops,gpu_flops,branch,dcache",
        help="comma-separated domains; incompatible (system, domain) pairs "
        "are skipped",
    )
    sweep.add_argument("--seed", type=int, default=2024)
    sweep.add_argument("--workers", type=int, default=None, help="pool size")
    sweep.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default="process",
    )
    sweep.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed measurement cache shared across workers "
        "and re-runs (re-runs skip measurement entirely)",
    )
    sweep.add_argument(
        "--summary", action="store_true", help="print each pipeline's summary"
    )
    sweep.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject deterministic faults, e.g. "
        "'seed=7,dropout=0.02,spike=0.01,crash=0.3' "
        "(see repro.faults.parse_fault_spec)",
    )
    sweep.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="checkpoint directory: completed tasks are persisted there "
        "and loaded instead of re-run on the next invocation",
    )
    sweep.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abandon a task attempt running longer than this "
        "(pool executors only)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-submissions of a failed/timed-out task (default 1)",
    )
    sweep.add_argument(
        "--digest",
        action="store_true",
        help="print a deterministic content digest per task (CI compares "
        "these across kill/resume runs)",
    )
    sweep.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record one observability trace covering the whole sweep "
        "and write it as JSONL (serial tasks only: pool workers trace "
        "in their own processes and are not collected)",
    )

    trace = sub.add_parser(
        "trace",
        help="render a JSONL observability trace (from run/sweep --trace)",
    )
    trace.add_argument("path", metavar="PATH", help="trace JSONL file")
    trace.add_argument(
        "--json",
        action="store_true",
        help="machine-readable digest (counters, stage timings) instead "
        "of the summary tree",
    )
    trace.add_argument(
        "--no-counters",
        action="store_true",
        help="omit the counter/gauge tables from the summary tree",
    )

    faults = sub.add_parser("faults", help="fault-injection utilities")
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    demo = faults_sub.add_parser(
        "demo",
        help="run one faulted pipeline and print the robustness audit table",
    )
    demo.add_argument("--domain", default="branch", choices=sorted(DOMAIN_CONFIGS))
    demo.add_argument("--seed", type=int, default=2024)
    demo.add_argument(
        "--spec",
        default="seed=7,dropout=0.02,spike=0.01,overflow=0.005,runfail=0.5",
        help="fault specification (same grammar as sweep --faults)",
    )
    demo.add_argument(
        "--summary", action="store_true", help="also print the pipeline summary"
    )

    guard = sub.add_parser("guard", help="numerical-robustness utilities")
    guard_sub = guard.add_subparsers(dest="guard_command", required=True)
    smoke = guard_sub.add_parser(
        "smoke",
        help="run a deliberately ill-conditioned catalog and verify the "
        "guards degrade it to caution (never certified, never a crash)",
    )
    smoke.add_argument("--seed", type=int, default=2024)
    smoke.add_argument(
        "--strict",
        action="store_true",
        help="expect strict mode to raise, naming the forged columns",
    )
    smoke.add_argument(
        "--summary", action="store_true", help="also print the pipeline summary"
    )

    serve = sub.add_parser(
        "serve",
        help="run the HTTP metric service (coalescing, batching, "
        "versioned catalog); Ctrl-C stops it cleanly",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8752, help="0 = ephemeral")
    serve.add_argument(
        "--catalog",
        metavar="DIR",
        default=None,
        help="versioned metric-catalog root; omitted = serve fresh "
        "pipeline runs only, store nothing",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="shared measurement cache for the pipeline runs",
    )
    serve.add_argument("--workers", type=int, default=2, help="worker pool size")
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="dispatch-queue bound; a full queue rejects with HTTP 429",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=4,
        help="max distinct analyses drained into one dispatch",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-runs of a crashed/faulted analysis (default 1)",
    )
    serve.add_argument(
        "--supervise",
        type=int,
        default=0,
        metavar="N",
        help="run N supervised worker processes behind one front "
        "(heartbeat crash/hang detection, backoff restarts, in-flight "
        "re-dispatch); 0 = single in-process service (default)",
    )
    serve.add_argument(
        "--stale-max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="degraded mode: when saturated (or, supervised, when every "
        "worker is down) serve the newest catalog entry no older than "
        "this, stamped stale=true, instead of rejecting (default: off)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="partition the catalog root across N consistent-hash shard "
        "directories (requires --catalog; a root that already carries "
        "shards.json opens with its recorded topology); 0 = unsharded "
        "(default)",
    )

    loadtest = sub.add_parser(
        "loadtest",
        help="closed-loop load drill: drive a serving tier with a "
        "deterministic workload and check the invariant (every response "
        "bit-identical to the single-process answer, a typed 429/503, "
        "or explicitly stale)",
    )
    loadtest.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="catalog root the drill publishes into (disposable; "
        "required for --target sharded)",
    )
    loadtest.add_argument("--cache-dir", default=None, metavar="DIR")
    loadtest.add_argument(
        "--target",
        default="sharded",
        choices=("sharded", "single"),
        help="sharded = supervised multi-process pool over shard "
        "directories; single = one in-process HTTP service (the "
        "baseline tier)",
    )
    loadtest.add_argument("--workers", type=int, default=2)
    loadtest.add_argument("--shards", type=int, default=2)
    loadtest.add_argument(
        "--system", default="aurora", choices=sorted(SWEEP_SYSTEMS)
    )
    loadtest.add_argument("--domain", default="branch")
    loadtest.add_argument("--clients", type=int, default=4)
    loadtest.add_argument(
        "--requests", type=int, default=6, help="requests per client"
    )
    loadtest.add_argument("--seed", type=int, default=2024)
    loadtest.add_argument(
        "--seed-pool",
        type=int,
        default=2,
        help="distinct analysis seeds the workload draws from",
    )
    loadtest.add_argument(
        "--hot-fraction",
        type=float,
        default=0.6,
        help="fraction of each stream that re-reads hot catalog keys",
    )
    loadtest.add_argument(
        "--rps",
        type=float,
        nargs="*",
        default=[],
        metavar="RPS",
        help="open-loop saturation steps at these offered rates, run "
        "after the closed-loop step (default: closed loop only)",
    )
    loadtest.add_argument(
        "--json",
        action="store_true",
        help="machine-readable per-step rows instead of the summary",
    )

    chaos = sub.add_parser(
        "chaos",
        help="closed-loop serve-layer chaos drill: drive a supervised "
        "pool under injected faults and check the invariant (every "
        "response bit-identical, explicitly stale, or a typed error)",
    )
    chaos.add_argument(
        "--catalog",
        required=True,
        metavar="DIR",
        help="catalog root the drill publishes into (disposable)",
    )
    chaos.add_argument("--cache-dir", default=None, metavar="DIR")
    chaos.add_argument(
        "--spec",
        required=True,
        help="chaos spec, e.g. "
        "'seed=7,kill=0.2,hang=0.1,torn=0.3,drop=0.1,latency=0.2' "
        "(see repro.faults.parse_chaos_spec)",
    )
    chaos.add_argument("--system", default="aurora", choices=sorted(SWEEP_SYSTEMS))
    chaos.add_argument("--domain", default="branch")
    chaos.add_argument("--requests", type=int, default=8)
    chaos.add_argument("--seed", type=int, default=2024)
    chaos.add_argument("--workers", type=int, default=3)
    chaos.add_argument(
        "--recovery-budget",
        type=float,
        default=30.0,
        help="seconds the pool gets to return to full strength",
    )

    catalog = sub.add_parser(
        "catalog", help="inspect a versioned metric catalog on disk"
    )
    catalog_sub = catalog.add_subparsers(dest="catalog_command", required=True)
    cat_list = catalog_sub.add_parser(
        "list", help="summary row per stored (arch, metric, config) key"
    )
    cat_list.add_argument("--root", required=True, metavar="DIR")
    cat_list.add_argument("--arch", default=None, help="filter by architecture")
    cat_list.add_argument(
        "--stale-only",
        action="store_true",
        help="only keys whose recorded event-dependency digests no longer "
        "match the live registry (candidates for revalidation)",
    )
    cat_show = catalog_sub.add_parser(
        "show", help="one stored metric definition, bit-exact"
    )
    cat_show.add_argument("--root", required=True, metavar="DIR")
    cat_show.add_argument("--arch", required=True)
    cat_show.add_argument("metric", help="metric name (as served)")
    cat_show.add_argument(
        "--digest",
        default=None,
        help="config digest (only needed when several are stored)",
    )
    cat_show.add_argument(
        "--metric-version",
        type=int,
        default=None,
        help="stored version (default: latest)",
    )
    cat_diff = catalog_sub.add_parser(
        "diff", help="field-level diff between two stored versions"
    )
    cat_diff.add_argument("--root", required=True, metavar="DIR")
    cat_diff.add_argument("--arch", required=True)
    cat_diff.add_argument("metric", help="metric name (as served)")
    cat_diff.add_argument("version_a", type=int)
    cat_diff.add_argument("version_b", type=int)
    cat_diff.add_argument(
        "--digest",
        default=None,
        help="config digest (only needed when several are stored)",
    )
    cat_diff.add_argument(
        "--json",
        action="store_true",
        help="machine-readable structured diff (the format repro-cat vet "
        "drift consumes) instead of the rendered text",
    )
    cat_fsck = catalog_sub.add_parser(
        "fsck",
        help="crash-recovery check: quarantine torn version files, "
        "remove staged leftovers, re-append unlogged publications, "
        "repair a torn log tail",
    )
    cat_fsck.add_argument("--root", required=True, metavar="DIR")
    cat_fsck.add_argument(
        "--compact",
        action="store_true",
        help="also compact the publication log (drop torn lines, "
        "duplicates, and records whose version file is gone)",
    )
    cat_refresh = catalog_sub.add_parser(
        "refresh",
        help="dependency-tracked refresh: recompute only the entries a "
        "registry edit invalidated (an empty catalog gets a full build)",
    )
    cat_refresh.add_argument("--root", required=True, metavar="DIR")
    cat_refresh.add_argument(
        "--system",
        required=True,
        choices=sorted(SWEEP_SYSTEMS),
        help="system whose entries to refresh",
    )
    cat_refresh.add_argument("--seed", type=int, default=2024)
    cat_refresh.add_argument(
        "--domains",
        nargs="+",
        default=None,
        metavar="DOMAIN",
        help="restrict to these domains (default: every domain the "
        "system measures)",
    )
    cat_refresh.add_argument(
        "--edits",
        default=None,
        metavar="FILE",
        help="JSON registry-edit file (see repro.incr.registry_edit); "
        "the refresh runs against the edited registry",
    )
    cat_refresh.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="on-disk measurement cache for per-column reuse",
    )

    vet = sub.add_parser(
        "vet",
        help="counter validation: refute lying events before they define "
        "metrics, and detect drift across catalog versions",
    )
    vet_sub = vet.add_subparsers(dest="vet_command", required=True)
    vet_run = vet_sub.add_parser(
        "run",
        help="validation campaign: run known-activity probes across "
        "perturbed configs and hand down per-event verdicts",
    )
    vet_run.add_argument("--system", required=True, choices=sorted(SWEEP_SYSTEMS))
    vet_run.add_argument("--seed", type=int, default=2024)
    vet_run.add_argument(
        "--configs",
        type=int,
        default=3,
        help="perturbed configurations per probe (seed and repetition "
        "jitter; default 3)",
    )
    vet_run.add_argument(
        "--repetitions", type=int, default=None, help="base repetitions"
    )
    vet_run.add_argument(
        "--domains",
        nargs="+",
        default=None,
        metavar="DOMAIN",
        help="restrict the probe set to these domains (default: every "
        "domain the system measures)",
    )
    vet_run.add_argument(
        "--forge",
        action="append",
        default=None,
        metavar="EVENT=KIND[:FACTOR]",
        help="forge an event before the campaign (kinds: overcount, "
        "undercount, multicount, unreliable) — the self-test substrate; "
        "repeatable",
    )
    vet_run.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the validation report as JSON (feed it back via "
        "run --priors)",
    )
    vet_run.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    vet_report = vet_sub.add_parser(
        "report", help="render a saved validation report"
    )
    vet_report.add_argument("path", metavar="PATH", help="report JSON file")
    vet_report.add_argument(
        "--json", action="store_true", help="re-emit the canonical JSON"
    )
    vet_drift = vet_sub.add_parser(
        "drift",
        help="scan a catalog's version history for drift anomalies "
        "(coefficient drift, trust transitions, verdict flips); exit 1 "
        "when anything is flagged",
    )
    vet_drift.add_argument("--root", required=True, metavar="DIR")
    vet_drift.add_argument("--arch", default=None, help="filter by architecture")
    vet_drift.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    vet_smoke = vet_sub.add_parser(
        "smoke",
        help="seeded end-to-end scenario: a forged overcounting event "
        "must be refuted and excluded while a healthy catalog stays "
        "bit-identical",
    )
    vet_smoke.add_argument("--seed", type=int, default=2024)

    ingest = sub.add_parser(
        "ingest",
        help="ingest real perf/PAPI collector files: parse, assemble, and "
        "run the identical noise-filter -> QRCP -> compose path",
    )
    ingest_sub = ingest.add_subparsers(dest="ingest_command", required=True)
    ing_parse = ingest_sub.add_parser(
        "parse",
        help="parse one collector file and print its canonical form "
        "(malformed input exits 2 naming file:line:column)",
    )
    ing_parse.add_argument("path", metavar="FILE")
    ing_parse.add_argument(
        "--format",
        default="auto",
        choices=("auto", "perf-human", "perf-csv", "perf-interval", "papi-csv"),
        help="wire format (default: sniff)",
    )
    ing_parse.add_argument(
        "--summary",
        action="store_true",
        help="print sample/reading counts instead of the canonical text",
    )
    ing_report = ingest_sub.add_parser(
        "report",
        help="assemble a manifest and print the ingestion report: event "
        "aliasing, per-column quality flags, unmapped events, sources",
    )
    ing_report.add_argument("manifest", metavar="MANIFEST")
    ing_report.add_argument(
        "--json",
        action="store_true",
        help="machine-readable provenance payload instead of the report",
    )
    ing_run = ingest_sub.add_parser(
        "run",
        help="assemble a manifest and run the standard analysis pipeline "
        "on the ingested measurement",
    )
    ing_run.add_argument("manifest", metavar="MANIFEST")
    ing_run.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="publish composed metrics into this catalog with ingestion "
        "provenance on their lineage",
    )
    ing_run.add_argument(
        "--strict",
        action="store_true",
        help="raise on guard violations instead of degrading",
    )
    return parser


def _config_for(args) -> PipelineConfig:
    base = DOMAIN_CONFIGS[args.domain]
    overrides = {}
    if getattr(args, "tau", None) is not None:
        overrides["tau"] = args.tau
    if getattr(args, "alpha", None) is not None:
        overrides["alpha"] = args.alpha
    if getattr(args, "repetitions", None) is not None:
        overrides["repetitions"] = args.repetitions
    if getattr(args, "rcond", None) is not None:
        overrides["lstsq_rcond"] = args.rcond
    if getattr(args, "no_guard", False):
        from repro.guard import GuardConfig

        overrides["guard"] = GuardConfig(enabled=False)
    if getattr(args, "strict", False):
        overrides["strict"] = True
    if not overrides:
        return base
    from dataclasses import replace

    return replace(base, **overrides)


def _validate_args(args) -> None:
    """Boundary validation of CLI numerics: fail with the validator's
    actionable message instead of a traceback from deep in the pipeline."""
    from repro.guard import ValidationError
    from repro.guard import validate as v

    context = f"repro-cat {args.command}"
    try:
        if hasattr(args, "seed"):
            v.require_int(args.seed, "--seed", context, minimum=0)
        if getattr(args, "tau", None) is not None:
            v.require_positive(args.tau, "--tau", context)
        if getattr(args, "alpha", None) is not None:
            v.require_positive(args.alpha, "--alpha", context)
        if getattr(args, "repetitions", None) is not None:
            v.require_int(args.repetitions, "--repetitions", context, minimum=2)
        if getattr(args, "rcond", None) is not None:
            v.require_positive(args.rcond, "--rcond", context)
        if getattr(args, "workers", None) is not None:
            v.require_int(args.workers, "--workers", context, minimum=1)
        if getattr(args, "retries", None) is not None:
            v.require_int(args.retries, "--retries", context, minimum=0)
        if getattr(args, "task_timeout", None) is not None:
            v.require_positive(args.task_timeout, "--task-timeout", context)
        if getattr(args, "queue_limit", None) is not None:
            v.require_int(args.queue_limit, "--queue-limit", context, minimum=1)
        if getattr(args, "batch_size", None) is not None:
            v.require_int(args.batch_size, "--batch-size", context, minimum=1)
        if getattr(args, "port", None) is not None:
            v.require_int(args.port, "--port", context, minimum=0)
        if getattr(args, "configs", None) is not None:
            v.require_int(args.configs, "--configs", context, minimum=1)
        if getattr(args, "shards", None) is not None:
            v.require_int(args.shards, "--shards", context, minimum=0)
    except ValidationError as exc:
        raise _usage_exit(str(exc))
    if args.command == "serve" and args.shards > 0 and args.catalog is None:
        raise _usage_exit(
            "repro-cat serve: --shards needs --catalog (a sharded topology "
            "is a property of the catalog root)"
        )
    if (
        args.command == "loadtest"
        and args.target == "sharded"
        and args.catalog is None
    ):
        raise _usage_exit(
            "repro-cat loadtest: --target sharded needs --catalog"
        )


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved CLI.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _trace_scope(args):
    """The observability scope a ``--trace PATH`` flag asks for: a live
    ``obs.tracing`` context, or a null scope yielding ``None``."""
    if getattr(args, "trace", None) is not None:
        from repro.obs import tracing

        return tracing(seed=args.seed)
    from contextlib import nullcontext

    return nullcontext(None)


def _write_trace(tracer, path: str) -> None:
    from pathlib import Path

    Path(path).write_text(tracer.trace().to_jsonl())
    print(f"trace written to {path}", file=sys.stderr)


def _catalog_digest_for(store, arch: str, metric: str, digest: Optional[str]) -> str:
    """Resolve the config digest for a catalog lookup: the explicit flag,
    or the single stored digest — ambiguity is a usage error."""
    if digest is not None:
        return digest
    digests = sorted(
        {
            row["config_digest"]
            for row in store.list_entries(arch)
            if row["metric"] == metric
        }
    )
    if not digests:
        raise _usage_exit(
            f"repro-cat catalog: no entry for ({arch!r}, {metric!r}) under "
            f"{store.root}"
        )
    if len(digests) > 1:
        raise _usage_exit(
            "repro-cat catalog: several config digests stored for "
            f"({arch!r}, {metric!r}); pick one with --digest: "
            + ", ".join(digests)
        )
    return digests[0]


def _catalog_refresh(store, args) -> int:
    """``repro-cat catalog refresh``: dependency-tracked recompute."""
    from repro.core.sweep import SWEEP_SYSTEMS, SYSTEM_DOMAINS
    from repro.incr import apply_edits, load_edits, refresh_catalog
    from repro.io.cache import MeasurementCache

    node = SWEEP_SYSTEMS[args.system](seed=args.seed)
    domains = tuple(args.domains) if args.domains else SYSTEM_DOMAINS[args.system]
    for domain in domains:
        if domain not in SYSTEM_DOMAINS[args.system]:
            raise _usage_exit(
                f"repro-cat catalog refresh: domain {domain!r} is not "
                f"measurable on {args.system!r} "
                f"(has: {', '.join(SYSTEM_DOMAINS[args.system])})"
            )

    registry = node.events
    if args.edits is not None:
        try:
            edits = load_edits(args.edits)
        except (OSError, ValueError) as exc:
            raise _usage_exit(f"repro-cat catalog refresh: {args.edits}: {exc}")
        try:
            registry = apply_edits(registry, edits)
        except (KeyError, ValueError) as exc:
            raise _usage_exit(
                f"repro-cat catalog refresh: {exc.args[0] if exc.args else exc}"
            )
        for edit in edits:
            print(f"edit: {edit.describe()}", file=sys.stderr)

    cache = MeasurementCache(root=args.cache_dir) if args.cache_dir else None
    try:
        report = refresh_catalog(
            store, node, domains, registry=registry, cache=cache
        )
    except GuardViolation as exc:
        print(f"repro-cat catalog refresh: guard violation: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0


def _catalog_main(args) -> int:
    from repro.serve import open_catalog

    store = open_catalog(args.root)

    if args.catalog_command == "list":
        if args.stale_only:
            from repro.vet import stale_entry_rows

            registries = {
                factory(seed=0).name: factory(seed=0).events
                for factory in SWEEP_SYSTEMS.values()
            }
            rows = stale_entry_rows(store, registries, arch=args.arch)
            if not rows:
                print("(no stale entries: every key matches the live registry)")
                return 0
        else:
            rows = store.list_entries(args.arch)
        if not rows:
            print("(catalog is empty)")
            return 0
        for row in rows:
            trust = row["trust"] or "-"
            flags = []
            if not row["composable"]:
                flags.append("NOT-COMPOSABLE")
            if row["degraded"]:
                flags.append("DEGRADED")
            suffix = ("  " + " ".join(flags)) if flags else ""
            print(
                f"{row['arch']}  {row['metric']}  "
                f"config={row['config_digest']}  v{row['latest_version']} "
                f"({row['versions']} version(s))  err={row['error']:.2e}  "
                f"trust={trust}{suffix}"
            )
            if "stale_reason" in row:
                print(f"    STALE: {row['stale_reason']}")
        return 0

    if args.catalog_command == "fsck":
        report = store.fsck(repair=True)
        print(report.summary())
        for path in report.quarantined:
            print(f"  quarantined: {path}")
        for path in report.relogged:
            print(f"  re-appended to log: {path}")
        if args.compact:
            compaction = store.compact_log()
            print(
                f"log compacted: {compaction.records_before} -> "
                f"{compaction.records_after} record(s) "
                f"({compaction.dropped} dropped)"
            )
        return 0 if report.clean else 1

    if args.catalog_command == "refresh":
        return _catalog_refresh(store, args)

    digest = _catalog_digest_for(store, args.arch, args.metric, args.digest)

    if args.catalog_command == "show":
        entry = store.get(
            args.arch, args.metric, digest, version=args.metric_version
        )
        if entry is None:
            wanted = (
                f"version {args.metric_version}"
                if args.metric_version is not None
                else "latest version"
            )
            raise _usage_exit(
                f"repro-cat catalog: no {wanted} of ({args.arch!r}, "
                f"{args.metric!r}, {digest}) under {store.root}"
            )
        print(f"architecture : {entry.arch}")
        print(f"domain       : {entry.domain} (seed {entry.seed})")
        print(f"config digest: {entry.config_digest}")
        print(f"events digest: {entry.events_digest}")
        print(f"version      : {entry.version}")
        if entry.trace_digest is not None:
            print(f"trace digest : {entry.trace_digest}")
        if entry.provenance:
            prov = entry.provenance
            print(
                f"provenance   : {prov.get('collector')} ingest, uarch "
                f"{prov.get('uarch')} (family {prov.get('family')})"
            )
            print(
                f"  manifest   : {prov.get('manifest')} "
                f"sha256:{prov.get('manifest_digest')}"
            )
            for source, digest in sorted(prov.get("sources", {}).items()):
                print(f"  source     : {source}  sha256:{digest}")
            for event, offset in sorted(prov.get("baseline", {}).items()):
                print(f"  baseline   : {event}: -{offset!r}")
            for event, flags in sorted(prov.get("quality", {}).items()):
                print(f"  quality    : {event}: {', '.join(flags)}")
            if prov.get("unmapped"):
                print(f"  unmapped   : {', '.join(prov['unmapped'])}")
        if entry.guards_fired:
            print(f"guards fired : {', '.join(entry.guards_fired)}")
        print()
        print(entry.definition().pretty())
        return 0

    # catalog_command == "diff"
    try:
        diff = store.diff(
            args.arch, args.metric, digest, args.version_a, args.version_b
        )
    except KeyError as exc:
        raise _usage_exit(f"repro-cat catalog: {exc.args[0]}")
    if args.json:
        import json

        print(json.dumps(diff.to_payload(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    return 0


def _vet_main(args) -> int:
    """``repro-cat vet``: counter validation and drift detection."""
    import json

    if args.vet_command == "run":
        from repro.vet import CampaignConfig, parse_forge_spec, run_campaign

        forge = None
        if args.forge:
            try:
                forge = parse_forge_spec(args.forge)
            except ValueError as exc:
                raise _usage_exit(f"repro-cat vet run: --forge: {exc}")
        overrides = {"seed": args.seed, "n_configs": args.configs}
        if args.repetitions is not None:
            overrides["repetitions"] = args.repetitions
        if args.domains is not None:
            overrides["domains"] = tuple(args.domains)
        try:
            config = CampaignConfig(**overrides)
            report = run_campaign(args.system, config, forge=forge)
        except (KeyError, ValueError) as exc:
            raise _usage_exit(
                f"repro-cat vet run: {exc.args[0] if exc.args else exc}"
            )
        if args.json:
            print(json.dumps(report.to_payload(), indent=2, sort_keys=True))
        else:
            print(report.summary())
        if args.output:
            path = report.save(args.output)
            print(f"validation report written to {path}", file=sys.stderr)
        return 0

    if args.vet_command == "report":
        from pathlib import Path

        from repro.vet import ValidationReport

        path = Path(args.path)
        if not path.exists():
            raise _usage_exit(f"repro-cat vet report: no such file: {path}")
        try:
            report = ValidationReport.load(path)
        except (ValueError, KeyError) as exc:
            raise _usage_exit(f"repro-cat vet report: {path}: {exc}")
        if args.json:
            print(json.dumps(report.to_payload(), indent=2, sort_keys=True))
        else:
            print(report.summary())
        return 0

    if args.vet_command == "drift":
        from repro.serve import open_catalog
        from repro.vet import detect_drift

        store = open_catalog(args.root)
        report = detect_drift(store, arch=args.arch)
        if args.json:
            print(json.dumps(report.to_payload(), indent=2, sort_keys=True))
        else:
            print(report.summary())
        return 1 if report.flagged else 0

    # vet_command == "smoke"
    from repro.vet import run_vet_smoke

    outcome = run_vet_smoke(seed=args.seed)
    print(outcome.describe())
    return 0 if outcome.passed else 1


def _ingest_main(args) -> int:
    """``repro-cat ingest``: real-measurement ingestion.

    Exit-code discipline: malformed or inconsistent input (parse errors
    with file:line:column, bad manifests, alias conflicts) exits 2 like
    any usage error; an ingested analysis that *runs* but fails (strict-
    mode guard violation) exits 1.
    """
    from pathlib import Path

    from repro.ingest import (
        IngestError,
        assemble,
        load_manifest,
        parse_papi_csv,
        parse_perf,
        run_ingest,
        serialize_papi_csv,
        serialize_samples,
    )

    if args.ingest_command == "parse":
        path = Path(args.path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise _usage_exit(f"repro-cat ingest parse: {path}: {exc}")
        try:
            if args.format == "papi-csv" or (
                args.format == "auto"
                and text.lstrip().startswith("row,repetition,")
            ):
                matrix = parse_papi_csv(text, source=str(path))
                if args.summary:
                    print(
                        f"papi-csv: {len(matrix.records)} record(s), "
                        f"{len(matrix.row_labels)} row(s), "
                        f"{len(matrix.event_names)} event(s)"
                    )
                else:
                    print(serialize_papi_csv(matrix), end="")
                return 0
            fmt, samples = parse_perf(text, source=str(path), format=args.format)
            if args.summary:
                readings = sum(len(s.readings) for s in samples)
                print(
                    f"{fmt}: {len(samples)} sample(s), {readings} reading(s)"
                )
            else:
                print(serialize_samples(fmt, samples), end="")
        except IngestError as exc:
            raise _usage_exit(f"repro-cat ingest parse: {exc}")
        return 0

    try:
        bundle = assemble(load_manifest(args.manifest))
    except IngestError as exc:
        raise _usage_exit(f"repro-cat ingest: {exc}")

    if args.ingest_command == "report":
        if args.json:
            import json

            print(json.dumps(bundle.provenance(), indent=2, sort_keys=True))
        else:
            print(bundle.report())
        return 0

    # ingest_command == "run"
    config = None
    if args.strict:
        from dataclasses import replace

        config = replace(DOMAIN_CONFIGS[bundle.manifest.domain], strict=True)
    store = None
    if args.catalog is not None:
        from repro.serve import open_catalog

        store = open_catalog(args.catalog)
    try:
        outcome = run_ingest(bundle, config=config, store=store)
    except GuardViolation as exc:
        print(f"repro-cat ingest run: {exc}", file=sys.stderr)
        return 1
    print(outcome.summary())
    return 0


def _main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    _validate_args(args)

    if args.command == "ingest":
        return _ingest_main(args)

    if args.command == "trace":
        from pathlib import Path

        from repro.obs import Trace, render_trace, trace_json_digest

        path = Path(args.path)
        if not path.exists():
            raise _usage_exit(f"repro-cat trace: no such file: {path}")
        try:
            trace = Trace.from_jsonl(path.read_text())
        except ValueError as exc:
            raise _usage_exit(f"repro-cat trace: {path}: {exc}")
        if args.json:
            print(trace_json_digest(trace))
        else:
            print(render_trace(trace, show_counters=not args.no_counters))
        return 0

    if args.command == "guard":
        # guard smoke: the ill-conditioned catalog must degrade, not crash.
        from repro.guard.smoke import run_smoke

        outcome = run_smoke(seed=args.seed, strict=args.strict)
        print(outcome.describe())
        if args.summary and outcome.result is not None:
            print()
            print(outcome.result.summary())
        return 0 if outcome.passed else 1

    if args.command == "serve":
        import asyncio

        def announce(port: int) -> None:
            if args.port == 0:
                # Ephemeral bind: the chosen port is the one piece of
                # output a harness must parse, so it goes on stdout —
                # alone on the first line, before the human-facing
                # announce on stderr.
                print(port, flush=True)
            print(
                f"repro-cat serve: listening on http://{args.host}:{port} "
                f"(catalog: {args.catalog or 'none'})",
                file=sys.stderr,
                flush=True,
            )

        if args.supervise > 0:
            from repro.serve import (
                ServiceSupervisor,
                SupervisorConfig,
                SupervisorServer,
            )

            supervisor = ServiceSupervisor(
                args.catalog,
                cache_dir=args.cache_dir,
                config=SupervisorConfig(
                    workers=args.supervise,
                    service_workers=args.workers,
                    service_queue_limit=args.queue_limit,
                    service_batch_size=args.batch_size,
                    service_retries=args.retries,
                    stale_max_age=args.stale_max_age,
                    shards=args.shards,
                ),
            )
            front = SupervisorServer(supervisor, host=args.host, port=args.port)

            async def serve_supervised() -> None:
                bound = await front.start()
                announce(bound)
                try:
                    await asyncio.Event().wait()
                finally:
                    await front.stop()

            try:
                asyncio.run(serve_supervised())
            except KeyboardInterrupt:
                print("repro-cat serve: stopped", file=sys.stderr)
            return 0

        from repro.serve import MetricService, open_catalog, run_server

        store = (
            open_catalog(args.catalog, shards=args.shards)
            if args.catalog is not None
            else None
        )
        service = MetricService(
            store,
            workers=args.workers,
            queue_limit=args.queue_limit,
            batch_size=args.batch_size,
            cache_dir=args.cache_dir,
            retries=args.retries,
            stale_max_age=args.stale_max_age,
        )

        try:
            asyncio.run(
                run_server(
                    service,
                    host=args.host,
                    port=args.port,
                    ready_message=announce,
                )
            )
        except KeyboardInterrupt:
            print("repro-cat serve: stopped", file=sys.stderr)
        return 0

    if args.command == "loadtest":
        import json

        from repro.serve import LoadStep, Workload, run_load_drill

        steps = [LoadStep("closed")] + [
            LoadStep("open", offered_rps=rate) for rate in args.rps
        ]
        try:
            workload = Workload(
                pairs=((args.system, args.domain),),
                clients=args.clients,
                requests_per_client=args.requests,
                base_seed=args.seed,
                seed_pool=args.seed_pool,
                hot_fraction=args.hot_fraction,
            )
        except ValueError as exc:
            raise _usage_exit(f"repro-cat loadtest: {exc}")
        report = run_load_drill(
            args.catalog,
            target=args.target,
            workers=args.workers,
            shards=args.shards,
            workload=workload,
            steps=steps,
            cache_dir=args.cache_dir,
        )
        if args.json:
            print(
                json.dumps(
                    {
                        "target": report.target,
                        "ok": report.ok,
                        "coalesced": report.coalesced,
                        "catalog_hits": report.catalog_hits,
                        "steps": [s.to_row() for s in report.steps],
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(report.summary())
        for violation in report.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 0 if report.ok else 1

    if args.command == "chaos":
        from repro.faults import parse_chaos_spec
        from repro.serve import SupervisorConfig, run_chaos_drill

        try:
            parse_chaos_spec(args.spec)  # fail fast on a bad spec
        except ValueError as exc:
            raise _usage_exit(f"repro-cat chaos: {exc}")
        report = run_chaos_drill(
            args.catalog,
            chaos_spec=args.spec,
            cache_dir=args.cache_dir,
            pairs=((args.system, args.domain),),
            requests=args.requests,
            base_seed=args.seed,
            config=SupervisorConfig(
                workers=args.workers,
                heartbeat_timeout=1.5,
                backoff_base=0.1,
                backoff_max=1.0,
                restart_intensity=10,
                stale_max_age=3600.0,
            ),
            recovery_budget=args.recovery_budget,
        )
        print(report.summary())
        if report.fsck is not None:
            print(report.fsck.summary())
        for violation in report.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 0 if report.ok else 1

    if args.command == "catalog":
        return _catalog_main(args)

    if args.command == "vet":
        return _vet_main(args)

    if args.command == "list-events":
        node = _node(args.system, args.seed)
        for name in node.events.select(prefix=args.prefix).full_names:
            print(name)
        return 0

    if args.command == "sweep":
        from repro.core.sweep import SweepEngine, expand_grid, result_digest

        systems = [s.strip() for s in args.systems.split(",") if s.strip()]
        domains = [d.strip() for d in args.domains.split(",") if d.strip()]
        faults = None
        if args.faults:
            from repro.faults import parse_fault_spec

            try:
                faults = parse_fault_spec(args.faults)
            except ValueError as exc:
                raise _usage_exit(f"repro-cat sweep: --faults: {exc}")
        try:
            tasks = expand_grid(
                systems,
                domains,
                seed=args.seed,
                cache_dir=args.cache_dir,
                faults=faults,
            )
        except ValueError as exc:
            raise _usage_exit(f"repro-cat sweep: error: {exc}")
        if not tasks:
            raise _usage_exit(
                f"no measurable (system, domain) combination in "
                f"{systems} x {domains}"
            )
        engine = SweepEngine(
            max_workers=args.workers,
            executor=args.executor,
            task_timeout=args.task_timeout,
            max_retries=args.retries,
        )
        with _trace_scope(args) as tracer:
            outcomes = engine.run(tasks, checkpoint_dir=args.resume)
        if tracer is not None:
            _write_trace(tracer, args.trace)
        for outcome in outcomes:
            if not outcome.ok:
                print(
                    f"[{outcome.task.label}] FAILED after {outcome.attempts} "
                    f"attempt(s): {outcome.error}"
                )
                if outcome.traceback:
                    print(
                        "\n".join(
                            f"    {line}"
                            for line in outcome.traceback.rstrip().splitlines()
                        )
                    )
                continue
            result = outcome.result
            composable = sum(1 for m in result.metrics.values() if m.composable)
            how = "resumed" if outcome.resumed else f"ok in {outcome.seconds:.2f}s"
            if outcome.attempts > 1:
                how += f" ({outcome.attempts} attempts)"
            line = (
                f"[{outcome.task.label}] {how}  "
                f"events={result.noise.n_measured} "
                f"selected={len(result.selected_events)} "
                f"composable={composable}/{len(result.metrics)}"
            )
            if result.degraded:
                line += "  DEGRADED"
            if args.digest:
                line += f"  digest={result_digest(result)}"
            print(line)
        if faults is not None:
            from repro.faults import merge_reports

            merged = merge_reports(
                o.result.robustness for o in outcomes if o.ok and o.result
            )
            if args.cache_dir and merged.unaccounted():
                # A worker can corrupt a shared-cache entry after its
                # owner already read it; no in-run read catches that.
                # Fsck the cache: quarantining the entry recovers the
                # fault (the poison is gone, the next read re-measures).
                from repro.io.cache import MeasurementCache

                fsck = MeasurementCache(root=args.cache_dir)
                merged.cache_quarantined.extend(fsck.verify_all())
                merged.mark_cache_recovered(merged.cache_quarantined)
            print()
            print(merged.table())
        if args.summary:
            for outcome in outcomes:
                if outcome.ok:
                    print(f"\n=== {outcome.task.label} ===")
                    print(outcome.result.summary())
        return 0 if all(o.ok for o in outcomes) else 1

    if args.command == "faults":
        # faults demo: one faulted pipeline, full robustness audit table.
        from repro.faults import parse_fault_spec

        try:
            config = parse_fault_spec(args.spec)
        except ValueError as exc:
            raise _usage_exit(f"repro-cat faults demo: --spec: {exc}")
        node = _node(_DOMAIN_SYSTEM[args.domain], args.seed)
        pipeline = AnalysisPipeline.for_domain(args.domain, node, faults=config)
        result = pipeline.run()
        print(f"fault injection: {config.describe()}")
        print(f"pipeline: {args.domain} on {node.name} (seed {args.seed})")
        print()
        report = result.robustness
        if report is None:
            print("(fault spec enables nothing; pipeline ran unfaulted)")
            return 0
        print(report.table())
        if args.summary:
            print()
            print(result.summary())
        return 0 if not report.unaccounted() else 1

    if args.command == "presets":
        from repro.core.derive import derive_presets

        node = _node(args.system, args.seed)
        report = derive_presets(node)
        print(report.summary())
        if args.output:
            path = save_presets(report.presets, args.output)
            print(f"\npresets written to {path}")
        return 0

    node = _node(_DOMAIN_SYSTEM[args.domain], args.seed)

    if args.command == "noise":
        pipeline = AnalysisPipeline.for_domain(args.domain, node)
        result = pipeline.run()
        series = fig2_series(result.noise)
        print(
            log_scatter(
                series.values,
                threshold=series.tau,
                title=f"Sorted event variabilities — {args.domain} on {node.name}",
            )
        )
        return 0

    if args.command == "report":
        from dataclasses import replace

        from repro.core.report import render_report, write_report
        from repro.core.thresholds import select_alpha, select_tau

        pipeline = AnalysisPipeline.for_domain(args.domain, node)
        result = pipeline.run()
        if args.auto_thresholds:
            tau_sel = select_tau(list(result.noise.variabilities.values()))
            alpha_sel = select_alpha(result.representation.x_matrix)
            auto_config = replace(
                DOMAIN_CONFIGS[args.domain], tau=tau_sel.tau, alpha=alpha_sel.alpha
            )
            print(
                f"auto thresholds: tau={tau_sel.tau:.3e} ({tau_sel.method}), "
                f"alpha={alpha_sel.alpha:.3e} "
                f"(plateau {alpha_sel.plateau_low:.1e}..{alpha_sel.plateau_high:.1e})"
            )
            result = AnalysisPipeline.for_domain(
                args.domain, node, config=auto_config
            ).run(measurement=result.measurement)
        if args.output:
            path = write_report(result, args.output)
            print(f"report written to {path}")
        else:
            print(render_report(result))
        return 0

    # command == "run"
    priors = None
    if args.priors is not None:
        from repro.vet import TrustPriors

        try:
            priors = TrustPriors.load(args.priors)
        except (OSError, ValueError, KeyError) as exc:
            raise _usage_exit(f"repro-cat run: --priors: {args.priors}: {exc}")
        if priors.n_refuted:
            print(
                f"priors: {priors.n_refuted} refuted event(s) will be "
                f"excluded ({priors.source})",
                file=sys.stderr,
            )
    pipeline = AnalysisPipeline.for_domain(
        args.domain, node, config=_config_for(args), priors=priors
    )
    with _trace_scope(args) as tracer:
        try:
            result = pipeline.run()
        except GuardViolation as exc:
            if tracer is not None:
                # The partial trace is exactly what diagnoses a strict
                # failure: write it before reporting the violation.
                _write_trace(tracer, args.trace)
            print(f"repro-cat run: {exc}", file=sys.stderr)
            return 1
    if tracer is not None:
        _write_trace(tracer, args.trace)
    print(result.summary())
    print()
    metrics = result.rounded_metrics if args.rounded else result.metrics
    for metric in metrics.values():
        print(metric.pretty())
        print()
    if args.save_presets:
        path = save_presets(result.presets, args.save_presets)
        print(f"presets written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
