"""Shared pytest fixtures for both suites (``tests/`` and ``benchmarks/``).

This root conftest is the single fixture source: the test suite and the
benchmark harness share the same session-scoped pipeline results, so a
full pipeline for a domain runs at most once per session no matter how
many modules assert on it.  Artifacts (reproduced tables, figure series,
ASCII plots) are written under ``results/``.

It also registers the golden-suite regeneration flag::

    PYTHONPATH=src python -m pytest tests/test_golden_e2e.py --update-golden

which rewrites the committed fixtures under ``tests/golden/`` instead of
comparing against them (see ``docs/observability.md``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.pipeline import AnalysisPipeline
from repro.hardware.systems import aurora_node, frontier_cpu_node, frontier_node

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden e2e fixtures under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture(scope="session")
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def aurora():
    return aurora_node()


@pytest.fixture(scope="session")
def frontier():
    return frontier_node()


@pytest.fixture(scope="session")
def frontier_cpu():
    return frontier_cpu_node()


@pytest.fixture(scope="session")
def branch_result(aurora):
    return AnalysisPipeline.for_domain("branch", aurora).run()


@pytest.fixture(scope="session")
def cpu_flops_result(aurora):
    return AnalysisPipeline.for_domain("cpu_flops", aurora).run()


@pytest.fixture(scope="session")
def gpu_flops_result(frontier):
    return AnalysisPipeline.for_domain("gpu_flops", frontier).run()


@pytest.fixture(scope="session")
def dcache_result(aurora):
    return AnalysisPipeline.for_domain("dcache", aurora).run()
