#!/usr/bin/env python3
"""Third architecture, zero new analysis code: AMD Zen 3 (Frontier's CPU).

The paper evaluates Intel Sapphire Rapids and an AMD GPU; its introduction
motivates the whole method with the cost of *porting* metric definitions
between architectures.  This example runs the unmodified pipeline against
a Zen 3 "Trento" model — Frontier's host CPU — whose raw vocabulary differs
from Intel's in kind, not just in name:

* FP counters tally merged-precision *operations* (FLOPs), so the
  per-precision metrics of the paper's Table I are honestly reported as
  uncomposable — the exact AMD limitation the paper mentions in
  Section III-B — while total-FLOPs composes with unit coefficients;
* there is no conditional-taken branch counter, so "Conditional Branches
  Taken" derives as (all taken) - (unconditional);
* there is no L1-hit cache event, so "L1 Hits" derives by subtraction
  from an access counter.

Run:  python examples/amd_cpu_portability.py

Set ``REPRO_EXAMPLE_FAST=1`` to skip the slow data-cache section (used
by the examples smoke test in CI).
"""

import os

import numpy as np

from repro.activity import FP_PRECISIONS, FP_WIDTHS
from repro.cat.kernels import flops_per_instruction
from repro.core import AnalysisPipeline
from repro.core.metrics import compose_metric
from repro.core.signatures import Signature
from repro.hardware.systems import aurora_node, frontier_cpu_node


def main() -> None:
    intel = AnalysisPipeline.for_domain("branch", aurora_node()).run()
    amd = AnalysisPipeline.for_domain("branch", frontier_cpu_node()).run()

    print("Concept: Conditional Branches Taken")
    print("  Intel SPR :", dict_terms(intel.metric("Conditional Branches Taken.")))
    print("  AMD Zen 3 :", dict_terms(amd.metric("Conditional Branches Taken.")))
    print()

    amd_fp = AnalysisPipeline.for_domain("cpu_flops", frontier_cpu_node()).run()
    print("Per-precision FP metrics on Zen 3 (merged-precision counters):")
    for name in ("SP Ops.", "DP Ops."):
        m = amd_fp.metric(name)
        print(f"  {name:<10} error {m.error:.2e}  -> "
              f"{'composable' if m.composable else 'UNCOMPOSABLE (as the paper notes for AMD CPUs)'}")

    # The concept Zen *can* express: total FLOPs across precisions.
    basis = amd_fp.representation.basis
    coords = np.zeros(basis.n_dimensions)
    for i, label in enumerate(basis.dimension_labels):
        fma = label.endswith("_FMA")
        prec = "sp" if label.startswith("S") else "dp"
        token = label.replace("_FMA", "")[1:]
        width = "scalar" if token == "SCAL" else token
        coords[i] = flops_per_instruction(width, prec, fma)
    total = compose_metric(
        "All FP Ops.",
        amd_fp.x_hat,
        amd_fp.selected_events,
        Signature("All FP Ops.", "cpu_flops", coords),
    )
    print(f"\n  All FP Ops.  error {total.error:.2e}")
    print(f"  {dict_terms(total)}")

    if os.environ.get("REPRO_EXAMPLE_FAST"):
        print("\n(REPRO_EXAMPLE_FAST set: skipping the data-cache section)")
        return
    amd_cache = AnalysisPipeline.for_domain("dcache", frontier_cpu_node()).run()
    print("\nL1 Hits on Zen 3 (no L1-hit event exists; derived by subtraction):")
    print(" ", dict_terms(amd_cache.rounded_metrics["L1 Hits."]))


def dict_terms(metric, tol=1e-6):
    return {e: round(c, 3) for e, c in metric.terms().items() if abs(c) > tol}


if __name__ == "__main__":
    main()
