#!/usr/bin/env python3
"""Cross-architecture portability: the same analysis on a CPU and a GPU.

The paper's central claim is that the event-to-metric mapping can be
*automated* so middleware like PAPI does not need hand-written preset
tables per architecture.  This example runs the identical pipeline against
both systems the paper evaluates — Aurora's Sapphire Rapids CPU and
Frontier's MI250X GPU — and prints, side by side, how the "same" concept
("all double-precision floating-point operations") resolves to completely
different raw events with different scalings on each machine.

It also shows the asymmetry of expressiveness: the CPU cannot isolate FMA
instructions (its FP events double-count them), the GPU cannot isolate
subtraction (its ADD counter fires for both); each limitation is detected
by the backward error rather than assumed.

Run:  python examples/cross_architecture.py

All three pipelines fan out through the :class:`~repro.core.sweep.SweepEngine`
process pool — the CLI equivalent is::

    repro-cat sweep --systems aurora,frontier,frontier-cpu --domains cpu_flops,gpu_flops
"""

from repro.core.sweep import SweepEngine, SweepTask, results_by_label


def main() -> None:
    outcomes = SweepEngine().run(
        [
            SweepTask("aurora", "cpu_flops"),
            SweepTask("frontier", "gpu_flops"),
            SweepTask("frontier-cpu", "cpu_flops"),
        ]
    )
    failed = [o for o in outcomes if not o.ok]
    if failed:
        raise SystemExit(f"sweep failed: {[(o.task.label, o.error) for o in failed]}")
    results = results_by_label(outcomes)
    cpu_result = results["aurora:cpu_flops"]
    gpu_result = results["frontier:gpu_flops"]

    print("=" * 70)
    print("Concept: total double-precision floating-point operations")
    print("=" * 70)
    print("\nOn Aurora (Intel Sapphire Rapids):\n")
    print(cpu_result.metric("DP Ops.").pretty())
    print("\nOn Frontier (AMD MI250X):\n")
    print(gpu_result.metric("All DP Ops.").pretty())

    print()
    print("=" * 70)
    print("What each architecture CANNOT express")
    print("=" * 70)
    cpu_fma = cpu_result.metric("DP FMA Instrs.")
    gpu_sub = gpu_result.metric("HP Sub Ops.")
    print(
        f"\nSPR:    'DP FMA Instrs.'  error {cpu_fma.error:.2e}  -> "
        f"{'composable' if cpu_fma.composable else 'no dedicated FMA counter'}"
    )
    print(
        f"MI250X: 'HP Sub Ops.'      error {gpu_sub.error:.2e}  -> "
        f"{'composable' if gpu_sub.composable else 'ADD counter merges add+sub'}"
    )

    print()
    print("=" * 70)
    print("Derived PAPI presets per architecture")
    print("=" * 70)
    for label, result in (("aurora-spr", cpu_result), ("frontier-mi250x", gpu_result)):
        print(f"\n[{label}]")
        for preset in result.presets:
            events = ", ".join(preset.native_events)
            print(f"  {preset.name:<22} <- {events}")

    # The maintainer's one-table view, including Frontier's host CPU.
    from repro.core.crossarch import portability_matrix

    zen_result = results["frontier-cpu:cpu_flops"]
    matrix = portability_matrix(
        [
            ("aurora-spr", cpu_result),
            ("frontier-trento", zen_result),
            ("frontier-mi250x", gpu_result),
        ]
    )
    print()
    print("=" * 70)
    print("Portability matrix (FLOPs domain metrics)")
    print("=" * 70)
    print(matrix.to_markdown())
    print(
        f"\nraw-event vocabulary overlap across architectures: "
        f"{matrix.vocabulary_overlap():.0%} — the number that makes "
        "hand-maintained preset tables expensive."
    )


if __name__ == "__main__":
    main()
