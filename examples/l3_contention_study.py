#!/usr/bin/env python3
"""Shared-L3 contention: watching derived metrics respond to thread count.

The data-cache benchmark pressures the shared L3 with concurrent threads
(paper Section III-E).  This example uses the *derived* cache metrics —
not raw events — to chart that pressure: a fixed 4 MiB-per-thread pointer
chase is run at increasing thread counts, and the automatically composed
"L3 Hits" / "L2 Misses" definitions are evaluated from raw readings.  Up
to 8 threads the aggregate footprint fits the 32 MiB L3 and every L2 miss
is an L3 hit; beyond that, threads evict each other and the same derived
metrics expose the collapse.

This is the consumer-side payoff of the paper: once the event-to-metric
mapping is derived, capacity studies are three lines of instrumentation.

Run:  python examples/l3_contention_study.py

Set ``REPRO_EXAMPLE_FAST=1`` for a shrunk measurement (one stride, used
by the examples smoke test in CI); the contention story is unchanged.
"""

import os

from repro.core import AnalysisPipeline
from repro.hardware import PointerChase, aurora_node


def main() -> None:
    node = aurora_node(seed=2024)
    kwargs = {"strides": (64,)} if os.environ.get("REPRO_EXAMPLE_FAST") else {}
    result = AnalysisPipeline.for_domain("dcache", node, **kwargs).run()
    l3_hits = result.rounded_metrics["L3 Hits."]
    l2_misses = result.rounded_metrics["L2 Misses."]
    needed = sorted(set(l3_hits.terms()) | set(l2_misses.terms()))
    events = [node.events.get(name) for name in needed]

    print("Derived definitions in use:")
    print(f"  L3 Hits.  = {l3_hits.terms()}")
    print(f"  L2 Misses = {l2_misses.terms()}")
    print()
    print("4 MiB per thread, sweeping thread count (shared L3 = 32 MiB):")
    print(f"{'threads':>8} {'agg footprint':>14} {'L2 misses/acc':>14} "
          f"{'L3 hits/acc':>12} {'L3 hit rate':>12}")

    for threads in (1, 2, 4, 8, 12, 16):
        chase = PointerChase(n_pointers=65536, stride_bytes=64, n_threads=threads)
        activity = node.machine.run_pointer_chase(chase)[0]
        readings = {e.full_name: e.true_count(activity) for e in events}
        misses = l2_misses.evaluate(readings)
        hits = l3_hits.evaluate(readings)
        rate = hits / misses if misses else float("nan")
        print(
            f"{threads:>8} {threads * 4:>11} MiB {misses:>14.3f} "
            f"{hits:>12.3f} {rate:>11.1%}"
        )

    print()
    print(
        "Shape: every access misses L2 (4 MiB >> 2 MiB per-core L2); the "
        "L3 absorbs all of it until the aggregate footprint crosses 32 MiB "
        "(8 threads), after which the shared cache thrashes and the hit "
        "rate collapses — read entirely through automatically derived "
        "metrics."
    )


if __name__ == "__main__":
    main()
