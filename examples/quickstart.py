#!/usr/bin/env python3
"""Quickstart: automatically define DP FLOPs from raw events on a
Sapphire Rapids node.

This walks the paper's whole story in a dozen lines: run the CAT CPU-FLOPs
benchmark on the simulated Aurora node, push the measurements through the
analysis pipeline (noise filter -> expectation-basis representation ->
specialized QRCP -> least squares), and print the resulting metric
definitions — including the backward error that certifies which metrics
this architecture can actually express.

Run:  python examples/quickstart.py
"""

from repro.core import AnalysisPipeline
from repro.hardware import aurora_node


def main() -> None:
    node = aurora_node(seed=2024)
    pipeline = AnalysisPipeline.for_domain("cpu_flops", node)
    result = pipeline.run()

    print(f"Analyzed {result.noise.n_measured} raw events on {node.name}.")
    print(
        f"  noise filter kept {len(result.noise.kept)}, representation kept "
        f"{len(result.representation.event_names)}, QRCP selected "
        f"{len(result.selected_events)}:"
    )
    for event in result.selected_events:
        print(f"    {event}")
    print()

    # The headline metric: double-precision floating-point operations.
    print(result.metric("DP Ops.").pretty())
    print()

    # And the paper's absence-detection result: there is no dedicated FMA
    # counter on this architecture, and the backward error says so.
    fma = result.metric("DP FMA Instrs.")
    print(fma.pretty())
    print()
    verdict = "composable" if fma.composable else "NOT composable"
    print(f"'DP FMA Instrs.' is {verdict} on {node.name} (error {fma.error:.2e}).")

    # Composable definitions are exported as PAPI-style presets.
    print("\nDerived presets:")
    for preset in result.presets:
        print(f"  {preset.pretty()}")


if __name__ == "__main__":
    main()
