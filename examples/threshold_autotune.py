#!/usr/bin/env python3
"""Threshold auto-tuning: running the pipeline with *zero* magic numbers.

The paper chooses tau and alpha empirically (Sections IV and V-E) and
names their rigorous selection as future work.  This example exercises
that extension: derive both thresholds from the data itself, then re-run
the analysis with the derived values and confirm it lands on the same
events and metric definitions as the paper's hand-picked constants —
for the clean branch domain *and* the noisy data-cache domain.

Run:  python examples/threshold_autotune.py

Set ``REPRO_EXAMPLE_FAST=1`` to auto-tune the branch domain only (used
by the examples smoke test in CI).
"""

import os
from dataclasses import replace

from repro.core import AnalysisPipeline, select_alpha, select_tau
from repro.core.pipeline import DOMAIN_CONFIGS
from repro.hardware import aurora_node


def main() -> None:
    node = aurora_node(seed=2024)

    domains = ("branch",) if os.environ.get("REPRO_EXAMPLE_FAST") else (
        "branch", "dcache"
    )
    for domain in domains:
        paper_config = DOMAIN_CONFIGS[domain]
        reference = AnalysisPipeline.for_domain(domain, node).run()

        # 1. Derive tau from the variability distribution alone.
        tau_sel = select_tau(list(reference.noise.variabilities.values()))
        # 2. Derive alpha from the representation matrix alone.
        alpha_sel = select_alpha(reference.representation.x_matrix)

        print(f"=== {domain} ===")
        print(f"paper tau   = {paper_config.tau:8.1e}   "
              f"auto tau   = {tau_sel.tau:8.1e}  ({tau_sel.method}"
              f"{', unambiguous gap' if tau_sel.unambiguous else ''})")
        print(f"paper alpha = {paper_config.alpha:8.1e}   "
              f"auto alpha = {alpha_sel.alpha:8.1e}  "
              f"(plateau {alpha_sel.plateau_low:.1e}..{alpha_sel.plateau_high:.1e})")

        # 3. Re-run the whole pipeline with the derived thresholds.
        auto_config = replace(
            paper_config, tau=tau_sel.tau, alpha=alpha_sel.alpha
        )
        auto = AnalysisPipeline.for_domain(domain, node, config=auto_config).run()

        same_events = set(auto.selected_events) == set(reference.selected_events)
        print(f"auto-tuned run selects the paper's events: {same_events}")
        agree = all(
            abs(auto.metrics[name].error - reference.metrics[name].error) < 1e-6
            for name in reference.metrics
        )
        print(f"metric errors agree with the paper-threshold run: {agree}")
        print()


if __name__ == "__main__":
    main()
