#!/usr/bin/env python3
"""End-to-end middleware workflow: derive presets, persist them, and use
them to instrument an "application" through the PAPI-like layer.

This is the downstream-consumer story the paper motivates: a tool (TAU,
Score-P, ...) does not want raw events — it wants ``PAPI_DP_OPS``.  The
pipeline derives that preset automatically; this example then measures an
application kernel through an EventSet using only the preset's native
events and evaluates the metric from the readings, demonstrating that the
derived definition actually *works* for instrumentation.

Run:  python examples/papi_preset_workflow.py
"""

import tempfile
from pathlib import Path

from repro.activity import fp_instr_key
from repro.core import AnalysisPipeline
from repro.hardware import ComputeKernel, aurora_node
from repro.io.store import load_presets, save_presets
from repro.papi import Component, EventSet


def main() -> None:
    node = aurora_node(seed=2024)

    # 1. Derive preset definitions automatically (the paper's pipeline).
    result = AnalysisPipeline.for_domain("cpu_flops", node).run()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "spr_presets.json"
        save_presets(result.presets, path)
        presets = load_presets(path)
        print(f"loaded {len(presets)} derived presets from {path.name}")

    dp_ops = presets.get("PAPI_DP_OPS")
    print(f"\nPAPI_DP_OPS := {dict(dp_ops.terms)}")

    # 2. An "application" kernel: a mix the pipeline never saw — one
    # iteration does 10 scalar DP ops, 7 AVX-512 DP FMAs and 3 AVX2 SP adds.
    app_kernel = ComputeKernel(
        name="app_hotspot",
        fp_ops={
            fp_instr_key("scalar", "dp", "nonfma"): 10.0,
            fp_instr_key("512", "dp", "fma"): 7.0,
            fp_instr_key("256", "sp", "nonfma"): 3.0,
        },
    )
    activity = node.machine.run_compute(app_kernel)

    # 3. Instrument it through the middleware using only the preset's
    # native events (they fit one counter group on this PMU).
    component = Component(name="cpu", events=node.events)
    eventset = EventSet(component, node.pmu)
    for event_name in dp_ops.native_events:
        eventset.add_event(event_name)
    eventset.start()
    readings = eventset.stop(activity)

    print("\nraw readings for one iteration of app_hotspot:")
    for name, value in readings.items():
        print(f"  {name:<48} {value:10.1f}")

    measured = dp_ops.evaluate(readings)
    # Ground truth: 10 scalar DP FLOPs + 7 FMAs x 8 lanes x 2 ops = 122.
    expected = 10.0 + 7.0 * 8.0 * 2.0
    print(f"\nPAPI_DP_OPS evaluates to {measured:.1f} (ground truth {expected:.1f})")
    assert abs(measured - expected) < 1e-9
    print("the automatically derived preset measures the application exactly.")


if __name__ == "__main__":
    main()
