#!/usr/bin/env python3
"""Define a *custom* metric the paper never tabulated.

The signature mechanism is not limited to the paper's Tables I-IV: any
concept expressible in an expectation basis can be requested.  Here we
hand-craft three metrics a performance engineer might actually want —

* "DP vector Ops." — double-precision FLOPs done by packed (SIMD)
  instructions only, excluding scalar work;
* "AVX-512 Instrs." — all 512-bit instructions of either precision;
* "FP arithmetic density" — an intentionally *uncomposable* concept
  (FLOPs per cycle) whose signature lies outside the FP expectation
  basis, to show the backward error catching a bad request.

Run:  python examples/define_custom_metric.py
"""

import numpy as np

from repro.core import AnalysisPipeline
from repro.core.metrics import compose_metric
from repro.core.signatures import Signature
from repro.hardware import aurora_node


def main() -> None:
    node = aurora_node(seed=2024)
    result = AnalysisPipeline.for_domain("cpu_flops", node).run()
    basis = result.representation.basis
    dims = basis.dimension_labels

    # --- DP vector Ops: packed DP classes weighted by FLOPs/instruction.
    coords = np.zeros(len(dims))
    for label, weight in (
        ("D128", 2.0), ("D256", 4.0), ("D512", 8.0),
        ("D128_FMA", 4.0), ("D256_FMA", 8.0), ("D512_FMA", 16.0),
    ):
        coords[basis.dimension_index(label)] = weight
    dp_vector = Signature("DP vector Ops.", "cpu_flops", coords)
    metric = compose_metric(
        dp_vector.name, result.x_hat, result.selected_events, dp_vector
    )
    print(metric.pretty())
    print()

    # --- AVX-512 instructions, both precisions (FMA double-counted, per
    # the architecture's own counting convention).
    coords = np.zeros(len(dims))
    for label, weight in (
        ("S512", 1.0), ("D512", 1.0), ("S512_FMA", 2.0), ("D512_FMA", 2.0),
    ):
        coords[basis.dimension_index(label)] = weight
    avx512 = Signature("AVX-512 Instrs.", "cpu_flops", coords)
    metric = compose_metric(avx512.name, result.x_hat, result.selected_events, avx512)
    print(metric.pretty())
    print()

    # --- A concept the FP basis cannot express: something cycle-like.
    # Its expectation would be roughly constant per iteration across all
    # kernels, which no combination of FP expectations reproduces; the
    # least-squares error reports the failure honestly.
    rng = np.random.default_rng(7)
    bogus = Signature(
        "FP arithmetic density (bogus).",
        "cpu_flops",
        rng.uniform(0.3, 0.7, size=len(dims)),
    )
    metric = compose_metric(bogus.name, result.x_hat, result.selected_events, bogus)
    print(metric.pretty())
    print()
    print(
        "Note the error: requesting a concept outside the architecture's "
        "event space does not silently produce garbage — the fitness "
        "certificate flags it."
    )


if __name__ == "__main__":
    main()
