#!/usr/bin/env python3
"""Noise-threshold exploration (the paper's Section IV, interactively).

Reproduces the reasoning behind the two tau values: plots the sorted
max-RNMSE variabilities for the branching and data-cache benchmarks (the
paper's Figures 2a/2d), sweeps tau for each, and shows why 1e-10 is a
free choice for the branch events while the cache needs the lenient 1e-1
plus the median-across-threads trick.

Run:  python examples/noise_threshold_study.py

Set ``REPRO_EXAMPLE_FAST=1`` to study the branch benchmark only (used by
the examples smoke test in CI; the data-cache measurement dominates the
runtime).
"""

import os

import numpy as np

from repro.cat import BenchmarkRunner, BranchBenchmark, DCacheBenchmark
from repro.core.noise_filter import analyze_noise
from repro.hardware import aurora_node
from repro.viz.ascii import log_scatter
from repro.viz.series import fig2_series


def main() -> None:
    node = aurora_node(seed=2024)
    runner = BenchmarkRunner(node, repetitions=5)

    cases = [(BranchBenchmark(), 1e-10)]
    if not os.environ.get("REPRO_EXAMPLE_FAST"):
        cases.append((DCacheBenchmark(), 1e-1))
    for benchmark, tau in cases:
        measurement = runner.run(benchmark)
        noise = analyze_noise(measurement, tau=tau)
        series = fig2_series(noise)

        print(
            log_scatter(
                series.values,
                threshold=tau,
                title=f"--- {benchmark.name}: sorted max-RNMSE over "
                f"{noise.n_measured} events ---",
            )
        )
        lo, hi = series.separation_gap()
        print(f"zero-noise events: {series.n_zero_noise}")
        print(f"largest variability kept:    {lo:.3e}")
        print(f"smallest variability dropped: {hi:.3e}")
        if lo == 0.0 and hi > 1e-8:
            print(
                "-> a clean separation: any tau in the gap works "
                "(the paper picks 1e-10)."
            )
        else:
            print(
                "-> no clean gap: the threshold is a real trade-off; the "
                "paper keeps it lenient and relies on the thread median + "
                "representation residuals downstream."
            )
        print()

        print(f"tau sweep for {benchmark.name}:")
        for sweep_tau in np.logspace(-12, 0, 7):
            report = analyze_noise(measurement, tau=float(sweep_tau))
            print(f"  tau = {sweep_tau:8.1e}  -> {len(report.kept):4d} events kept")
        print()


if __name__ == "__main__":
    main()
