"""Cross-architecture portability: the pipeline on AMD Zen 3 (Trento).

Beyond the paper's evaluation systems, this exercises its Section III-B
remark that "several AMD processors do not offer different events for
strictly single-precision, or strictly double-precision instructions":
Zen's FP counters tally merged-precision *operations*, so the per-precision
metrics of Table I are uncomposable there — and the pipeline's backward
error reports exactly that, while composing everything the architecture
*can* express through a completely different raw vocabulary.
"""

import numpy as np
import pytest

from repro.activity import FP_PRECISIONS, FP_WIDTHS
from repro.cat.kernels import flops_per_instruction
from repro.core import AnalysisPipeline
from repro.core.metrics import compose_metric
from repro.core.signatures import Signature
from repro.hardware.systems import frontier_cpu_node


@pytest.fixture(scope="module")
def node():
    return frontier_cpu_node()


@pytest.fixture(scope="module")
def flops_result(node):
    return AnalysisPipeline.for_domain("cpu_flops", node).run()


@pytest.fixture(scope="module")
def branch_result(node):
    return AnalysisPipeline.for_domain("branch", node).run()


@pytest.fixture(scope="module")
def dcache_result(node):
    return AnalysisPipeline.for_domain("dcache", node).run()


def _int_terms(metric, tol=1e-6):
    return {e: round(c) for e, c in metric.terms().items() if abs(c) > tol}


class TestZen3FlopsFindings:
    def test_selects_the_two_merged_flop_counters(self, flops_result):
        assert set(flops_result.selected_events) == {
            "FP_RET_SSE_AVX_OPS:ADD_SUB_FLOPS",
            "FP_RET_SSE_AVX_OPS:MAC_FLOPS",
        }

    def test_per_precision_metrics_are_uncomposable(self, flops_result):
        """The paper's AMD observation, discovered automatically."""
        for name in (
            "SP Instrs.",
            "SP Ops.",
            "DP Instrs.",
            "DP Ops.",
            "SP FMA Instrs.",
            "DP FMA Instrs.",
        ):
            metric = flops_result.metric(name)
            assert not metric.composable, name
            assert metric.error > 0.1, name

    def test_all_fp_ops_composes_exactly(self, flops_result):
        """The concept Zen CAN express: total FLOPs across precisions."""
        basis = flops_result.representation.basis
        coords = np.zeros(basis.n_dimensions)
        for i, label in enumerate(basis.dimension_labels):
            fma = label.endswith("_FMA")
            prec = "sp" if label.startswith("S") else "dp"
            width_token = label.replace("_FMA", "")[1:]
            width = "scalar" if width_token == "SCAL" else width_token
            coords[i] = flops_per_instruction(width, prec, fma)
        signature = Signature("All FP Ops.", "cpu_flops", coords)
        metric = compose_metric(
            signature.name,
            flops_result.x_hat,
            flops_result.selected_events,
            signature,
        )
        assert metric.error < 1e-10
        assert _int_terms(metric) == {
            "FP_RET_SSE_AVX_OPS:ADD_SUB_FLOPS": 1,
            "FP_RET_SSE_AVX_OPS:MAC_FLOPS": 1,
        }


class TestZen3BranchFindings:
    def test_six_metrics_compose(self, branch_result):
        for name, metric in branch_result.metrics.items():
            if "Executed" in name:
                assert np.isclose(metric.error, 1.0), name
            else:
                assert metric.error < 1e-10, name

    def test_taken_composes_via_unconditional_subtraction(self, branch_result):
        """Zen has no conditional-taken counter: the pipeline derives
        Taken = all-taken - unconditional, unlike Intel's direct event."""
        metric = branch_result.metric("Conditional Branches Taken.")
        assert _int_terms(metric) == {
            "EX_RET_BRN_TKN": 1,
            "EX_RET_UNCOND_BRNCH_INSTR": -1,
        }

    def test_selection_differs_from_intel_but_spans_same_concepts(self, branch_result):
        selected = set(branch_result.selected_events)
        assert "EX_RET_COND" in selected
        assert "EX_RET_UNCOND_BRNCH_INSTR" in selected
        assert "EX_RET_BRN_TKN" in selected
        # The mispredict dimension rides one of its equivalent carriers.
        assert selected & {"EX_RET_BRN_MISP", "EX_RET_COND_MISP", "EX_RET_BRN_TKN_MISP"}


class TestZen3CacheFindings:
    def test_all_cache_metrics_compose(self, dcache_result):
        for name, metric in dcache_result.metrics.items():
            assert metric.error < 1e-10, name

    def test_l1_hits_compose_by_subtraction(self, dcache_result):
        """No L1-hit event exists on Zen: the definition must subtract a
        miss-ish carrier from an access-ish carrier."""
        rounded = dcache_result.rounded_metrics["L1 Hits."]
        terms = rounded.terms()
        assert len(terms) == 2
        assert sorted(terms.values()) == [-1.0, 1.0]

    def test_rounded_combinations_are_integral(self, dcache_result):
        for name, metric in dcache_result.rounded_metrics.items():
            for coeff in metric.terms().values():
                assert coeff == round(coeff), (name, coeff)

    def test_footprint_sweep_adapted_to_trento_geometry(self, node, dcache_result):
        # L2 rows must sit inside Trento's 512 KiB L2, not SPR's 2 MiB.
        labels = dcache_result.measurement.row_labels
        l2_rows = [l for l in labels if "/L2/" in l]
        sizes_kib = [int(l.rsplit("/", 1)[1].replace("KiB", "")) for l in l2_rows]
        assert max(sizes_kib) <= 512
        assert min(sizes_kib) > 32  # above Trento's L1


class TestZen3PresetPortability:
    def test_presets_use_zen_vocabulary(self, branch_result):
        preset = branch_result.presets.get("PAPI_BR_TKN")
        assert all(e.startswith("EX_RET") for e in preset.native_events)
