"""Tests for the parallel sweep engine and its pipeline-cache interplay."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.pipeline import AnalysisPipeline, DOMAIN_CONFIGS
from repro.core.sweep import (
    SweepEngine,
    SweepTask,
    expand_grid,
    results_by_label,
)
from repro.hardware.systems import aurora_node
from repro.io.cache import MeasurementCache


class TestSweepTask:
    def test_label(self):
        assert SweepTask("aurora", "branch").label == "aurora:branch"

    def test_rejects_unknown_system(self):
        with pytest.raises(ValueError, match="unknown system"):
            SweepTask("summit", "branch")

    def test_rejects_incompatible_domain(self):
        with pytest.raises(ValueError, match="not measurable"):
            SweepTask("frontier", "branch")


class TestExpandGrid:
    def test_skips_incompatible_pairs(self):
        tasks = expand_grid(
            ["aurora", "frontier"], ["cpu_flops", "gpu_flops", "branch"]
        )
        labels = [t.label for t in tasks]
        assert labels == [
            "aurora:cpu_flops",
            "aurora:branch",
            "frontier:gpu_flops",
        ]

    def test_cache_dir_enables_caching(self, tmp_path):
        tasks = expand_grid(["aurora"], ["branch"], cache_dir=str(tmp_path))
        assert tasks[0].config.use_measurement_cache
        assert tasks[0].cache_dir == str(tmp_path)

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            expand_grid(["nope"], ["branch"])


class TestSweepEngine:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            SweepEngine(executor="gpu")

    def test_empty_tasks(self):
        assert SweepEngine().run([]) == []

    def test_serial_matches_direct_pipeline(self):
        outcome = SweepEngine(executor="serial").run(
            [SweepTask("aurora", "branch")]
        )[0]
        assert outcome.ok
        direct = AnalysisPipeline.for_domain("branch", aurora_node()).run()
        assert np.array_equal(
            outcome.result.measurement.data, direct.measurement.data
        )
        assert outcome.result.selected_events == direct.selected_events

    def test_process_pool_two_nodes_two_domains_ordered(self):
        # The acceptance scenario: >= 2 nodes x 2 domains through the
        # process pool with deterministic, ordered output.
        tasks = expand_grid(["aurora", "frontier-cpu"], ["cpu_flops", "branch"])
        assert len(tasks) == 4
        outcomes = SweepEngine(max_workers=2, executor="process").run(tasks)
        assert [o.task.label for o in outcomes] == [t.label for t in tasks]
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        serial = SweepEngine(executor="serial").run(tasks)
        for parallel_outcome, serial_outcome in zip(outcomes, serial):
            assert np.array_equal(
                parallel_outcome.result.measurement.data,
                serial_outcome.result.measurement.data,
            )
            assert (
                parallel_outcome.result.selected_events
                == serial_outcome.result.selected_events
            )

    def test_task_error_does_not_sink_sweep(self, monkeypatch):
        import repro.core.sweep as sweep_mod

        def boom(seed):
            raise RuntimeError("node construction failed")

        monkeypatch.setitem(sweep_mod.SWEEP_SYSTEMS, "aurora", boom)
        outcomes = SweepEngine(executor="serial").run(
            [SweepTask("aurora", "branch"), SweepTask("frontier-cpu", "branch")]
        )
        assert not outcomes[0].ok
        assert "node construction failed" in outcomes[0].error
        assert outcomes[1].ok

    def test_results_by_label_drops_failures(self):
        outcomes = SweepEngine(executor="serial").run(
            [SweepTask("frontier-cpu", "branch")]
        )
        mapping = results_by_label(outcomes)
        assert list(mapping) == ["frontier-cpu:branch"]


class TestPipelineCacheIdentity:
    def test_cached_and_uncached_runs_identical(self):
        node = aurora_node()
        config = replace(DOMAIN_CONFIGS["branch"], use_measurement_cache=True)
        cache = MeasurementCache()
        uncached = AnalysisPipeline.for_domain("branch", node).run()
        first = AnalysisPipeline.for_domain(
            "branch", node, config=config, cache=cache
        ).run()
        second = AnalysisPipeline.for_domain(
            "branch", node, config=config, cache=cache
        ).run()
        # The second run hits the cache and skips measurement entirely.
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert second.measurement is first.measurement
        for result in (first, second):
            assert np.array_equal(
                result.measurement.data, uncached.measurement.data
            )
            assert result.selected_events == uncached.selected_events
            assert {n: m.error for n, m in result.metrics.items()} == {
                n: m.error for n, m in uncached.metrics.items()
            }
            assert {
                n: m.terms() for n, m in result.rounded_metrics.items()
            } == {n: m.terms() for n, m in uncached.rounded_metrics.items()}

    def test_cache_key_isolates_different_seeds(self):
        config = replace(DOMAIN_CONFIGS["branch"], use_measurement_cache=True)
        cache = MeasurementCache()
        a = AnalysisPipeline.for_domain(
            "branch", aurora_node(seed=1), config=config, cache=cache
        ).run()
        b = AnalysisPipeline.for_domain(
            "branch", aurora_node(seed=2), config=config, cache=cache
        ).run()
        assert cache.stats.misses == 2  # no false sharing across seeds
        assert not np.array_equal(a.measurement.data, b.measurement.data)
