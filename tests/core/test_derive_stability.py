"""Tests for whole-node preset derivation and the stability harness."""

import pytest

from repro.core import AnalysisPipeline
from repro.core.derive import applicable_domains, derive_presets
from repro.core.stability import selection_stability
from repro.hardware import aurora_node, frontier_node


class TestApplicableDomains:
    def test_cpu_node(self):
        assert applicable_domains(aurora_node()) == (
            "cpu_flops",
            "branch",
            "dcache",
            "dtlb",
        )

    def test_gpu_node(self):
        assert applicable_domains(frontier_node()) == ("gpu_flops",)


class TestDerivePresets:
    @pytest.fixture(scope="class")
    def report(self):
        # Two fast domains keep the test quick; the full four-domain run is
        # exercised by the CLI test and the benches.
        return derive_presets(aurora_node(), domains=("cpu_flops", "branch"))

    def test_merges_domains(self, report):
        names = {p.name for p in report.presets}
        assert "PAPI_DP_OPS" in names
        assert "PAPI_BR_MSP" in names

    def test_records_uncomposable(self, report):
        flat = {(domain, metric) for domain, metric, _ in report.uncomposable}
        assert ("cpu_flops", "DP FMA Instrs.") in flat
        assert ("branch", "Conditional Branches Executed.") in flat

    def test_results_kept_per_domain(self, report):
        assert set(report.results) == {"cpu_flops", "branch"}

    def test_summary_renders(self, report):
        text = report.summary()
        assert "aurora-spr" in text
        assert "not composable" in text

    def test_presets_have_clean_coefficients(self, report):
        for preset in report.presets:
            for coeff in preset.terms.values():
                assert coeff == round(coeff), (preset.name, coeff)

    def test_gpu_node_derivation(self):
        report = derive_presets(frontier_node())
        assert len(report.presets) == 4
        assert all("rocm:::" in e for p in report.presets for e in p.native_events)


class TestSelectionStability:
    def test_branch_selection_deterministic_across_seeds(self):
        report = selection_stability(
            lambda seed: aurora_node(seed=seed), "branch", seeds=[1, 2, 3]
        )
        assert report.is_deterministic
        families = report.carrier_families()
        assert families["M"] == ["BR_MISP_RETIRED"]
        assert families["CR"] == ["BR_INST_RETIRED:COND"]

    def test_dcache_carriers_form_coherent_families(self):
        report = selection_stability(
            lambda seed: aurora_node(seed=seed), "dcache", seeds=[1, 7, 1234]
        )
        families = report.carrier_families()
        # Unique-carrier dimensions never vary...
        assert families["L1DH"] == ["MEM_LOAD_RETIRED:L1_HIT"]
        assert families["L2DH"] == ["L2_RQSTS:DEMAND_DATA_RD_HIT"]
        assert families["L3DH"] == ["MEM_LOAD_RETIRED:L3_HIT"]
        # ...while the L1DM dimension may ride any equivalent carrier.
        allowed = {
            "MEM_LOAD_RETIRED:L1_MISS",
            "L2_RQSTS:ALL_DEMAND_DATA_RD",
            "L2_RQSTS:ALL_DEMAND_REFERENCES",
            "OFFCORE_REQUESTS:DEMAND_DATA_RD",
        }
        assert set(families["L1DM"]) <= allowed

    def test_modal_selection_has_one_event_per_dimension(self):
        report = selection_stability(
            lambda seed: aurora_node(seed=seed), "branch", seeds=[5, 6]
        )
        modal = report.modal_selection()
        assert len(modal) == len(report.dimension_carriers)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            selection_stability(lambda s: aurora_node(seed=s), "branch", seeds=[])

    def test_summary_renders(self):
        report = selection_stability(
            lambda seed: aurora_node(seed=seed), "branch", seeds=[1, 2]
        )
        assert "deterministic selection" in report.summary()
