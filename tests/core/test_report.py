"""Tests for the paper-style report module."""

import pytest

from repro.core import AnalysisPipeline
from repro.core.report import metric_table_rows, render_report, write_report
from repro.hardware import aurora_node


@pytest.fixture(scope="module")
def branch_result():
    return AnalysisPipeline.for_domain("branch", aurora_node()).run()


class TestMetricTableRows:
    def test_rows_cover_all_metrics(self, branch_result):
        rows = metric_table_rows(branch_result)
        assert len(rows) == len(branch_result.metrics)
        names = {row[0] for row in rows}
        assert "Mispredicted Branches." in names

    def test_uncomposable_metric_marked(self, branch_result):
        rows = {row[0]: row for row in metric_table_rows(branch_result)}
        combo = rows["Conditional Branches Executed."][1]
        assert combo == "(no combination: uncomposable)"

    def test_coefficient_floor_drops_noise_terms(self, branch_result):
        rows = {row[0]: row for row in metric_table_rows(branch_result)}
        combo = rows["Mispredicted Branches."][1]
        assert combo == "+1 x BR_MISP_RETIRED"

    def test_rounded_variant(self, branch_result):
        rows = metric_table_rows(branch_result, rounded=True)
        assert len(rows) == len(branch_result.rounded_metrics)


class TestRenderReport:
    def test_contains_all_sections(self, branch_result):
        text = render_report(branch_result)
        for heading in (
            "## Pipeline census",
            "## Selected events (Section V)",
            "## Metric definitions (Section VI)",
            "## Rounded definitions (Section VI-D)",
            "## Event variability (Section IV / Figure 2)",
        ):
            assert heading in text, heading

    def test_census_numbers_consistent(self, branch_result):
        text = render_report(branch_result, include_figures=False)
        assert str(branch_result.noise.n_measured) in text
        assert f"alpha={branch_result.config.alpha:g}" in text

    def test_figures_optional(self, branch_result):
        text = render_report(branch_result, include_figures=False)
        assert "Figure 2" not in text

    def test_selected_events_listed(self, branch_result):
        text = render_report(branch_result, include_figures=False)
        for event in branch_result.selected_events:
            assert event in text


class TestWriteReport:
    def test_writes_markdown(self, branch_result, tmp_path):
        path = write_report(branch_result, tmp_path / "sub" / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Event analysis report — branch")
