"""Tests for the representation stage and metric composition."""

import numpy as np
import pytest

from repro.core.basis import branch_basis, cpu_flops_basis
from repro.core.metrics import MetricDefinition, compose_metric, round_coefficients
from repro.core.representation import represent_events
from repro.core.signatures import Signature, branch_signatures


class TestRepresentEvents:
    def test_pure_event_recovers_unit_representation(self):
        basis = branch_basis()
        m = basis.expectation("T").reshape(-1, 1)
        report = represent_events(basis, ["TAKEN"], m, threshold=1e-8)
        assert report.event_names == ["TAKEN"]
        assert np.allclose(report.representation("TAKEN"), [0, 0, 1, 0, 0], atol=1e-12)

    def test_scaled_combination_recovered(self):
        basis = branch_basis()
        m = (2.0 * basis.expectation("CR") + 0.5 * basis.expectation("M")).reshape(-1, 1)
        report = represent_events(basis, ["combo"], m, threshold=1e-8)
        assert np.allclose(report.representation("combo"), [0, 2.0, 0, 0, 0.5], atol=1e-12)

    def test_constant_overhead_rejected(self):
        # The loop-overhead contamination case: a constant per-iteration
        # count is outside the span of the branch basis.
        basis = branch_basis()
        m = (basis.expectation("CR") + 2.0 * np.ones(basis.n_rows)).reshape(-1, 1)
        report = represent_events(basis, ["INST_RETIRED:ANY"], m, threshold=1e-6)
        assert report.rejected == ["INST_RETIRED:ANY"]
        assert report.residuals["INST_RETIRED:ANY"] > 1e-3

    def test_lenient_threshold_keeps_contaminated_event(self):
        basis = branch_basis()
        m = (basis.expectation("CR") + 0.01 * np.ones(basis.n_rows)).reshape(-1, 1)
        report = represent_events(basis, ["e"], m, threshold=0.25)
        assert report.event_names == ["e"]

    def test_zero_column_rejected(self):
        basis = branch_basis()
        report = represent_events(
            basis, ["dead"], np.zeros((basis.n_rows, 1)), threshold=0.1
        )
        assert report.rejected == ["dead"]
        assert report.residuals["dead"] == 1.0

    def test_shape_mismatch(self):
        basis = branch_basis()
        with pytest.raises(ValueError):
            represent_events(basis, ["a"], np.zeros((3, 1)), threshold=0.1)

    def test_unknown_event_lookup(self):
        basis = branch_basis()
        report = represent_events(basis, [], np.zeros((basis.n_rows, 0)), 0.1)
        with pytest.raises(KeyError):
            report.representation("missing")

    def test_fma_double_count_representation(self):
        # A measurement equal to nonFMA + 2*FMA expectations yields the
        # (1, 2) representation that produces the paper's 0.8 coefficients.
        basis = cpu_flops_basis()
        m = (basis.expectation("DSCAL") + 2.0 * basis.expectation("DSCAL_FMA")).reshape(-1, 1)
        report = represent_events(basis, ["fp"], m, threshold=1e-8)
        x = report.representation("fp")
        assert x[basis.dimension_index("DSCAL")] == pytest.approx(1.0)
        assert x[basis.dimension_index("DSCAL_FMA")] == pytest.approx(2.0)
        assert np.allclose(np.delete(x, [4, 12]), 0.0, atol=1e-12)


class TestComposeMetric:
    def _sigs(self):
        return {s.name: s for s in branch_signatures()}

    def test_exact_composition(self):
        # X-hat = [CR, T, M, CR+D] (the paper's selected branch events).
        x_hat = np.array(
            [
                [0.0, 0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0, 1.0],
                [0.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0, 0.0],
            ]
        )
        events = ["COND", "TAKEN", "MISP", "ALL"]
        d = compose_metric(
            "Unconditional Branches.", x_hat, events, self._sigs()["Unconditional Branches."]
        )
        assert d.error < 1e-12
        assert d.composable
        assert np.allclose(d.coefficients, [-1.0, 0.0, 0.0, 1.0], atol=1e-10)

    def test_uncomposable_signature(self):
        x_hat = np.array([[0.0], [1.0], [0.0], [0.0], [0.0]])
        d = compose_metric(
            "Conditional Branches Executed.",
            x_hat,
            ["COND"],
            self._sigs()["Conditional Branches Executed."],
        )
        assert np.isclose(d.error, 1.0)
        assert not d.composable

    def test_evaluate_applies_combination(self):
        d = MetricDefinition(
            metric="m",
            event_names=("a", "b"),
            coefficients=np.array([2.0, -1.0]),
            error=0.0,
        )
        assert d.evaluate({"a": 10.0, "b": 3.0}) == 17.0

    def test_terms_drop_zeros(self):
        d = MetricDefinition(
            metric="m", event_names=("a", "b"), coefficients=np.array([1.0, 0.0]), error=0.0
        )
        assert d.terms() == {"a": 1.0}

    def test_as_preset_maps_papi_name(self):
        d = MetricDefinition(
            metric="Mispredicted Branches.",
            event_names=("BR_MISP_RETIRED",),
            coefficients=np.array([1.0]),
            error=1e-16,
        )
        preset = d.as_preset()
        assert preset.name == "PAPI_BR_MSP"
        assert preset.evaluate({"BR_MISP_RETIRED": 7.0}) == 7.0

    def test_shape_validations(self):
        with pytest.raises(ValueError):
            MetricDefinition("m", ("a",), np.array([1.0, 2.0]), 0.0)
        sig = branch_signatures()[0]
        with pytest.raises(ValueError):
            compose_metric("m", np.zeros((5, 2)), ["a"], sig)
        with pytest.raises(ValueError):
            compose_metric("m", np.zeros((3, 1)), ["a"], sig)


class TestRoundCoefficients:
    def test_snaps_near_integers(self):
        d = MetricDefinition(
            metric="m",
            event_names=("a", "b", "c"),
            coefficients=np.array([1.002, -0.998, 0.003]),
            error=1e-16,
        )
        r = round_coefficients(d)
        assert r.coefficients.tolist() == [1.0, -1.0, 0.0]

    def test_leaves_genuine_fractions(self):
        d = MetricDefinition(
            metric="m", event_names=("a",), coefficients=np.array([0.8]), error=0.2
        )
        r = round_coefficients(d)
        assert r.coefficients[0] == pytest.approx(0.8)

    def test_recomputes_error_with_xhat(self):
        sig = Signature("s", "b", np.array([1.0, 0.0]))
        x_hat = np.array([[1.0], [0.001]])
        d = MetricDefinition(
            metric="s",
            event_names=("e",),
            coefficients=np.array([0.999]),
            error=0.5,
            signature=sig,
        )
        r = round_coefficients(d, x_hat=x_hat)
        assert r.coefficients[0] == 1.0
        assert r.error != 0.5  # recomputed

    def test_preserves_metadata(self):
        d = MetricDefinition(
            metric="m", event_names=("a",), coefficients=np.array([1.01]), error=0.0
        )
        r = round_coefficients(d)
        assert r.metric == "m"
        assert r.event_names == ("a",)
