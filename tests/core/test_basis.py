"""Tests for expectation bases."""

import numpy as np
import pytest

from repro.core.basis import (
    BRANCH_EXPECTATION_MATRIX,
    ExpectationBasis,
    branch_basis,
    cpu_flops_basis,
    dcache_basis,
    gpu_flops_basis,
)


class TestExpectationBasis:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ExpectationBasis("x", ("a",), ("r1", "r2"), np.ones((3, 1)))

    def test_rank_validation(self):
        with pytest.raises(ValueError, match="rank deficient"):
            ExpectationBasis(
                "x", ("a", "b"), ("r1", "r2"), np.array([[1.0, 2.0], [2.0, 4.0]])
            )

    def test_dimension_lookup(self):
        basis = branch_basis()
        assert basis.dimension_index("T") == 2
        with pytest.raises(KeyError):
            basis.dimension_index("NOPE")

    def test_expectation_column(self):
        basis = branch_basis()
        assert np.allclose(basis.expectation("D"), BRANCH_EXPECTATION_MATRIX[:, 3])


class TestCPUFlopsBasis:
    def test_geometry(self):
        basis = cpu_flops_basis()
        assert basis.matrix.shape == (48, 16)
        assert basis.n_dimensions == 16

    def test_dimension_order_matches_paper(self):
        # (S_SCAL, S128, S256, S512, D_SCAL..D512, then the FMA block).
        labels = basis = cpu_flops_basis().dimension_labels
        assert labels[:8] == (
            "SSCAL", "S128", "S256", "S512", "DSCAL", "D128", "D256", "D512",
        )
        assert labels[8] == "SSCAL_FMA"
        assert labels[15] == "D512_FMA"

    def test_block_diagonal_structure(self):
        basis = cpu_flops_basis()
        # Each row has exactly one nonzero: the kernel's own class.
        assert (np.count_nonzero(basis.matrix, axis=1) == 1).all()

    def test_non_fma_blocks(self):
        basis = cpu_flops_basis()
        col = basis.expectation("DSCAL")
        assert sorted(col[col > 0].tolist()) == [24.0, 48.0, 96.0]

    def test_fma_blocks_are_half_sized(self):
        basis = cpu_flops_basis()
        col = basis.expectation("D256_FMA")
        assert sorted(col[col > 0].tolist()) == [12.0, 24.0, 48.0]

    def test_paper_example_signature_recovery(self):
        # Section III-A: DSCAL + 8*D256_FMA over the two example kernels
        # yields (24,48,96) and (96,192,384) FLOPs.
        basis = cpu_flops_basis()
        flops = basis.expectation("DSCAL") + 8.0 * basis.expectation("D256_FMA")
        scal_rows = [i for i, l in enumerate(basis.row_labels) if l.startswith("dp_scalar/")]
        fma_rows = [i for i, l in enumerate(basis.row_labels) if l.startswith("dp_256_fma/")]
        assert flops[scal_rows].tolist() == [24.0, 48.0, 96.0]
        assert flops[fma_rows].tolist() == [96.0, 192.0, 384.0]


class TestGPUFlopsBasis:
    def test_geometry(self):
        basis = gpu_flops_basis()
        assert basis.matrix.shape == (45, 15)

    def test_dimension_order_matches_paper_table2(self):
        labels = gpu_flops_basis().dimension_labels
        assert labels == (
            "AH", "AS", "AD", "SH", "SS", "SD", "MH", "MS", "MD",
            "SQH", "SQS", "SQD", "FH", "FS", "FD",
        )


class TestBranchBasis:
    def test_matches_paper_equation3(self):
        basis = branch_basis()
        assert np.array_equal(basis.matrix, BRANCH_EXPECTATION_MATRIX)

    def test_derived_equals_paper(self):
        """The strongest substrate check: running the kernel specs through
        the simulated branch unit reproduces Equation 3 exactly."""
        derived = branch_basis(derive=True)
        assert np.array_equal(derived.matrix, BRANCH_EXPECTATION_MATRIX)

    def test_labels(self):
        basis = branch_basis()
        assert basis.dimension_labels == ("CE", "CR", "T", "D", "M")
        assert len(basis.row_labels) == 11


class TestDCacheBasis:
    def test_geometry(self):
        basis = dcache_basis()
        assert basis.matrix.shape == (16, 4)
        assert basis.dimension_labels == ("L1DM", "L1DH", "L2DH", "L3DH")

    def test_l1_rows_hit_only(self):
        basis = dcache_basis()
        for i, label in enumerate(basis.row_labels):
            if "/L1/" in label:
                assert basis.matrix[i].tolist() == [0.0, 1.0, 0.0, 0.0]

    def test_memory_rows_miss_everything(self):
        basis = dcache_basis()
        for i, label in enumerate(basis.row_labels):
            if "/M/" in label:
                assert basis.matrix[i].tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_every_access_hits_or_misses_l1(self):
        basis = dcache_basis()
        l1_total = basis.expectation("L1DM") + basis.expectation("L1DH")
        assert np.allclose(l1_total, 1.0)
