"""Robustness and failure-injection tests for the pipeline.

The paper's conclusions should not hinge on one lucky seed or on a
pristine measurement set; these tests perturb both.
"""

import numpy as np
import pytest

from repro.cat.measurement import MeasurementSet
from repro.core import AnalysisPipeline
from repro.core.noise_filter import analyze_noise
from repro.core.pipeline import DOMAIN_CONFIGS
from repro.hardware import aurora_node


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 7, 1234])
    def test_branch_selection_stable_across_seeds(self, seed):
        result = AnalysisPipeline.for_domain("branch", aurora_node(seed=seed)).run()
        assert set(result.selected_events) == {
            "BR_MISP_RETIRED",
            "BR_INST_RETIRED:COND",
            "BR_INST_RETIRED:COND_TAKEN",
            "BR_INST_RETIRED:ALL_BRANCHES",
        }

    #: Events whose representation is exactly the L1DM dimension; the QR
    #: may carry that dimension with any of them depending on the noise
    #: realization (they are semantically interchangeable).
    L1DM_CARRIERS = {
        "MEM_LOAD_RETIRED:L1_MISS",
        "L2_RQSTS:ALL_DEMAND_DATA_RD",
        "L2_RQSTS:ALL_DEMAND_REFERENCES",
        "OFFCORE_REQUESTS:DEMAND_DATA_RD",
    }

    @pytest.mark.parametrize("seed", [1, 7, 1234])
    def test_dcache_selection_covers_same_dimensions_across_seeds(self, seed):
        result = AnalysisPipeline.for_domain("dcache", aurora_node(seed=seed)).run()
        selected = set(result.selected_events)
        # Three dimensions have a unique clean carrier...
        assert {
            "MEM_LOAD_RETIRED:L3_HIT",
            "L2_RQSTS:DEMAND_DATA_RD_HIT",
            "MEM_LOAD_RETIRED:L1_HIT",
        } <= selected
        # ...while L1DM may ride any of its interchangeable carriers.
        carriers = selected & self.L1DM_CARRIERS
        assert len(carriers) == 1
        # Whichever carrier won, the rounded L2-Misses definition is the
        # same concept: (L1 demand misses) - (L2 demand hits).
        terms = result.rounded_metrics["L2 Misses."].terms()
        assert terms.pop("L2_RQSTS:DEMAND_DATA_RD_HIT") == -1.0
        (carrier, coeff), = terms.items()
        assert carrier in self.L1DM_CARRIERS and coeff == 1.0

    def test_repetition_count_does_not_change_selection(self):
        from dataclasses import replace

        node = aurora_node()
        base = DOMAIN_CONFIGS["branch"]
        few = AnalysisPipeline.for_domain(
            "branch", node, config=replace(base, repetitions=2)
        ).run()
        many = AnalysisPipeline.for_domain(
            "branch", node, config=replace(base, repetitions=8)
        ).run()
        assert set(few.selected_events) == set(many.selected_events)


class TestFailureInjection:
    @pytest.fixture(scope="class")
    def branch_measurement(self):
        result = AnalysisPipeline.for_domain("branch", aurora_node()).run()
        return result.measurement

    def test_corrupted_event_is_filtered_not_selected(self, branch_measurement):
        """A counter that glitches in one repetition (SMI-style) must be
        caught by the noise filter rather than poisoning the analysis."""
        data = branch_measurement.data.copy()
        idx = branch_measurement.event_names.index("BR_INST_RETIRED:COND_TAKEN")
        data[2, 0, 5, idx] *= 40.0  # one glitched reading
        corrupted = MeasurementSet(
            benchmark=branch_measurement.benchmark,
            row_labels=list(branch_measurement.row_labels),
            event_names=list(branch_measurement.event_names),
            data=data,
        )
        pipeline = AnalysisPipeline.for_domain("branch", aurora_node())
        result = pipeline.run(measurement=corrupted)
        assert "BR_INST_RETIRED:COND_TAKEN" in result.noise.noisy
        assert "BR_INST_RETIRED:COND_TAKEN" not in result.selected_events
        # Graceful degradation: the QR substitutes COND_NTAKEN for the lost
        # taken-dimension carrier and Taken recomposes as COND - NTAKEN.
        assert "BR_INST_RETIRED:COND_NTAKEN" in result.selected_events
        taken = result.metrics["Conditional Branches Taken."]
        assert taken.error < 1e-10
        terms = {
            e: round(c)
            for e, c in taken.terms().items()
            if abs(c) > 1e-6
        }
        assert terms == {
            "BR_INST_RETIRED:COND": 1,
            "BR_INST_RETIRED:COND_NTAKEN": -1,
        }
        # Unrelated metrics are untouched.
        assert result.metrics["Mispredicted Branches."].error < 1e-10

    def test_dead_counter_injection(self, branch_measurement):
        """An event that reads zero everywhere is discarded as irrelevant
        (footnote 1), never scored."""
        data = branch_measurement.data.copy()
        idx = branch_measurement.event_names.index("BR_INST_RETIRED:COND")
        data[..., idx] = 0.0
        corrupted = MeasurementSet(
            benchmark=branch_measurement.benchmark,
            row_labels=list(branch_measurement.row_labels),
            event_names=list(branch_measurement.event_names),
            data=data,
        )
        report = analyze_noise(corrupted, tau=1e-10)
        assert "BR_INST_RETIRED:COND" in report.discarded_zero

    def test_all_events_corrupted_yields_empty_selection(self, branch_measurement):
        rng = np.random.default_rng(0)
        data = branch_measurement.data * rng.uniform(
            0.5, 1.5, size=branch_measurement.data.shape
        )
        corrupted = MeasurementSet(
            benchmark=branch_measurement.benchmark,
            row_labels=list(branch_measurement.row_labels),
            event_names=list(branch_measurement.event_names),
            data=data,
        )
        pipeline = AnalysisPipeline.for_domain("branch", aurora_node())
        result = pipeline.run(measurement=corrupted)
        assert result.selected_events == []
        # Every metric is honestly reported as uncomposable.
        for metric in result.metrics.values():
            assert not metric.composable
