"""Property tests for incremental QRCP (``qrcp_update``).

The contract under test is absolute: for *any* matrix and *any* declared
column change, ``qrcp_update`` must return exactly what
``qrcp_specialized`` returns on the edited matrix — same pivots, same
ranks, bit-identical factors — whether it got there by verified replay
or by falling back to the full factorization.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qrcp import qrcp_specialized, qrcp_update
from repro.obs import tracing

ALPHA = 5e-2


def _event_like_matrix(rng, m, n):
    cols = []
    for _ in range(n):
        kind = rng.integers(0, 4)
        c = np.zeros(m)
        if kind == 0:
            c[rng.integers(0, m)] = 1.0
        elif kind == 1:
            c[rng.integers(0, m)] = float(rng.integers(2, 9))
        elif kind == 2:
            c[rng.integers(0, m)] = 1.0
            c[rng.integers(0, m)] += 2.0
        else:
            c = rng.normal(0, 1e-6, m)
        cols.append(c)
    return np.column_stack(cols)


def _assert_same_result(incremental, scratch):
    assert list(incremental.selected) == list(scratch.selected)
    assert incremental.rank == scratch.rank
    assert list(incremental.permutation) == list(scratch.permutation)
    assert incremental.r_factor.tobytes() == scratch.r_factor.tobytes()


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_update_matches_from_scratch(seed):
    """Any single-column edit: replay or fallback, the answer is the
    from-scratch answer, bit for bit."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(4, 10))
    n = int(rng.integers(3, 12))
    x = _event_like_matrix(rng, m, n)
    previous = qrcp_specialized(x, alpha=ALPHA)

    j = int(rng.integers(0, n))
    x_new = x.copy()
    kind = rng.integers(0, 3)
    if kind == 0:  # rescale (keeps direction: replay-friendly)
        x_new[:, j] = x_new[:, j] * 1.01
    elif kind == 1:  # new direction entirely
        x_new[:, j] = 0.0
        x_new[rng.integers(0, m), j] = 1.0
    else:  # zero it out (loses eligibility)
        x_new[:, j] = 0.0

    updated = qrcp_update(x_new, previous, changed_columns=[j], alpha=ALPHA)
    scratch = qrcp_specialized(x_new, alpha=ALPHA)
    _assert_same_result(updated, scratch)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_multi_column_edits_match(seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(5, 9))
    n = int(rng.integers(4, 10))
    x = _event_like_matrix(rng, m, n)
    previous = qrcp_specialized(x, alpha=ALPHA)

    k = int(rng.integers(1, min(3, n) + 1))
    changed = sorted(rng.choice(n, size=k, replace=False).tolist())
    x_new = x.copy()
    for j in changed:
        x_new[:, j] = rng.normal(0, 1.0, m)

    updated = qrcp_update(x_new, previous, changed_columns=changed, alpha=ALPHA)
    scratch = qrcp_specialized(x_new, alpha=ALPHA)
    _assert_same_result(updated, scratch)


def test_noop_edit_is_replayed():
    """Declaring a change that leaves the score structure intact replays
    the old pivots without a fallback."""
    rng = np.random.default_rng(3)
    x = _event_like_matrix(rng, 8, 10)
    previous = qrcp_specialized(x, alpha=ALPHA)
    unselected = [j for j in range(10) if j not in set(previous.selected)]
    j = unselected[0]
    x_new = x.copy()  # declared changed, actually identical
    with tracing(seed=0) as tracer:
        updated = qrcp_update(x_new, previous, changed_columns=[j], alpha=ALPHA)
        assert tracer.counters.get("incr.qr_replays", 0) == 1
        assert tracer.counters.get("incr.qr_fallbacks", 0) == 0
    _assert_same_result(updated, qrcp_specialized(x_new, alpha=ALPHA))


def test_editing_selected_column_falls_back():
    rng = np.random.default_rng(4)
    x = _event_like_matrix(rng, 8, 10)
    previous = qrcp_specialized(x, alpha=ALPHA)
    j = previous.selected[0]
    x_new = x.copy()
    x_new[:, j] *= 2.0
    with tracing(seed=0) as tracer:
        updated = qrcp_update(x_new, previous, changed_columns=[j], alpha=ALPHA)
        assert tracer.counters.get("incr.qr_fallbacks", 0) == 1
    _assert_same_result(updated, qrcp_specialized(x_new, alpha=ALPHA))


def test_shape_mismatch_rejected():
    rng = np.random.default_rng(5)
    x = _event_like_matrix(rng, 6, 8)
    previous = qrcp_specialized(x, alpha=ALPHA)
    with pytest.raises(ValueError):
        qrcp_update(x[:, :-1], previous, changed_columns=[0], alpha=ALPHA)


def test_changed_column_out_of_range_rejected():
    rng = np.random.default_rng(6)
    x = _event_like_matrix(rng, 6, 8)
    previous = qrcp_specialized(x, alpha=ALPHA)
    with pytest.raises(IndexError):
        qrcp_update(x, previous, changed_columns=[8], alpha=ALPHA)
