"""Cross-cutting consistency invariants every pipeline result must satisfy,
checked uniformly over all five domains.

These are the structural guarantees downstream code relies on, independent
of any particular paper number: stage censuses add up, selections are
subsets of survivors, X-hat really is linearly independent and really is
the claimed columns of X, errors are bounded, presets mirror the
composable metrics.
"""

import numpy as np
import pytest

from repro.core import AnalysisPipeline
from repro.hardware import aurora_node, frontier_node

DOMAINS = ["cpu_flops", "branch", "dcache", "dtlb", "gpu_flops"]


@pytest.fixture(scope="module")
def results():
    out = {}
    cpu = aurora_node()
    for domain in ("cpu_flops", "branch", "dcache", "dtlb"):
        out[domain] = AnalysisPipeline.for_domain(domain, cpu).run()
    out["gpu_flops"] = AnalysisPipeline.for_domain("gpu_flops", frontier_node()).run()
    return out


@pytest.mark.parametrize("domain", DOMAINS)
class TestStageCensus:
    def test_event_counts_add_up(self, results, domain):
        r = results[domain]
        measured = r.measurement.n_events
        assert r.noise.n_measured == measured
        assert len(r.noise.kept) + len(r.noise.noisy) + len(
            r.noise.discarded_zero
        ) == measured
        assert len(r.representation.event_names) + len(
            r.representation.rejected
        ) == len(r.noise.kept)

    def test_selection_is_subset_of_survivors(self, results, domain):
        r = results[domain]
        assert set(r.selected_events) <= set(r.representation.event_names)
        assert len(r.selected_events) == r.qrcp.rank

    def test_selection_bounded_by_basis_rank(self, results, domain):
        r = results[domain]
        assert 0 < len(r.selected_events) <= r.representation.basis.n_dimensions


@pytest.mark.parametrize("domain", DOMAINS)
class TestXHat:
    def test_xhat_matches_representations(self, results, domain):
        r = results[domain]
        for k, event in enumerate(r.selected_events):
            assert np.array_equal(
                r.x_hat[:, k], r.representation.representation(event)
            ), event

    def test_xhat_full_column_rank(self, results, domain):
        r = results[domain]
        assert np.linalg.matrix_rank(r.x_hat, tol=1e-8) == r.x_hat.shape[1]

    def test_xhat_square_or_overdetermined(self, results, domain):
        # The paper's Section V guarantee.
        r = results[domain]
        assert r.x_hat.shape[0] >= r.x_hat.shape[1]


@pytest.mark.parametrize("domain", DOMAINS)
class TestMetricsAndPresets:
    def test_errors_bounded(self, results, domain):
        for metric in results[domain].metrics.values():
            assert 0.0 <= metric.error <= 1.0 + 1e-9, metric.metric

    def test_metric_events_match_selection(self, results, domain):
        r = results[domain]
        for metric in r.metrics.values():
            assert metric.event_names == tuple(r.selected_events)

    def test_presets_exactly_the_composable_metrics(self, results, domain):
        r = results[domain]
        composable = {m.metric for m in r.metrics.values() if m.composable}
        from repro.papi.presets import PAPI_PRESET_NAMES

        expected_names = {PAPI_PRESET_NAMES.get(m, m) for m in composable}
        assert {p.name for p in r.presets} == expected_names

    def test_rounded_metrics_cover_all_metrics(self, results, domain):
        r = results[domain]
        assert set(r.rounded_metrics) == set(r.metrics)

    def test_every_signature_produced_a_metric(self, results, domain):
        from repro.core.signatures import signatures_for

        r = results[domain]
        assert set(r.metrics) == {s.name for s in signatures_for(domain)}


@pytest.mark.parametrize("domain", DOMAINS)
class TestResidualBookkeeping:
    def test_residuals_recorded_for_all_scored_events(self, results, domain):
        r = results[domain]
        scored = set(r.representation.event_names) | set(r.representation.rejected)
        assert set(r.representation.residuals) == scored

    def test_kept_events_within_threshold(self, results, domain):
        r = results[domain]
        threshold = r.config.representation_threshold
        for event in r.representation.event_names:
            assert r.representation.residuals[event] <= threshold, event

    def test_variabilities_of_kept_events_within_tau(self, results, domain):
        r = results[domain]
        for event in r.noise.kept:
            assert r.noise.variabilities[event] <= r.config.tau, event
