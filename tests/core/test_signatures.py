"""Tests pinning the signature tables to the paper's Tables I-IV."""

import numpy as np
import pytest

from repro.core.basis import cpu_flops_basis, gpu_flops_basis
from repro.core.signatures import (
    Signature,
    branch_signatures,
    cpu_flops_signatures,
    dcache_signatures,
    gpu_flops_signatures,
    signatures_for,
)


def _by_name(signatures):
    return {s.name: s for s in signatures}


class TestCPUFlopsSignatures:
    """Paper Table I, verbatim."""

    TABLE_I = {
        "SP Instrs.": [1, 1, 1, 1, 0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0],
        "SP Ops.": [1, 4, 8, 16, 0, 0, 0, 0, 2, 8, 16, 32, 0, 0, 0, 0],
        "SP FMA Instrs.": [0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0],
        "DP Instrs.": [0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 2, 2, 2, 2],
        "DP Ops.": [0, 0, 0, 0, 1, 2, 4, 8, 0, 0, 0, 0, 2, 4, 8, 16],
        "DP FMA Instrs.": [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2],
    }

    @pytest.mark.parametrize("name", sorted(TABLE_I))
    def test_signature_matches_table1(self, name):
        sigs = _by_name(cpu_flops_signatures())
        assert sigs[name].coords.tolist() == [float(v) for v in self.TABLE_I[name]]

    def test_all_six_present(self):
        assert len(cpu_flops_signatures()) == 6

    def test_dp_flops_paper_composition(self):
        # Section III-B: 1*DSCAL + 2*D128 + 4*D256 + 8*D512 + 2*DSCAL_FMA +
        # 4*D128_FMA + 8*D256_FMA + 16*D512_FMA == the DP Ops signature.
        basis = cpu_flops_basis()
        sig = _by_name(cpu_flops_signatures())["DP Ops."]
        manual = (
            1 * basis.expectation("DSCAL")
            + 2 * basis.expectation("D128")
            + 4 * basis.expectation("D256")
            + 8 * basis.expectation("D512")
            + 2 * basis.expectation("DSCAL_FMA")
            + 4 * basis.expectation("D128_FMA")
            + 8 * basis.expectation("D256_FMA")
            + 16 * basis.expectation("D512_FMA")
        )
        assert np.allclose(sig.in_kernel_space(basis), manual)


class TestGPUFlopsSignatures:
    """Paper Table II, verbatim."""

    TABLE_II = {
        "HP Add Ops.": [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        "HP Sub Ops.": [0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        "HP Add and Sub Ops.": [1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        "All HP Ops.": [1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0, 0],
        "All SP Ops.": [0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0],
        "All DP Ops.": [0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2],
    }

    @pytest.mark.parametrize("name", sorted(TABLE_II))
    def test_signature_matches_table2(self, name):
        sigs = _by_name(gpu_flops_signatures())
        assert sigs[name].coords.tolist() == [float(v) for v in self.TABLE_II[name]]


class TestBranchSignatures:
    """Paper Table III, verbatim."""

    TABLE_III = {
        "Unconditional Branches.": [0, 0, 0, 1, 0],
        "Conditional Branches Taken.": [0, 0, 1, 0, 0],
        "Conditional Branches Not Taken.": [0, 1, -1, 0, 0],
        "Mispredicted Branches.": [0, 0, 0, 0, 1],
        "Correctly Predicted Branches.": [0, 1, 0, 0, -1],
        "Conditional Branches Retired.": [0, 1, 0, 0, 0],
        "Conditional Branches Executed.": [1, 0, 0, 0, 0],
    }

    @pytest.mark.parametrize("name", sorted(TABLE_III))
    def test_signature_matches_table3(self, name):
        sigs = _by_name(branch_signatures())
        assert sigs[name].coords.tolist() == [float(v) for v in self.TABLE_III[name]]


class TestDCacheSignatures:
    """Paper Table IV, verbatim."""

    TABLE_IV = {
        "L1 Misses.": [1, 0, 0, 0],
        "L1 Hits.": [0, 1, 0, 0],
        "L1 Reads.": [1, 1, 0, 0],
        "L2 Hits.": [0, 0, 1, 0],
        "L2 Misses.": [1, 0, -1, 0],
        "L3 Hits.": [0, 0, 0, 1],
    }

    @pytest.mark.parametrize("name", sorted(TABLE_IV))
    def test_signature_matches_table4(self, name):
        sigs = _by_name(dcache_signatures())
        assert sigs[name].coords.tolist() == [float(v) for v in self.TABLE_IV[name]]


class TestSignatureAPI:
    def test_signatures_for_unknown_domain(self):
        with pytest.raises(KeyError):
            signatures_for("nope")

    def test_in_kernel_space_rejects_wrong_basis(self):
        sig = branch_signatures()[0]
        with pytest.raises(ValueError):
            sig.in_kernel_space(cpu_flops_basis())

    def test_coords_are_float_arrays(self):
        sig = Signature("x", "b", [1, 2, 3])
        assert sig.coords.dtype == np.float64
