"""Tests for metric validation against ground-truth activity."""

import numpy as np
import pytest

from repro.activity import fp_instr_key
from repro.core import AnalysisPipeline
from repro.core.basis import branch_basis, cpu_flops_basis
from repro.core.metrics import MetricDefinition
from repro.core.signatures import branch_signatures
from repro.core.validation import (
    dimension_activity_keys,
    ground_truth,
    validate_definition,
)
from repro.hardware import ComputeKernel, aurora_node
from repro.hardware.branch import BranchSpec


@pytest.fixture(scope="module")
def node():
    return aurora_node()


@pytest.fixture(scope="module")
def flops_result(node):
    return AnalysisPipeline.for_domain("cpu_flops", node).run()


def _random_fp_kernels(node, n=6, seed=0):
    rng = np.random.default_rng(seed)
    widths = ("scalar", "128", "256", "512")
    kernels = []
    for i in range(n):
        fp_ops = {}
        for _ in range(rng.integers(1, 5)):
            key = fp_instr_key(
                widths[rng.integers(0, 4)],
                ("sp", "dp")[rng.integers(0, 2)],
                ("nonfma", "fma")[rng.integers(0, 2)],
            )
            fp_ops[key] = fp_ops.get(key, 0.0) + float(rng.integers(1, 50))
        kernel = ComputeKernel(name=f"rand{i}", fp_ops=fp_ops)
        kernels.append((kernel.name, node.machine.run_compute(kernel)))
    return kernels


class TestDimensionKeys:
    def test_all_bases_covered(self):
        for basis in (cpu_flops_basis(), branch_basis()):
            keys = dimension_activity_keys(basis)
            assert set(keys) == set(basis.dimension_labels)

    def test_unknown_basis_rejected(self):
        from repro.core.basis import ExpectationBasis

        bogus = ExpectationBasis("custom", ("a",), ("r",), np.ones((1, 1)))
        with pytest.raises(KeyError):
            dimension_activity_keys(bogus)


class TestGroundTruth:
    def test_branch_taken_ground_truth(self, node):
        basis = branch_basis()
        sig = {s.name: s for s in branch_signatures()}["Conditional Branches Taken."]
        definition = MetricDefinition(
            metric=sig.name,
            event_names=("X",),
            coefficients=np.array([1.0]),
            error=0.0,
            signature=sig,
        )
        kernel = ComputeKernel(
            name="k", branches=(BranchSpec("taken"), BranchSpec("alternate"))
        )
        activity = node.machine.run_compute(kernel)
        assert ground_truth(definition, basis, activity) == 1.5

    def test_requires_signature(self):
        d = MetricDefinition("m", ("e",), np.array([1.0]), 0.0)
        with pytest.raises(ValueError, match="signature"):
            ground_truth(d, branch_basis(), None)


class TestValidateDefinition:
    def test_dp_ops_valid_on_unseen_workloads(self, node, flops_result):
        """The headline check: the derived DP Ops definition measures
        random FP mixes (never seen during calibration) exactly."""
        validation = validate_definition(
            flops_result.metric("DP Ops."),
            flops_result.representation.basis,
            _random_fp_kernels(node, n=8),
            node.events,
        )
        assert validation.passed, validation.summary()
        assert validation.max_abs_error < 1e-9

    def test_sp_and_instruction_metrics_also_valid(self, node, flops_result):
        for name in ("SP Ops.", "SP Instrs.", "DP Instrs."):
            validation = validate_definition(
                flops_result.metric(name),
                flops_result.representation.basis,
                _random_fp_kernels(node, n=5, seed=3),
                node.events,
            )
            assert validation.passed, validation.summary()

    def test_fma_best_effort_fails_validation(self, node, flops_result):
        """The uncomposable FMA metric should NOT validate — its 0.8-
        coefficient best effort over-counts non-FMA work."""
        kernels = _random_fp_kernels(node, n=8, seed=5)
        validation = validate_definition(
            flops_result.metric("DP FMA Instrs."),
            flops_result.representation.basis,
            kernels,
            node.events,
            tolerance=1e-3,
        )
        assert not validation.passed

    def test_noise_propagation(self, node, flops_result):
        """With measurement noise injected, the composed value degrades
        gracefully (relative error at the noise scale, not blowups)."""
        counter = {"n": 0}

        def rng_for_event(event):
            counter["n"] += 1
            return np.random.default_rng(counter["n"])

        definition = flops_result.metric("DP Ops.")
        # Swap the events' noise for a uniform relative jitter by reading
        # through noisy generators on events that are normally exact: use
        # the raw definition against activities, with a perturbed reading.
        workloads = _random_fp_kernels(node, n=4, seed=9)
        validation = validate_definition(
            definition,
            flops_result.representation.basis,
            workloads,
            node.events,
            tolerance=1e-6,
            rng_for_event=rng_for_event,
        )
        # FP events are deterministic, so even with generators supplied the
        # readings stay exact.
        assert validation.passed

    def test_summary_format(self, node, flops_result):
        validation = validate_definition(
            flops_result.metric("DP Ops."),
            flops_result.representation.basis,
            _random_fp_kernels(node, n=2),
            node.events,
        )
        text = validation.summary()
        assert "DP Ops." in text and "PASS" in text
