"""Tests for the rounding/scoring formulas and both QRCP algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qrcp import qrcp_specialized, qrcp_standard
from repro.core.rounding import round_to_tolerance, score_column, score_columns


class TestRounding:
    def test_rounds_to_grid(self):
        out = round_to_tolerance(np.array([1.002, 0.0004, -0.49]), 0.01)
        assert np.allclose(out, [1.0, 0.0, -0.49])

    def test_exact_grid_points_unchanged(self):
        out = round_to_tolerance(np.array([0.05, -0.1]), 0.05)
        assert np.allclose(out, [0.05, -0.1])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            round_to_tolerance(np.ones(2), 0.0)

    @settings(max_examples=50)
    @given(st.floats(-100, 100, allow_nan=False), st.floats(1e-4, 1.0))
    def test_property_within_half_alpha(self, u, alpha):
        r = round_to_tolerance(np.array([u]), alpha)[0]
        assert abs(r - u) <= alpha / 2 + 1e-12


class TestScoring:
    def test_paper_example(self):
        # alpha=0.01; (1.002, 0.001, 0.5, 1.5) -> 1 + 0 + 1/0.5 + 1.5 = 4.5
        col = np.array([1.002, 0.001, 0.5, 1.5])
        assert score_column(col, 0.01) == pytest.approx(4.5)

    def test_pure_basis_vector_scores_one(self):
        assert score_column(np.array([0.0, 1.0, 0.0]), 1e-3) == 1.0

    def test_large_values_penalized(self):
        small = score_column(np.array([1.0, 1.0]), 1e-3)
        large = score_column(np.array([100.0, 1.0]), 1e-3)
        assert large > small

    def test_tiny_fractions_penalized(self):
        clean = score_column(np.array([1.0]), 1e-3)
        fraction = score_column(np.array([0.01]), 1e-3)
        assert fraction > clean

    def test_noise_below_alpha_rounds_away(self):
        noisy = np.array([1.0002, 0.0001, 0.0])
        assert score_column(noisy, 5e-4) == 1.0

    def test_negative_values_use_magnitude(self):
        assert score_column(np.array([-2.0]), 1e-3) == 2.0

    def test_score_columns_vectorizes(self):
        m = np.array([[1.0, 0.5], [0.0, 1.5]])
        expected = [score_column(m[:, 0], 0.01), score_column(m[:, 1], 0.01)]
        assert np.allclose(score_columns(m, 0.01), expected)


class TestQRCPStandard:
    def test_picks_largest_norm_first(self):
        x = np.column_stack([np.ones(4), 10 * np.ones(4) + np.arange(4)])
        result = qrcp_standard(x)
        assert result.permutation[0] == 1

    def test_detects_rank(self):
        base = np.array([1.0, 2.0, 3.0, 4.0])
        x = np.column_stack([base, 2 * base, np.array([1.0, 0.0, 0.0, 0.0])])
        result = qrcp_standard(x)
        assert result.rank == 2

    def test_full_rank_identity(self):
        result = qrcp_standard(np.eye(3))
        assert result.rank == 3
        assert sorted(result.selected.tolist()) == [0, 1, 2]

    def test_rejects_vector_input(self):
        with pytest.raises(ValueError):
            qrcp_standard(np.ones(3))

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_property_selected_columns_independent(self, seed):
        rng = np.random.default_rng(seed)
        m, n = 6, 8
        x = rng.normal(size=(m, n))
        # Duplicate some columns to force dependence.
        x[:, 5] = 2 * x[:, 1]
        x[:, 7] = x[:, 0] - x[:, 2]
        result = qrcp_standard(x)
        sel = x[:, result.selected]
        assert np.linalg.matrix_rank(sel) == result.rank

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_property_rank_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(5, 7))
        x[:, 6] = x[:, 0] + x[:, 1]
        assert qrcp_standard(x).rank == np.linalg.matrix_rank(x)


class TestQRCPSpecialized:
    def test_prefers_basis_aligned_over_large_norm(self):
        """The defining behaviour: standard QRCP pivots on the huge column;
        the specialized scheme pivots on the expectation-like one."""
        clean = np.array([0.0, 1.0, 0.0, 0.0])
        huge = np.array([900.0, 350.0, 120.0, 77.0])
        x = np.column_stack([huge, clean])
        assert qrcp_standard(x).permutation[0] == 0
        assert qrcp_specialized(x, alpha=1e-3).permutation[0] == 1

    def test_excludes_near_zero_columns(self):
        x = np.column_stack([np.array([1.0, 0.0]), np.array([1e-6, 1e-6])])
        result = qrcp_specialized(x, alpha=1e-3)
        assert result.rank == 1
        assert result.selected.tolist() == [0]

    def test_terminates_on_all_zero(self):
        result = qrcp_specialized(np.zeros((3, 2)), alpha=1e-3)
        assert result.rank == 0

    def test_excludes_dependent_duplicates(self):
        e = np.array([0.0, 1.0, 0.0])
        x = np.column_stack([e, e, np.array([1.0, 0.0, 0.0])])
        result = qrcp_specialized(x, alpha=1e-3)
        assert result.rank == 2
        assert 0 in result.selected and 2 in result.selected

    def test_tie_break_prefers_first_index(self):
        e1 = np.array([1.0, 0.0])
        e2 = np.array([0.0, 1.0])
        result = qrcp_specialized(np.column_stack([e1, e2]), alpha=1e-3)
        assert result.permutation[0] == 0

    def test_tie_break_prefers_smaller_norm(self):
        # Same score (both are two-ones columns), different norms.
        a = np.array([2.0, 0.0, 0.0])   # score 2, norm 2
        b = np.array([1.0, 1.0, 0.0])   # score 2, norm sqrt(2)
        result = qrcp_specialized(np.column_stack([a, b]), alpha=1e-3)
        assert result.permutation[0] == 1

    def test_noise_below_half_alpha_is_ignored_for_scoring(self):
        # R(u) snaps to the nearest multiple of alpha, so only noise below
        # alpha/2 vanishes; this is why the paper uses a larger alpha for
        # the noisier cache events.
        noisy_e = np.array([1.0002, 0.0001, 0.0002])
        junk = np.array([1.3, 0.4, 0.2])
        result = qrcp_specialized(np.column_stack([junk, noisy_e]), alpha=5e-4)
        assert result.permutation[0] == 1

    def test_noise_above_half_alpha_inflates_score(self):
        # The flip side of the rounding formula: residual noise just above
        # alpha/2 rounds to alpha and is scored 1/alpha — heavily penalized.
        assert score_column(np.array([1.0, 3e-4]), 5e-4) == pytest.approx(
            1.0 + 1.0 / 5e-4
        )

    def test_fma_style_selection(self):
        """Mini version of the paper's CPU-FLOPs selection: pure e_k+2e_fma
        events chosen; aggregate (sum) excluded as dependent."""
        cols = []
        for k in range(3):
            c = np.zeros(6)
            c[k] = 1.0
            c[3 + k] = 2.0
            cols.append(c)
        aggregate = np.sum(cols, axis=0)
        x = np.column_stack([aggregate] + cols)
        result = qrcp_specialized(x, alpha=5e-4)
        assert result.rank == 3
        assert sorted(result.selected.tolist()) == [1, 2, 3]

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            qrcp_specialized(np.eye(2), alpha=0.0)

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_property_selected_columns_independent(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(6, 9))
        x[:, 8] = 3 * x[:, 2]
        result = qrcp_specialized(x, alpha=1e-6)
        sel = x[:, result.selected]
        assert np.linalg.matrix_rank(sel, tol=1e-8) == result.rank

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_property_rank_never_exceeds_dimensions(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(4, 10))
        result = qrcp_specialized(x, alpha=1e-6)
        assert result.rank <= 4
