"""Resilience tests for the sweep engine: structured errors, retries,
timeouts, and checkpoint/resume."""

import pickle

import numpy as np
import pytest

from repro.core.sweep import (
    SweepCheckpoint,
    SweepEngine,
    SweepTask,
    expand_grid,
    result_digest,
)
from repro.faults import FaultConfig


def serial_engine(**kwargs):
    kwargs.setdefault("backoff", 0.0)
    return SweepEngine(executor="serial", **kwargs)


class TestStructuredErrors:
    def test_failure_preserves_type_and_traceback(self, monkeypatch):
        import repro.core.sweep as sweep_mod

        def boom(seed):
            raise KeyError("exotic failure")

        monkeypatch.setitem(sweep_mod.SWEEP_SYSTEMS, "aurora", boom)
        outcome = serial_engine(max_retries=0).run(
            [SweepTask("aurora", "branch")]
        )[0]
        assert not outcome.ok
        assert outcome.error_type == "KeyError"
        assert "exotic failure" in outcome.error
        assert "Traceback (most recent call last)" in outcome.traceback
        assert "boom" in outcome.traceback  # the failing frame is visible

    def test_injected_persistent_failure(self):
        task = SweepTask(
            "aurora",
            "branch",
            faults=FaultConfig(seed=3, run_failure_rate=1.0, transient=False),
        )
        outcome = serial_engine(max_retries=1).run([task])[0]
        assert not outcome.ok
        assert outcome.error_type == "TransientMeasurementError"
        assert outcome.attempts == 2  # initial + one retry


class TestRetries:
    def test_transient_crash_recovered_by_retry(self):
        task = SweepTask(
            "aurora", "branch", faults=FaultConfig(seed=3, crash_rate=1.0)
        )
        outcome = serial_engine(max_retries=1).run([task])[0]
        assert outcome.ok
        assert outcome.attempts == 2
        report = outcome.result.robustness
        crashes = [r for r in report.records if r.kind == "crash"]
        assert crashes and all(r.outcome == "recovered" for r in crashes)
        assert report.unaccounted() == []

    def test_no_retries_means_crash_is_fatal(self):
        task = SweepTask(
            "aurora", "branch", faults=FaultConfig(seed=3, crash_rate=1.0)
        )
        outcome = serial_engine(max_retries=0).run([task])[0]
        assert not outcome.ok
        assert outcome.error_type == "InjectedWorkerCrash"

    def test_retry_yields_same_artifacts_as_clean_run(self):
        clean = serial_engine().run([SweepTask("aurora", "branch")])[0]
        crashy = serial_engine(max_retries=1).run(
            [SweepTask("aurora", "branch", faults=FaultConfig(seed=3, crash_rate=1.0))]
        )[0]
        assert crashy.result.selected_events == clean.result.selected_events
        np.testing.assert_array_equal(
            crashy.result.measurement.data, clean.result.measurement.data
        )


class TestTimeout:
    def test_hung_task_times_out_and_retry_succeeds(self):
        # The injected hang (transient: attempt 0 only) exceeds the task
        # timeout; the engine abandons the attempt and the retry lands.
        task = SweepTask(
            "aurora",
            "branch",
            faults=FaultConfig(seed=3, hang_rate=1.0, hang_seconds=5.0),
        )
        engine = SweepEngine(
            executor="thread",
            max_workers=2,
            task_timeout=1.0,
            max_retries=1,
            backoff=0.0,
        )
        outcome = engine.run([task, SweepTask("frontier-cpu", "branch")])[0]
        assert outcome.ok
        assert outcome.attempts == 2
        hangs = [
            r for r in outcome.result.robustness.records if r.kind == "hang"
        ]
        assert hangs and all(r.outcome == "recovered" for r in hangs)

    def test_timeout_exhaustion_reports_structured_error(self):
        task = SweepTask(
            "aurora",
            "branch",
            faults=FaultConfig(
                seed=3, hang_rate=1.0, hang_seconds=5.0, transient=False
            ),
        )
        engine = SweepEngine(
            executor="thread",
            max_workers=2,
            task_timeout=0.5,
            max_retries=0,
        )
        outcome = engine.run([task, SweepTask("frontier-cpu", "branch")])[0]
        assert not outcome.ok
        assert outcome.error_type == "TimeoutError"

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            SweepEngine(task_timeout=0)


class TestCheckpointResume:
    def test_resume_skips_completed_tasks(self, tmp_path):
        tasks = expand_grid(["aurora"], ["branch", "cpu_flops"])
        engine = serial_engine()
        first = engine.run(tasks, checkpoint_dir=tmp_path)
        assert all(o.ok and not o.resumed for o in first)
        second = engine.run(tasks, checkpoint_dir=tmp_path)
        assert all(o.resumed for o in second)
        for a, b in zip(first, second):
            assert result_digest(a.result) == result_digest(b.result)

    def test_partial_checkpoint_resumes_the_rest(self, tmp_path):
        tasks = expand_grid(["aurora"], ["branch", "cpu_flops"])
        engine = serial_engine()
        engine.run([tasks[0]], checkpoint_dir=tmp_path)
        outcomes = engine.run(tasks, checkpoint_dir=tmp_path)
        assert [o.resumed for o in outcomes] == [True, False]
        assert all(o.ok for o in outcomes)

    def test_corrupt_checkpoint_rerun_not_crash(self, tmp_path):
        tasks = expand_grid(["aurora"], ["branch"])
        engine = serial_engine()
        engine.run(tasks, checkpoint_dir=tmp_path)
        for pkl in tmp_path.glob("*.pkl"):
            pkl.write_bytes(b"not a pickle")
        outcomes = engine.run(tasks, checkpoint_dir=tmp_path)
        assert outcomes[0].ok and not outcomes[0].resumed

    def test_failures_are_not_checkpointed(self, tmp_path):
        task = SweepTask(
            "aurora",
            "branch",
            faults=FaultConfig(seed=3, run_failure_rate=1.0, transient=False),
        )
        engine = serial_engine(max_retries=0)
        assert not engine.run([task], checkpoint_dir=tmp_path)[0].ok
        assert not list(tmp_path.glob("*.pkl"))

    def test_fingerprint_isolates_configurations(self, tmp_path):
        """A checkpoint written under one fault universe must not be
        replayed under another."""
        plain = SweepTask("aurora", "branch")
        faulted = SweepTask(
            "aurora", "branch", faults=FaultConfig(seed=9, dropout_rate=0.05)
        )
        assert plain.fingerprint() != faulted.fingerprint()
        engine = serial_engine()
        engine.run([plain], checkpoint_dir=tmp_path)
        outcome = engine.run([faulted], checkpoint_dir=tmp_path)[0]
        assert not outcome.resumed

    def test_checkpoint_roundtrip_preserves_outcome(self, tmp_path):
        engine = serial_engine()
        outcome = engine.run([SweepTask("aurora", "branch")])[0]
        checkpoint = SweepCheckpoint(tmp_path)
        checkpoint.store(outcome)
        loaded = checkpoint.load(outcome.task)
        assert loaded is not None
        assert result_digest(loaded.result) == result_digest(outcome.result)


class TestSharedCacheCorruption:
    def test_cross_task_corruption_is_never_silent(self, tmp_path):
        """With a shared cache dir, the task that corrupts an entry and
        the task whose read quarantines it are usually different; the
        merged audit (quarantine union + fsck) must settle every record."""
        from repro.faults import merge_reports
        from repro.io.cache import MeasurementCache

        cache_dir = str(tmp_path / "cache")
        tasks = expand_grid(["aurora"], ["branch", "cpu_flops"], cache_dir=cache_dir)
        serial_engine().run(tasks)  # prime: every entry exists on disk
        faulted = expand_grid(
            ["aurora"],
            ["branch", "cpu_flops"],
            cache_dir=cache_dir,
            faults=FaultConfig(seed=7, cache_corruption_rate=1.0),
        )
        outcomes = serial_engine().run(faulted)
        assert all(o.ok for o in outcomes)
        merged = merge_reports(o.result.robustness for o in outcomes)
        corruption = [r for r in merged.records if r.kind == "cache-corruption"]
        assert corruption  # rate 1.0 over a primed cache must fire
        if merged.unaccounted():  # entries corrupted after their last read
            fsck = MeasurementCache(root=cache_dir)
            merged.cache_quarantined.extend(fsck.verify_all())
            merged.mark_cache_recovered(merged.cache_quarantined)
        assert merged.unaccounted() == []

    def test_corrupted_shared_cache_yields_clean_artifacts(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        clean = serial_engine().run(expand_grid(["aurora"], ["branch"]))[0]
        tasks = expand_grid(
            ["aurora"],
            ["branch"],
            cache_dir=cache_dir,
            faults=FaultConfig(seed=7, cache_corruption_rate=1.0),
        )
        serial_engine().run(tasks)  # populate, corrupting along the way
        outcome = serial_engine().run(tasks)[0]  # read back through quarantine
        assert outcome.ok
        assert result_digest(outcome.result) == result_digest(clean.result)


class TestDigest:
    def test_digest_stable_across_executors(self):
        tasks = expand_grid(["aurora"], ["branch"])
        serial = serial_engine().run(tasks)[0]
        threaded = SweepEngine(executor="thread", max_workers=2).run(
            tasks + expand_grid(["frontier-cpu"], ["branch"])
        )[0]
        assert result_digest(serial.result) == result_digest(threaded.result)

    def test_digest_sensitive_to_seed(self):
        a = serial_engine().run([SweepTask("aurora", "branch", seed=1)])[0]
        b = serial_engine().run([SweepTask("aurora", "branch", seed=2)])[0]
        assert result_digest(a.result) != result_digest(b.result)

    def test_outcome_pickles(self):
        # Outcomes cross process boundaries and land in checkpoints.
        outcome = serial_engine().run([SweepTask("aurora", "branch")])[0]
        blob = pickle.dumps(outcome)
        assert pickle.loads(blob).task.label == "aurora:branch"
