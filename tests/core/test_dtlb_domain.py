"""Tests for the data-TLB extension domain."""

import numpy as np
import pytest

from repro.cat.dtlb import DTLBBenchmark, default_page_counts
from repro.core import AnalysisPipeline
from repro.core.basis import dtlb_basis
from repro.core.signatures import dtlb_signatures
from repro.hardware import SimulatedCPU, SimulatedGPU, aurora_node
from repro.hardware.tlb import TLBConfig


@pytest.fixture(scope="module")
def result():
    return AnalysisPipeline.for_domain("dtlb", aurora_node()).run()


class TestDTLBBenchmark:
    def test_row_structure(self):
        bench = DTLBBenchmark()
        labels = bench.row_labels()
        assert len(labels) == 12  # 6 page counts x 2 strides
        assert labels[0].startswith("stride1p/")
        assert labels[6].startswith("stride2p/")
        assert bench.row_regions() == ["TLB", "TLB", "STLB", "STLB", "WALK", "WALK"] * 2

    def test_page_counts_span_hierarchy(self):
        counts = default_page_counts(TLBConfig(entries=64, stlb_entries=2048))
        pages = [p for _, p in counts]
        assert pages == sorted(pages)
        assert pages[1] < 64 <= pages[2]
        assert pages[3] <= 2048 < pages[4]

    def test_validation(self):
        with pytest.raises(ValueError):
            DTLBBenchmark(page_counts=[("TLB", 0)])
        with pytest.raises(ValueError):
            DTLBBenchmark(strides_pages=(0,))
        with pytest.raises(TypeError):
            DTLBBenchmark().execute(SimulatedGPU())

    def test_activities_match_regions(self):
        bench = DTLBBenchmark(n_threads=1)
        activities = bench.execute(SimulatedCPU())
        regions = bench.row_regions()
        for acts, region in zip(activities, regions):
            act = acts[0]
            if region == "TLB":
                assert act.get("tlb.dtlb_load_hit") == 1.0
            elif region == "STLB":
                assert act.get("tlb.stlb_hit") == 1.0
                assert act.get("tlb.walks") == 0.0
            else:
                assert act.get("tlb.walks") == 1.0

    def test_sparse_stride_touches_one_page_per_pointer(self):
        # The fix behind the two-stride design: stride 2 pages must not
        # double-count pages.
        bench = DTLBBenchmark(n_threads=1, page_counts=[("TLB", 16)])
        acts = bench.execute(SimulatedCPU())
        one_page, two_page = acts[0][0], acts[1][0]
        assert one_page.get("tlb.dtlb_load_hit") == two_page.get("tlb.dtlb_load_hit")


class TestDTLBBasis:
    def test_geometry(self):
        basis = dtlb_basis()
        assert basis.matrix.shape == (12, 3)
        assert basis.dimension_labels == ("DTLBH", "STLBH", "WALK")

    def test_block_structure(self):
        basis = dtlb_basis()
        assert np.allclose(basis.matrix.sum(axis=1), 1.0)
        assert (np.count_nonzero(basis.matrix, axis=1) == 1).all()

    def test_signatures(self):
        sigs = {s.name: s for s in dtlb_signatures()}
        assert sigs["DTLB Misses."].coords.tolist() == [0.0, 1.0, 1.0]
        assert sigs["Translation Reads."].coords.tolist() == [1.0, 1.0, 1.0]


#: Events that read exactly one count per access on every row of the
#: page-stride sweep, and thus carry the (1,1,1) "translation reads"
#: direction interchangeably.  MEM_LOAD_RETIRED:L1_MISS qualifies for a
#: structural reason worth knowing: a 4 KiB stride aliases the L1's sets
#: (64 sets x 64 B = one page), so *every* access of this benchmark misses
#: L1 regardless of working-set size — on real hardware too.
LOADS_CARRIERS = {
    "MEM_INST_RETIRED:ALL_LOADS",
    "MEM_INST_RETIRED:ANY",
    "MEM_LOAD_RETIRED:L1_MISS",
    "L2_RQSTS:ALL_DEMAND_DATA_RD",
    "L2_RQSTS:ALL_DEMAND_REFERENCES",
}


class TestDTLBPipeline:
    def test_selects_translation_events(self, result):
        selected = set(result.selected_events)
        assert {
            "DTLB_LOAD_MISSES:WALK_COMPLETED",
            "DTLB_LOAD_MISSES:STLB_HIT",
        } <= selected
        carriers = selected & LOADS_CARRIERS
        assert len(carriers) == 1
        assert len(selected) == 3

    def test_cache_boundary_events_deconfounded(self, result):
        """The two-stride design must keep cache *boundary* events (whose
        transitions could mimic the walk boundary) out of the selection;
        the L1 set-aliasing carrier is the accepted exception."""
        assert "MEM_LOAD_RETIRED:L3_MISS" not in result.selected_events
        assert "MEM_LOAD_RETIRED:L3_HIT" not in result.selected_events
        assert "L2_RQSTS:DEMAND_DATA_RD_HIT" not in result.selected_events

    def test_all_metrics_compose(self, result):
        for name, metric in result.metrics.items():
            assert metric.error < 1e-10, name

    def test_dtlb_hits_derived_by_subtraction(self, result):
        terms = dict(result.rounded_metrics["DTLB Hits."].terms())
        assert terms.pop("DTLB_LOAD_MISSES:STLB_HIT") == -1.0
        assert terms.pop("DTLB_LOAD_MISSES:WALK_COMPLETED") == -1.0
        (carrier, coeff), = terms.items()
        assert carrier in LOADS_CARRIERS and coeff == 1.0

    def test_page_walks_direct(self, result):
        rounded = result.rounded_metrics["Page Walks."]
        assert rounded.terms() == {"DTLB_LOAD_MISSES:WALK_COMPLETED": 1.0}

    def test_miss_causes_a_walk_is_redundant_not_selected(self, result):
        # Its representation (0,1,1) is dependent on STLB_HIT + WALK.
        rep_names = result.representation.event_names
        assert "DTLB_LOAD_MISSES:MISS_CAUSES_A_WALK" in rep_names
        assert "DTLB_LOAD_MISSES:MISS_CAUSES_A_WALK" not in result.selected_events
