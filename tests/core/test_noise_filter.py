"""Tests for the max-RNMSE noise analysis (paper Equation 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cat.measurement import MeasurementSet
from repro.core.noise_filter import analyze_noise, max_rnmse


def _ms(data, events=None):
    data = np.asarray(data, dtype=float)
    reps, threads, rows, n_events = data.shape
    return MeasurementSet(
        benchmark="t",
        row_labels=[f"r{i}" for i in range(rows)],
        event_names=events or [f"e{i}" for i in range(n_events)],
        data=data,
    )


class TestMaxRNMSE:
    def test_identical_vectors_zero(self):
        v = np.tile([1.0, 2.0, 3.0], (4, 1))
        assert max_rnmse(v) == 0.0

    def test_known_value(self):
        # Two vectors of length 2: ||d||=sqrt(2)*0.1; means 1.0 and 1.1.
        m = np.array([[1.0, 1.0], [1.1, 1.1]])
        expected = np.sqrt(2 * 0.01) / np.sqrt(2 * 1.0 * 1.1)
        assert np.isclose(max_rnmse(m), expected)

    def test_takes_maximum_over_pairs(self):
        m = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        pair_01 = 0.0
        pair_02 = np.sqrt(2.0) / np.sqrt(2 * 1.0 * 2.0)
        assert np.isclose(max_rnmse(m), max(pair_01, pair_02))

    def test_zero_mean_pair_scores_one(self):
        # Paper: if one vector's mean is zero, variability is defined as 1.
        m = np.array([[1.0, -1.0], [1.0, 1.0]])
        assert max_rnmse(m) == 1.0

    def test_requires_two_repetitions(self):
        with pytest.raises(ValueError):
            max_rnmse(np.ones((1, 3)))

    def test_paper_noise_example_vectors(self):
        # (1,1) vs (0.99,1.01): numerically independent but semantically
        # identical; RNMSE quantifies the tiny distance.
        m = np.array([[1.0, 1.0], [0.99, 1.01]])
        value = max_rnmse(m)
        assert 0 < value < 0.02

    @settings(max_examples=50)
    @given(st.integers(0, 10_000))
    def test_property_symmetric_in_repetition_order(self, seed):
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.1, 10.0, size=(4, 6))
        shuffled = m[rng.permutation(4)]
        assert np.isclose(max_rnmse(m), max_rnmse(shuffled))

    @settings(max_examples=50)
    @given(st.integers(0, 10_000), st.floats(0.1, 100.0))
    def test_property_scale_invariant(self, seed, scale):
        # RNMSE is relative: scaling all measurements leaves it unchanged.
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.5, 5.0, size=(3, 5))
        assert np.isclose(max_rnmse(m), max_rnmse(scale * m), rtol=1e-9)

    @settings(max_examples=50)
    @given(st.integers(0, 10_000))
    def test_property_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        m = rng.uniform(0.1, 10.0, size=(3, 4))
        assert max_rnmse(m) >= 0.0


class TestAnalyzeNoise:
    def test_splits_by_tau(self):
        quiet = np.tile([[1.0, 2.0]], (3, 1, 1, 1)).transpose(0, 3, 2, 1)
        # Build: 3 reps, 1 thread, 2 rows, 2 events: e0 exact, e1 noisy.
        data = np.zeros((3, 1, 2, 2))
        data[:, 0, :, 0] = [1.0, 2.0]
        data[:, 0, :, 1] = [[1.0, 2.0], [1.5, 2.5], [1.0, 2.0]]
        report = analyze_noise(_ms(data), tau=1e-6)
        assert report.kept == ["e0"]
        assert report.noisy == ["e1"]

    def test_all_zero_events_discarded(self):
        data = np.zeros((2, 1, 3, 1))
        report = analyze_noise(_ms(data), tau=1e-6)
        assert report.discarded_zero == ["e0"]
        assert report.kept == []
        assert "e0" not in report.variabilities

    def test_thread_median_suppresses_outlier_thread(self):
        # 3 threads; one thread is wildly off in every repetition, but the
        # median keeps the event quiet.
        data = np.zeros((2, 3, 2, 1))
        data[:, :, :, 0] = 1.0
        data[:, 2, :, 0] = 50.0  # rogue thread
        report = analyze_noise(_ms(data), tau=1e-6)
        assert report.kept == ["e0"]

    def test_sorted_variabilities(self):
        data = np.zeros((2, 1, 2, 3))
        data[:, 0, :, 0] = 1.0
        data[0, 0, :, 1] = 1.0
        data[1, 0, :, 1] = 1.3
        data[0, 0, :, 2] = 1.0
        data[1, 0, :, 2] = 1.1
        report = analyze_noise(_ms(data), tau=1e-6)
        ordered = report.sorted_variabilities()
        assert [name for name, _ in ordered] == ["e0", "e2", "e1"]
        values = [v for _, v in ordered]
        assert values == sorted(values)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            analyze_noise(_ms(np.ones((2, 1, 1, 1))), tau=0.0)

    def test_n_measured_counts_everything(self):
        data = np.zeros((2, 1, 2, 2))
        data[:, 0, :, 0] = 1.0
        report = analyze_noise(_ms(data), tau=1e-6)
        assert report.n_measured == 2
