"""Tests for the cross-architecture portability matrix."""

import pytest

from repro.core import AnalysisPipeline
from repro.core.crossarch import portability_matrix
from repro.hardware import aurora_node
from repro.hardware.systems import frontier_cpu_node


@pytest.fixture(scope="module")
def matrix():
    intel = AnalysisPipeline.for_domain("cpu_flops", aurora_node()).run()
    amd = AnalysisPipeline.for_domain("cpu_flops", frontier_cpu_node()).run()
    return portability_matrix([("spr", intel), ("zen3", amd)])


@pytest.fixture(scope="module")
def branch_matrix():
    intel = AnalysisPipeline.for_domain("branch", aurora_node()).run()
    amd = AnalysisPipeline.for_domain("branch", frontier_cpu_node()).run()
    return portability_matrix([("spr", intel), ("zen3", amd)])


class TestFlopsPortability:
    def test_shape(self, matrix):
        assert matrix.architectures == ["spr", "zen3"]
        assert len(matrix.metrics) == 6

    def test_spr_composes_precision_metrics_zen_does_not(self, matrix):
        for name in ("SP Ops.", "DP Ops.", "SP Instrs.", "DP Instrs."):
            assert matrix.cell(name, "spr").composable, name
            assert not matrix.cell(name, "zen3").composable, name

    def test_fma_uncomposable_everywhere(self, matrix):
        assert set(matrix.uncomposable_everywhere()) == {
            "SP FMA Instrs.",
            "DP FMA Instrs.",
        }

    def test_no_universal_flops_metric_between_spr_and_zen(self, matrix):
        # The portability pain the paper motivates, quantified.
        assert matrix.universal_metrics() == []

    def test_architecture_specific_listing(self, matrix):
        specific = matrix.architecture_specific()
        assert "DP Ops." in specific["spr"]
        assert specific["zen3"] == []

    def test_vocabulary_completely_disjoint(self, matrix):
        assert matrix.vocabulary_overlap() == 0.0

    def test_markdown_rendering(self, matrix):
        text = matrix.to_markdown()
        assert "DP Ops." in text
        assert "spr (error)" in text
        assert "NO" in text and "yes" in text


class TestBranchPortability:
    def test_six_universal_branch_metrics(self, branch_matrix):
        universal = set(branch_matrix.universal_metrics())
        assert len(universal) == 6
        assert "Conditional Branches Executed." not in universal

    def test_executed_uncomposable_everywhere(self, branch_matrix):
        assert branch_matrix.uncomposable_everywhere() == [
            "Conditional Branches Executed."
        ]

    def test_same_concept_different_events(self, branch_matrix):
        spr = branch_matrix.cell("Conditional Branches Taken.", "spr")
        zen = branch_matrix.cell("Conditional Branches Taken.", "zen3")
        assert spr.composable and zen.composable
        assert set(spr.events).isdisjoint(zen.events)


class TestValidation:
    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            portability_matrix([])

    def test_duplicate_labels_rejected(self):
        result = AnalysisPipeline.for_domain("branch", aurora_node()).run()
        with pytest.raises(ValueError):
            portability_matrix([("a", result), ("a", result)])

    def test_missing_metric_recorded_as_uncomposable(self):
        flops = AnalysisPipeline.for_domain("cpu_flops", aurora_node()).run()
        branch = AnalysisPipeline.for_domain("branch", aurora_node()).run()
        matrix = portability_matrix([("flops", flops), ("branch", branch)])
        cell = matrix.cell("DP Ops.", "branch")
        assert not cell.composable and cell.error == 1.0

    def test_unknown_cell_lookup(self, matrix):
        with pytest.raises(KeyError):
            matrix.cell("DP Ops.", "power10")
