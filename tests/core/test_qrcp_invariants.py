"""Deeper invariants of the specialized QRCP, checked against oracles.

The pivot order itself depends on the Householder representation, but two
families of properties are basis-invariant and fully characterize a
correct implementation:

* every *selected* column contributed at least ``beta`` of new direction
  when it was chosen (the diagonal of R records exactly that residual);
* every *unselected* column lies within ``beta`` of the span of the
  selected ones (otherwise the algorithm terminated too early);
* the very first pivot must equal a brute-force argmin of the scoring
  formula over beta-eligible columns (at step 0 the working matrix is the
  input, so the oracle is exact).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qrcp import qrcp_specialized
from repro.core.rounding import score_columns


def _random_event_matrix(rng, m, n):
    """Matrices shaped like real representation matrices: basis-aligned
    columns, scaled copies, combinations, noise, and near-zeros."""
    cols = []
    for _ in range(n):
        kind = rng.integers(0, 5)
        if kind == 0:  # clean basis direction
            c = np.zeros(m)
            c[rng.integers(0, m)] = 1.0
        elif kind == 1:  # scaled basis direction
            c = np.zeros(m)
            c[rng.integers(0, m)] = float(rng.integers(2, 9))
        elif kind == 2:  # combination
            c = np.zeros(m)
            c[rng.integers(0, m)] = 1.0
            c[rng.integers(0, m)] += 2.0
        elif kind == 3:  # noisy clean direction
            c = np.zeros(m)
            c[rng.integers(0, m)] = 1.0
            c += rng.normal(0, 1e-4, m)
        else:  # near-zero junk
            c = rng.normal(0, 1e-7, m)
        cols.append(c)
    return np.column_stack(cols)


def _first_pivot_oracle(x, alpha):
    m = x.shape[0]
    beta = alpha * np.sqrt(m)
    norms = np.sqrt(np.einsum("ij,ij->j", x, x))
    eligible = norms >= beta
    if not eligible.any():
        return -1
    scores = np.where(eligible, score_columns(x, alpha), np.inf)
    best = scores.min()
    tied = np.flatnonzero(scores == best)
    if tied.size > 1:
        tied = tied[norms[tied] == norms[tied].min()]
    return int(tied[0])


class TestFirstPivotOracle:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        m, n = int(rng.integers(2, 8)), int(rng.integers(2, 12))
        x = _random_event_matrix(rng, m, n)
        alpha = 10.0 ** rng.uniform(-5, -1)
        result = qrcp_specialized(x, alpha=alpha)
        oracle = _first_pivot_oracle(x, alpha)
        if oracle < 0:
            assert result.rank == 0
        else:
            assert result.permutation[0] == oracle


class TestSelectionInvariants:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_selected_columns_contributed_beta_of_direction(self, seed):
        rng = np.random.default_rng(seed)
        m, n = int(rng.integers(2, 8)), int(rng.integers(2, 12))
        x = _random_event_matrix(rng, m, n)
        alpha = 10.0 ** rng.uniform(-5, -1)
        beta = alpha * np.sqrt(m)
        result = qrcp_specialized(x, alpha=alpha)
        diag = np.abs(np.diag(result.r_factor[:, : result.rank]))
        assert (diag >= beta - 1e-12).all()

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_unselected_columns_within_beta_of_span(self, seed):
        rng = np.random.default_rng(seed)
        m, n = int(rng.integers(2, 8)), int(rng.integers(2, 12))
        x = _random_event_matrix(rng, m, n)
        alpha = 10.0 ** rng.uniform(-5, -1)
        beta = alpha * np.sqrt(m)
        result = qrcp_specialized(x, alpha=alpha)
        selected = x[:, result.selected]
        for j in result.permutation[result.rank :]:
            col = x[:, j]
            if result.rank:
                coeff, *_ = np.linalg.lstsq(selected, col, rcond=None)
                dist = np.linalg.norm(selected @ coeff - col)
            else:
                dist = np.linalg.norm(col)
            assert dist < beta + 1e-9, (j, dist, beta)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_permutation_is_a_permutation(self, seed):
        rng = np.random.default_rng(seed)
        x = _random_event_matrix(rng, 5, 9)
        result = qrcp_specialized(x, alpha=1e-3)
        assert sorted(result.permutation.tolist()) == list(range(9))

    def test_beta_cutoff_is_absolute_by_design(self):
        """Scaling is NOT neutral at the noise boundary: beta is an
        absolute cutoff, so a direction sitting just under the noise level
        can clear it after amplification.  This is intentional — columns
        at noise scale are indistinguishable from noise regardless of the
        subspace they'd span — and it is why measurements are normalized
        (per iteration / per access) before the analysis."""
        alpha = 1e-2
        beta = alpha * np.sqrt(2.0)
        base = np.array([[1.0, 0.5 * beta], [0.0, 0.0]])
        base[1, 1] = 0.5 * beta  # independent but below the cutoff
        small = qrcp_specialized(base, alpha=alpha)
        assert small.rank == 1
        amplified = base.copy()
        amplified[:, 1] *= 4.0  # now clears beta
        big = qrcp_specialized(amplified, alpha=alpha)
        assert big.rank == 2

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_rank_stable_for_columns_well_above_noise(self, seed):
        # Away from the beta boundary, scaling cannot change the rank.
        rng = np.random.default_rng(seed)
        m = 5
        k = int(rng.integers(1, 5))
        x = np.zeros((m, k))
        for j in range(k):
            x[j, j] = float(rng.integers(1, 5))
        a = qrcp_specialized(x, alpha=1e-4)
        scaled = x * float(rng.integers(2, 10))
        b = qrcp_specialized(scaled, alpha=1e-4)
        assert a.rank == b.rank == k
