"""Tests for alternative noise measures and automatic threshold selection
(the paper's Section-VII future work, implemented)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.noise_filter import max_rnmse
from repro.core.thresholds import (
    coefficient_of_variation,
    mad_variability,
    max_relative_range,
    select_alpha,
    select_tau,
    variability_measures,
)


def _noisy(seed, reps=5, rows=8, sigma=1e-3):
    rng = np.random.default_rng(seed)
    base = rng.uniform(1.0, 10.0, size=rows)
    return base[None, :] * (1.0 + rng.normal(0.0, sigma, size=(reps, rows)))


class TestAlternativeMeasures:
    @pytest.mark.parametrize("measure_name", sorted(variability_measures()))
    def test_zero_for_identical_vectors(self, measure_name):
        measure = variability_measures()[measure_name]
        vectors = np.tile([1.0, 2.0, 3.0], (4, 1))
        assert measure(vectors) == 0.0

    @pytest.mark.parametrize("measure_name", sorted(variability_measures()))
    def test_positive_for_noisy_vectors(self, measure_name):
        measure = variability_measures()[measure_name]
        assert measure(_noisy(0)) > 0.0

    @pytest.mark.parametrize(
        "measure", [max_relative_range, coefficient_of_variation, mad_variability]
    )
    def test_validation(self, measure):
        with pytest.raises(ValueError):
            measure(np.ones((1, 3)))

    def test_max_relative_range_known_value(self):
        vectors = np.array([[1.0, 10.0], [1.2, 10.0]])
        # Row 0: spread 0.2 over mean 1.1; row 1: 0.
        assert max_relative_range(vectors) == pytest.approx(0.2 / 1.1)

    def test_zero_mean_rows_score_one(self):
        vectors = np.array([[1.0, 0.0], [-1.0, 0.0]])
        assert max_relative_range(vectors) == 1.0
        assert coefficient_of_variation(vectors) > 0.5

    def test_mad_robust_to_single_corrupt_repetition(self):
        """The designed advantage: one spiked repetition saturates
        max-RNMSE but barely moves the MAD measure."""
        clean = _noisy(1, reps=7, sigma=1e-4)
        corrupted = clean.copy()
        corrupted[3] *= 5.0  # one run hit by an SMI
        rnmse_jump = max_rnmse(corrupted) / max_rnmse(clean)
        mad_jump = mad_variability(corrupted) / max(mad_variability(clean), 1e-12)
        assert rnmse_jump > 100
        assert mad_jump < 10

    @settings(max_examples=40)
    @given(st.integers(0, 10_000), st.floats(1.1, 100.0))
    def test_property_measures_scale_invariant(self, seed, scale):
        vectors = _noisy(seed)
        for measure in (max_relative_range, coefficient_of_variation, mad_variability):
            assert np.isclose(measure(vectors), measure(scale * vectors), rtol=1e-9)

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_property_more_noise_scores_higher(self, seed):
        quiet = _noisy(seed, sigma=1e-5)
        loud = _noisy(seed, sigma=1e-2)
        for measure in (max_relative_range, coefficient_of_variation):
            assert measure(loud) > measure(quiet)


class TestSelectTau:
    def test_finds_obvious_gap(self):
        values = [0.0, 0.0, 0.0, 1e-3, 1e-2, 1e-1]
        sel = select_tau(values)
        assert sel.method == "gap"
        assert 1e-15 < sel.tau < 1e-3
        assert sel.unambiguous

    def test_recovers_paper_style_window_for_branch_data(self):
        # Zero cluster + tail above 1e-4: chosen tau must sit in between.
        values = [0.0] * 20 + list(np.logspace(-4, 1, 30))
        sel = select_tau(values)
        assert sel.gap_low == 1e-15  # the clamped zero cluster
        assert sel.gap_high == pytest.approx(1e-4)
        assert 1e-15 < sel.tau < 1e-4

    def test_quantile_fallback_for_smooth_distributions(self):
        values = np.logspace(-3, 0, 50)  # no gap anywhere
        sel = select_tau(values, min_gap_decades=1.0)
        assert sel.method == "quantile"
        assert not sel.unambiguous
        assert 1e-3 <= sel.tau <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            select_tau([1.0])
        with pytest.raises(ValueError):
            select_tau([1.0, -0.5])

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_property_tau_splits_population(self, seed):
        rng = np.random.default_rng(seed)
        values = np.concatenate(
            [np.zeros(rng.integers(3, 10)), 10 ** rng.uniform(-5, 1, size=20)]
        )
        sel = select_tau(values)
        kept = np.count_nonzero(values <= sel.tau)
        assert 0 < kept < values.size


class TestSelectAlpha:
    def _x_clean(self):
        # Three exact basis-aligned columns plus a dependent aggregate.
        cols = [np.eye(4)[:, i] for i in range(3)]
        cols.append(cols[0] + cols[1])
        return np.column_stack(cols)

    def test_clean_matrix_gives_wide_plateau(self):
        sel = select_alpha(self._x_clean())
        assert sel.stable
        assert sel.selection == (0, 1, 2)
        assert sel.plateau_decades > 3.0

    def test_selected_alpha_reproduces_selection(self):
        from repro.core.qrcp import qrcp_specialized

        x = self._x_clean()
        sel = select_alpha(x)
        result = qrcp_specialized(x, alpha=sel.alpha)
        assert tuple(sorted(result.selected.tolist())) == sel.selection

    def test_noisy_matrix_plateau_excludes_tiny_alpha(self):
        rng = np.random.default_rng(3)
        x = self._x_clean() + rng.normal(0, 5e-3, size=(4, 4))
        sel = select_alpha(x, alphas=np.logspace(-5, -0.7, 18))
        # The chosen alpha must exceed the noise scale.
        assert sel.alpha > 5e-3

    def test_validation(self):
        with pytest.raises(ValueError):
            select_alpha(np.eye(2), alphas=[1e-3])
        with pytest.raises(ValueError):
            select_alpha(np.eye(2), alphas=[0.0, 1e-3])

    def test_sweep_recorded(self):
        sel = select_alpha(self._x_clean(), alphas=np.logspace(-4, -1, 5))
        assert len(sel.sweep) == 5
        assert all(isinstance(s, tuple) for _, s in sel.sweep)
