"""End-to-end pipeline tests: the paper's Section V selections and
Tables V-VIII, reproduced from simulated measurements.

These are the headline integration tests; the full measure -> de-noise ->
represent -> QRCP -> least-squares chain runs once per session via the
shared fixtures in the root ``conftest.py``.
"""

import numpy as np
import pytest

from repro.core import AnalysisPipeline, PipelineConfig
from repro.hardware import aurora_node


class TestBranchPipeline:
    """Paper Sections V-C and Table VII."""

    def test_selects_exactly_the_paper_events(self, branch_result):
        assert set(branch_result.selected_events) == {
            "BR_MISP_RETIRED",
            "BR_INST_RETIRED:COND",
            "BR_INST_RETIRED:COND_TAKEN",
            "BR_INST_RETIRED:ALL_BRANCHES",
        }

    def test_six_metrics_compose_exactly(self, branch_result):
        for name in (
            "Unconditional Branches.",
            "Conditional Branches Taken.",
            "Conditional Branches Not Taken.",
            "Mispredicted Branches.",
            "Correctly Predicted Branches.",
            "Conditional Branches Retired.",
        ):
            assert branch_result.metric(name).error < 1e-10, name

    def test_unconditional_is_all_minus_cond(self, branch_result):
        terms = round_terms(branch_result.metric("Unconditional Branches."))
        assert terms == {
            "BR_INST_RETIRED:ALL_BRANCHES": 1.0,
            "BR_INST_RETIRED:COND": -1.0,
        }

    def test_not_taken_is_cond_minus_taken(self, branch_result):
        terms = round_terms(branch_result.metric("Conditional Branches Not Taken."))
        assert terms == {
            "BR_INST_RETIRED:COND": 1.0,
            "BR_INST_RETIRED:COND_TAKEN": -1.0,
        }

    def test_correctly_predicted_is_cond_minus_misp(self, branch_result):
        terms = round_terms(branch_result.metric("Correctly Predicted Branches."))
        assert terms == {"BR_INST_RETIRED:COND": 1.0, "BR_MISP_RETIRED": -1.0}

    def test_executed_branches_uncomposable(self, branch_result):
        metric = branch_result.metric("Conditional Branches Executed.")
        assert np.isclose(metric.error, 1.0)
        assert np.allclose(metric.coefficients, 0.0, atol=1e-10)

    def test_branch_events_are_in_zero_noise_cluster(self, branch_result):
        v = branch_result.noise.variabilities
        for name in branch_result.selected_events:
            assert v[name] == 0.0, name

    def test_timing_events_filtered_as_noisy(self, branch_result):
        assert "CPU_CLK_UNHALTED:THREAD" in branch_result.noise.noisy

    def test_overhead_contaminated_events_rejected_at_representation(
        self, branch_result
    ):
        assert "INST_RETIRED:ANY" in branch_result.representation.rejected


class TestCPUFlopsPipeline:
    """Paper Sections V-A and Table V."""

    PAPER_EVENTS = {
        f"FP_ARITH_INST_RETIRED:{w}_PACKED_{p}"
        for w in ("128B", "256B", "512B")
        for p in ("SINGLE", "DOUBLE")
    } | {"FP_ARITH_INST_RETIRED:SCALAR_SINGLE", "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE"}

    def test_selects_exactly_the_eight_fp_events(self, cpu_flops_result):
        assert set(cpu_flops_result.selected_events) == self.PAPER_EVENTS

    def test_dp_ops_combination(self, cpu_flops_result):
        terms = round_terms(cpu_flops_result.metric("DP Ops."))
        assert terms == {
            "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE": 1.0,
            "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE": 2.0,
            "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE": 4.0,
            "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE": 8.0,
        }
        assert cpu_flops_result.metric("DP Ops.").error < 1e-10

    def test_sp_ops_combination(self, cpu_flops_result):
        terms = round_terms(cpu_flops_result.metric("SP Ops."))
        assert terms == {
            "FP_ARITH_INST_RETIRED:SCALAR_SINGLE": 1.0,
            "FP_ARITH_INST_RETIRED:128B_PACKED_SINGLE": 4.0,
            "FP_ARITH_INST_RETIRED:256B_PACKED_SINGLE": 8.0,
            "FP_ARITH_INST_RETIRED:512B_PACKED_SINGLE": 16.0,
        }

    def test_instruction_metrics_have_unit_coefficients(self, cpu_flops_result):
        for name, prec in (("SP Instrs.", "SINGLE"), ("DP Instrs.", "DOUBLE")):
            terms = round_terms(cpu_flops_result.metric(name))
            assert set(terms.values()) == {1.0}
            assert all(prec in e for e in terms), name

    def test_fma_metrics_fail_with_paper_fingerprint(self, cpu_flops_result):
        """The absence-detection result: coefficients 0.8, error 2.36e-1."""
        for name in ("SP FMA Instrs.", "DP FMA Instrs."):
            metric = cpu_flops_result.metric(name)
            assert metric.error == pytest.approx(0.236, abs=2e-3), name
            nonzero = [c for c in metric.coefficients if abs(c) > 1e-6]
            assert all(c == pytest.approx(0.8, abs=1e-6) for c in nonzero)
            assert not metric.composable

    def test_aggregate_fp_events_survive_until_qrcp_then_drop(self, cpu_flops_result):
        rep_names = cpu_flops_result.representation.event_names
        assert "FP_ARITH_INST_RETIRED:VECTOR" in rep_names
        assert "FP_ARITH_INST_RETIRED:VECTOR" not in cpu_flops_result.selected_events


class TestGPUFlopsPipeline:
    """Paper Sections V-B and Table VI."""

    PAPER_EVENTS = {
        f"rocm:::SQ_INSTS_VALU_{op}_{p}:device=0"
        for op in ("ADD", "MUL", "TRANS", "FMA")
        for p in ("F16", "F32", "F64")
    }

    def test_selects_exactly_the_twelve_valu_events(self, gpu_flops_result):
        assert set(gpu_flops_result.selected_events) == self.PAPER_EVENTS

    def test_hp_add_alone_fails_with_half_coefficient(self, gpu_flops_result):
        for name in ("HP Add Ops.", "HP Sub Ops."):
            metric = gpu_flops_result.metric(name)
            assert metric.error == pytest.approx(0.414, abs=2e-3), name
            terms = {e: c for e, c in metric.terms().items() if abs(c) > 1e-6}
            assert terms == {
                "rocm:::SQ_INSTS_VALU_ADD_F16:device=0": pytest.approx(0.5)
            }

    def test_hp_add_and_sub_composes_exactly(self, gpu_flops_result):
        metric = gpu_flops_result.metric("HP Add and Sub Ops.")
        assert metric.error < 1e-10
        terms = round_terms(metric)
        assert terms == {"rocm:::SQ_INSTS_VALU_ADD_F16:device=0": 1.0}

    @pytest.mark.parametrize(
        "name,suffix", [("All HP Ops.", "F16"), ("All SP Ops.", "F32"), ("All DP Ops.", "F64")]
    )
    def test_all_ops_per_precision(self, gpu_flops_result, name, suffix):
        metric = gpu_flops_result.metric(name)
        assert metric.error < 1e-10
        terms = round_terms(metric)
        assert terms == {
            f"rocm:::SQ_INSTS_VALU_FMA_{suffix}:device=0": 2.0,
            f"rocm:::SQ_INSTS_VALU_MUL_{suffix}:device=0": 1.0,
            f"rocm:::SQ_INSTS_VALU_TRANS_{suffix}:device=0": 1.0,
            f"rocm:::SQ_INSTS_VALU_ADD_{suffix}:device=0": 1.0,
        }

    def test_idle_device_events_discarded_as_zero(self, gpu_flops_result):
        discarded = set(gpu_flops_result.noise.discarded_zero)
        assert "rocm:::SQ_INSTS_VALU_ADD_F16:device=3" in discarded


class TestDCachePipeline:
    """Paper Sections V-D and Table VIII."""

    PAPER_EVENTS = {
        "MEM_LOAD_RETIRED:L3_HIT",
        "L2_RQSTS:DEMAND_DATA_RD_HIT",
        "MEM_LOAD_RETIRED:L1_MISS",
        "MEM_LOAD_RETIRED:L1_HIT",
    }

    def test_selects_exactly_the_paper_events(self, dcache_result):
        assert set(dcache_result.selected_events) == self.PAPER_EVENTS

    def test_all_metrics_compose_with_small_error(self, dcache_result):
        for metric in dcache_result.metrics.values():
            assert metric.error < 1e-10, metric.metric

    def test_coefficients_near_integers_as_in_table8(self, dcache_result):
        # "within 2% of one, or smaller than 5.87e-3" (paper Section VI-D).
        for metric in dcache_result.metrics.values():
            for c in metric.coefficients:
                nearest = round(c)
                assert (
                    abs(c - nearest) <= 0.02 * max(abs(nearest), 1.0)
                    or abs(c) < 5.87e-3
                ), (metric.metric, c)

    def test_rounded_combinations_are_exact_integers(self, dcache_result):
        expected = {
            "L1 Misses.": {"MEM_LOAD_RETIRED:L1_MISS": 1.0},
            "L1 Hits.": {"MEM_LOAD_RETIRED:L1_HIT": 1.0},
            "L1 Reads.": {
                "MEM_LOAD_RETIRED:L1_MISS": 1.0,
                "MEM_LOAD_RETIRED:L1_HIT": 1.0,
            },
            "L2 Hits.": {"L2_RQSTS:DEMAND_DATA_RD_HIT": 1.0},
            "L2 Misses.": {
                "MEM_LOAD_RETIRED:L1_MISS": 1.0,
                "L2_RQSTS:DEMAND_DATA_RD_HIT": -1.0,
            },
            "L3 Hits.": {"MEM_LOAD_RETIRED:L3_HIT": 1.0},
        }
        for name, terms in expected.items():
            rounded = dcache_result.rounded_metrics[name]
            assert rounded.terms() == terms, name

    def test_flaky_mem_load_l2_events_were_filtered_by_noise(self, dcache_result):
        assert "MEM_LOAD_RETIRED:L2_HIT" in dcache_result.noise.noisy

    def test_no_zero_variability_cluster(self, dcache_result):
        # Fig 2d: the multithreaded benchmark leaves nothing bit-exact.
        values = np.array(list(dcache_result.noise.variabilities.values()))
        assert (values > 0).all()

    def test_presets_emitted_for_composable_metrics(self, dcache_result):
        assert "PAPI_L2_DCM" in dcache_result.presets
        preset = dcache_result.presets.get("PAPI_L2_DCM")
        assert set(preset.native_events) <= self.PAPER_EVENTS


class TestPipelineWiring:
    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            AnalysisPipeline.for_domain("nope", aurora_node())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(tau=0.0)
        with pytest.raises(ValueError):
            PipelineConfig(repetitions=1)

    def test_summary_renders(self, branch_result):
        text = branch_result.summary()
        assert "BR_MISP_RETIRED" in text
        assert "NOT COMPOSABLE" in text

    def test_unknown_metric_lookup(self, branch_result):
        with pytest.raises(KeyError):
            branch_result.metric("nope")


def round_terms(metric, tol=1e-6):
    """Terms with near-zero coefficients dropped and the rest rounded."""
    return {
        e: round(c)
        for e, c in zip(metric.event_names, metric.coefficients)
        if abs(c) > tol
    }
