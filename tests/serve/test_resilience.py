"""Unit tests for the resilient client: retry, breaker, deadline, hedging.

Everything socket-free: the transport seam injects scripted fake
clients, and clock/sleep are simulated so backoff and deadline behaviour
is exact and instant.
"""

import threading
import time

import pytest

from repro import obs
from repro.serve.resilience import (
    BreakerOpen,
    CircuitBreaker,
    DeadlineExceeded,
    ResilientCatalogClient,
    RetryPolicy,
    idempotency_key,
)
from repro.serve.service import ServiceError, TransportError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def time(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class ScriptedClient:
    """One fake CatalogClient: pops the next behaviour per call."""

    def __init__(self, script, clock=None):
        self.script = script
        self.clock = clock

    def _next(self):
        action = self.script.pop(0) if self.script else "ok"
        if isinstance(action, Exception):
            if self.clock is not None:
                self.clock.sleep(0.01)
            raise action
        return action

    def metric(self, *args, **kwargs):
        value = self._next()
        return value if isinstance(value, dict) else {"metric": "m", "ok": value}

    def analyze(self, *args, **kwargs):
        value = self._next()
        return value if isinstance(value, dict) else {"m": {"ok": value}}

    def health(self):
        return {"ok": self._next()}

    def ready(self):
        return self._next() == "ok"

    def catalog_list(self, arch=None):
        self._next()
        return []

    def catalog_entry(self, *args, **kwargs):
        return {"ok": self._next()}


def _client(scripts, clock=None, **kwargs):
    """Build a ResilientCatalogClient over scripted per-port transports."""
    clock = clock or FakeClock()
    endpoints = [("127.0.0.1", port) for port in sorted(scripts)]
    calls = []

    def transport(host, port, timeout):
        calls.append((port, timeout))
        return ScriptedClient(scripts[port], clock=clock)

    client = ResilientCatalogClient(
        endpoints,
        clock=clock.time,
        sleep=clock.sleep,
        transport=transport,
        **kwargs,
    )
    return client, calls, clock


def _transport_error():
    return TransportError("connection refused", ConnectionRefusedError())


class TestRetryPolicy:
    def test_delay_is_deterministic_per_key(self):
        policy = RetryPolicy()
        assert policy.delay("k", 2) == policy.delay("k", 2)
        assert policy.delay("k", 2) != policy.delay("other", 2)

    def test_delay_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.4)
        # jitter keeps each delay within [base/2, base)
        for attempt, base in ((1, 0.1), (2, 0.2), (3, 0.4), (9, 0.4)):
            delay = policy.delay("k", attempt)
            assert base / 2 <= delay < base

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestIdempotencyKey:
    def test_matches_coalescing_identity(self):
        base = idempotency_key("aurora", "branch", 7, None)
        assert base == idempotency_key("aurora", "branch", 7, None)
        assert base != idempotency_key("aurora", "branch", 8, None)
        assert base != idempotency_key("aurora", "cache", 7, None)
        assert base != idempotency_key("aurora", "branch", 7, "crash=1.0")


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_after=5.0, clock=clock.time
        )
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.open_for == pytest.approx(5.0)
        clock.sleep(5.1)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after=2.0, clock=clock.time
        )
        breaker.record_failure()
        clock.sleep(2.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_counters(self):
        with obs.tracing(seed=0) as trace:
            clock = FakeClock()
            breaker = CircuitBreaker(
                failure_threshold=1, reset_after=1.0, clock=clock.time
            )
            breaker.record_failure()
            clock.sleep(1.1)
            breaker.allow()
            breaker.record_success()
        assert trace.counters["breaker.opened"] == 1
        assert trace.counters["breaker.half_open"] == 1
        assert trace.counters["breaker.closed"] == 1


class TestResilientCall:
    def test_retries_transport_errors_until_success(self):
        client, calls, _ = _client(
            {9001: [_transport_error(), _transport_error(), {"metric": "m"}]},
            retry=RetryPolicy(max_attempts=4, backoff_base=0.01),
            breaker_factory=None,
        )
        payload = client.metric("aurora", "branch", "m")
        assert payload == {"metric": "m"}
        assert len(calls) == 3

    def test_non_retryable_errors_raise_immediately(self):
        client, calls, _ = _client(
            {9001: [ServiceError(404, {"error": "no such metric"})]},
            breaker_factory=None,
        )
        with pytest.raises(ServiceError) as err:
            client.metric("aurora", "branch", "m")
        assert err.value.status == 404
        assert len(calls) == 1

    def test_rotates_endpoints_across_attempts(self):
        client, calls, _ = _client(
            {9001: [_transport_error()], 9002: [{"metric": "m"}]},
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
            breaker_factory=None,
        )
        assert client.metric("aurora", "branch", "m") == {"metric": "m"}
        assert [port for port, _ in calls] == [9001, 9002]

    def test_exhausted_retries_raise_last_error(self):
        client, _, _ = _client(
            {9001: [_transport_error()] * 5},
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
            breaker_factory=None,
        )
        with pytest.raises(TransportError):
            client.metric("aurora", "branch", "m")

    def test_deadline_exceeded_is_typed_504(self):
        clock = FakeClock()
        client, _, _ = _client(
            {9001: [_transport_error()] * 100},
            clock=clock,
            retry=RetryPolicy(max_attempts=100, backoff_base=0.5, backoff_cap=0.5),
            deadline=1.0,
            breaker_factory=None,
        )
        with pytest.raises(DeadlineExceeded) as err:
            client.metric("aurora", "branch", "m")
        assert err.value.status == 504
        assert err.value.retryable

    def test_attempt_timeout_clamped_to_remaining_deadline(self):
        clock = FakeClock()
        client, calls, _ = _client(
            {9001: [{"metric": "m"}]},
            clock=clock,
            timeout=30.0,
            deadline=2.0,
            breaker_factory=None,
        )
        client.metric("aurora", "branch", "m")
        assert calls[0][1] <= 2.0

    def test_breaker_fast_fails_after_repeated_failures(self):
        client, calls, _ = _client(
            {9001: [_transport_error()] * 10},
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, reset_after=60.0
            ),
        )
        with pytest.raises(TransportError):
            client.metric("aurora", "branch", "m")
        transport_calls = len(calls)
        with pytest.raises(BreakerOpen) as err:
            client.metric("aurora", "branch", "m")
        assert len(calls) == transport_calls  # no socket touched
        assert err.value.retryable

    def test_application_errors_do_not_trip_breaker(self):
        client, _, _ = _client(
            {9001: [ServiceError(404, {"error": "nope"})] * 3},
            breaker_factory=lambda: CircuitBreaker(failure_threshold=1),
        )
        for _ in range(3):
            with pytest.raises(ServiceError):
                client.metric("aurora", "branch", "m")
        assert client.breaker(("127.0.0.1", 9001)).state == "closed"

    def test_unexpected_exception_does_not_brick_half_open_breaker(self):
        """A non-ServiceError raised during the half-open probe (a bug
        in the transport factory, say) must still settle the breaker —
        a leaked probe would leave allow() False forever."""
        clock = FakeClock()
        client, _, clock = _client(
            {9001: [_transport_error(), RuntimeError("factory bug"), "ok"]},
            clock=clock,
            retry=RetryPolicy(max_attempts=1),
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=1, reset_after=5.0, clock=clock.time
            ),
        )
        breaker = client.breaker(("127.0.0.1", 9001))
        with pytest.raises(ServiceError):
            client.metric("aurora", "branch", "m")  # trips the breaker
        assert breaker.state == "open"
        clock.sleep(5.1)
        with pytest.raises(RuntimeError):
            client.metric("aurora", "branch", "m")  # probe blows up
        # The failed probe re-opened the breaker instead of wedging it
        # half-open: after another reset window a new probe is admitted
        # and its success re-closes the breaker.
        assert breaker.state == "open"
        clock.sleep(5.1)
        assert client.metric("aurora", "branch", "m")["ok"] == "ok"
        assert breaker.state == "closed"

    def test_accept_stale_false_rejects_stale_payloads(self):
        stale = {"metric": "m", "stale": True, "stale_age_seconds": 5.0}
        client, _, _ = _client(
            {9001: [stale]}, accept_stale=False, breaker_factory=None
        )
        with pytest.raises(ServiceError) as err:
            client.metric("aurora", "branch", "m")
        assert err.value.status == 503
        assert err.value.payload["stale"] is True

    def test_accept_stale_true_passes_stale_through(self):
        stale = {"metric": "m", "stale": True}
        client, _, _ = _client({9001: [stale]}, breaker_factory=None)
        assert client.metric("aurora", "branch", "m") == stale


class TestHedging:
    def test_hedge_fires_after_delay_and_first_success_wins(self):
        release = threading.Event()

        class SlowPrimary:
            def metric(self, *a, **k):
                release.wait(timeout=5.0)
                return {"metric": "m", "from": "primary"}

        class FastReplica:
            def metric(self, *a, **k):
                return {"metric": "m", "from": "replica"}

        def transport(host, port, timeout):
            return SlowPrimary() if port == 9001 else FastReplica()

        client = ResilientCatalogClient(
            [("127.0.0.1", 9001), ("127.0.0.1", 9002)],
            transport=transport,
            hedge_delay=0.05,
            breaker_factory=None,
        )
        with obs.tracing(seed=0) as trace:
            payload = client.metric("aurora", "branch", "m")
        release.set()
        assert payload["from"] == "replica"
        assert trace.counters["client.hedged_reads"] == 1

    def test_fast_primary_skips_the_hedge(self):
        ports = []

        class Fast:
            def __init__(self, port):
                self.port = port

            def metric(self, *a, **k):
                ports.append(self.port)
                return {"metric": "m"}

        client = ResilientCatalogClient(
            [("127.0.0.1", 9001), ("127.0.0.1", 9002)],
            transport=lambda h, p, t: Fast(p),
            hedge_delay=0.5,
            breaker_factory=None,
        )
        client.metric("aurora", "branch", "m")
        assert ports == [9001]

    def test_winner_returns_without_waiting_for_the_loser(self):
        """The hedge's latency benefit: a hung primary must not block
        the caller once the replica has answered (the loser keeps
        running in its thread and is discarded)."""
        release = threading.Event()
        loser_finished = threading.Event()

        class HungPrimary:
            def metric(self, *a, **k):
                release.wait(timeout=30.0)
                loser_finished.set()
                return {"metric": "m", "from": "primary"}

        class FastReplica:
            def metric(self, *a, **k):
                return {"metric": "m", "from": "replica"}

        def transport(host, port, timeout):
            return HungPrimary() if port == 9001 else FastReplica()

        client = ResilientCatalogClient(
            [("127.0.0.1", 9001), ("127.0.0.1", 9002)],
            transport=transport,
            hedge_delay=0.05,
            breaker_factory=None,
        )
        start = time.monotonic()
        payload = client.metric("aurora", "branch", "m")
        elapsed = time.monotonic() - start
        release.set()
        assert payload["from"] == "replica"
        assert not loser_finished.is_set()  # returned while it still hung
        assert elapsed < 5.0

    def test_hedged_total_failure_raises_first_error(self):
        class Broken:
            def metric(self, *a, **k):
                raise TransportError("down", None)

        client = ResilientCatalogClient(
            [("127.0.0.1", 9001), ("127.0.0.1", 9002)],
            transport=lambda h, p, t: Broken(),
            retry=RetryPolicy(max_attempts=1),
            hedge_delay=0.01,
            breaker_factory=None,
        )
        with pytest.raises(TransportError):
            client.metric("aurora", "branch", "m")


class TestClientTransportTyping:
    """S1: raw socket failures surface as typed, retryable errors."""

    def test_connection_refused_is_transport_error(self):
        from repro.serve.client import CatalogClient

        # An unbound localhost port: connect must fail fast.
        client = CatalogClient("127.0.0.1", 1, timeout=2.0)
        with pytest.raises(TransportError) as err:
            client.health()
        assert err.value.status == 503
        assert err.value.retryable
        assert "transport failure" in err.value.payload["error"]

    def test_torn_response_is_transport_error(self):
        import socket

        from repro.serve.client import CatalogClient

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def serve_garbage():
            conn, _ = listener.accept()
            conn.recv(1024)
            conn.sendall(b"HTTP/1.0 200 OK\r\nContent-Length: 8\r\n\r\n{\"trunc")
            conn.close()

        thread = threading.Thread(target=serve_garbage, daemon=True)
        thread.start()
        client = CatalogClient("127.0.0.1", port, timeout=5.0)
        with pytest.raises(TransportError):
            client.health()
        thread.join(timeout=5.0)
        listener.close()

    def test_retryable_flag_contract(self):
        assert TransportError("x", None).retryable
        assert ServiceError(429, {}).retryable
        assert ServiceError(503, {}).retryable
        assert not ServiceError(404, {}).retryable
        assert ServiceError(500, {"retry": True}).retryable
