"""Tests for the supervised worker pool (real processes, real sockets).

These spin actual spawn-context worker processes, so they are the
slowest tests in the suite; each test covers several behaviours to keep
the process-spawn count down.
"""

import asyncio
import time

import pytest

from repro.core.pipeline import AnalysisPipeline
from repro.hardware import aurora_node
from repro.io.cache import event_set_digest
from repro.serve import (
    MetricCatalogStore,
    ResilientCatalogClient,
    RetryPolicy,
    ServiceSupervisor,
    SupervisorConfig,
    SupervisorServer,
)
from repro.serve.catalog import entries_from_result

METRIC = "Mispredicted Branches."


def _await_live(supervisor, want, budget=30.0):
    deadline = time.time() + budget
    while time.time() < deadline:
        if supervisor.status()["live"] >= want:
            return True
        time.sleep(0.2)
    return False


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(workers=0)
        with pytest.raises(ValueError):
            SupervisorConfig(restart_intensity=0)


class TestSupervisedServing:
    def test_pool_serves_survives_kill_and_degrades(self, tmp_path):
        """One pool exercise: serve -> SIGKILL one worker (request is
        re-dispatched, worker restarts within budget) -> kill every
        worker (a fully-fresh published key is still served fresh from
        the dispatcher's own catalog view; once freshness evidence
        fails, the answer degrades to an explicitly stale one)."""
        supervisor = ServiceSupervisor(
            str(tmp_path / "catalog"),
            cache_dir=str(tmp_path / "cache"),
            config=SupervisorConfig(
                workers=2,
                heartbeat_timeout=2.0,
                backoff_base=0.1,
                backoff_max=0.5,
                stale_max_age=3600.0,
            ),
        )
        front = SupervisorServer(supervisor)

        async def body():
            port = await front.start()
            client = ResilientCatalogClient(
                [("127.0.0.1", port)],
                retry=RetryPolicy(max_attempts=6, backoff_base=0.05),
                breaker_factory=None,
            )
            loop = asyncio.get_running_loop()

            def metric():
                return client.metric("aurora", "branch", METRIC)

            def status():
                return client._call(
                    lambda c: c._request("GET", "/supervisor/status"), "status"
                )

            # 1. Healthy pool serves and publishes to the shared catalog.
            first = await loop.run_in_executor(None, metric)
            assert first["metric"] == METRIC
            assert first["stale"] is False
            payload = await loop.run_in_executor(None, status)
            assert payload["live"] == 2
            assert {w["state"] for w in payload["workers"]} == {"live"}

            # 2. SIGKILL one worker: the request rides a re-dispatch to
            # the survivor, and the slot restarts within budget.
            supervisor.slots[0].process.kill()
            second = await loop.run_in_executor(None, metric)
            assert second["stale"] is False
            assert second["metric"] == METRIC
            recovered = await loop.run_in_executor(
                None, _await_live, supervisor, 2
            )
            assert recovered, "killed worker did not restart within budget"
            assert supervisor.status()["workers"][0]["restarts"] >= 1

            # 3. Total outage: the key the pool published still carries
            # full freshness evidence, so the dispatcher's front-replica
            # read answers it *fresh* — no worker needed at all.
            for slot in supervisor.slots:
                slot.process.kill()
            await asyncio.sleep(0.1)
            third = await loop.run_in_executor(None, metric)
            assert third["stale"] is False
            assert third["source"] == "catalog"
            assert third["coefficients_hex"] == first["coefficients_hex"]
            assert supervisor.status()["front_serves"] >= 1

            # 4. Outage plus drifted registry evidence: the front read
            # refuses (evidence mismatch), no worker is live to
            # recompute, so the answer degrades to an *explicitly*
            # stale catalog read rather than an error or a lie.
            supervisor._evidence_cache[("aurora", 2024, "branch")] = (
                "0" * 16,
                {"drifted-event": "0" * 16},
            )
            fourth = await loop.run_in_executor(None, metric)
            assert fourth["stale"] is True
            assert fourth["source"] == "catalog"
            assert fourth["stale_age_seconds"] >= 0.0
            assert fourth["degraded"] == "no live workers"
            # The definition itself is the one the pool published.
            assert fourth["coefficients_hex"] == first["coefficients_hex"]

            await front.stop()

        asyncio.run(body())

    def test_restart_intensity_cap_marks_slot_failed(self, tmp_path):
        supervisor = ServiceSupervisor(
            None,
            cache_dir=str(tmp_path / "cache"),
            config=SupervisorConfig(
                workers=1,
                heartbeat_timeout=2.0,
                backoff_base=0.05,
                backoff_max=0.1,
                restart_intensity=2,
                restart_window=60.0,
                worker_start_timeout=30.0,
            ),
        )
        supervisor._exit_after = 0.05  # test seam: workers self-destruct
        supervisor.start()
        try:
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if supervisor.slots[0].state == "failed":
                    break
                time.sleep(0.2)
            assert supervisor.slots[0].state == "failed"
            # 2 allowed restarts + the tripping one.
            assert len(supervisor.slots[0].restarts) == 3
        finally:
            supervisor.stop()

    def test_startup_fsck_quarantines_torn_publication(self, tmp_path):
        node = aurora_node(seed=7)
        result = AnalysisPipeline.for_domain("branch", node).run()
        entries = entries_from_result(
            result,
            arch=node.name,
            seed=7,
            events_digest=event_set_digest(node.events),
        )
        torn_store = MetricCatalogStore(
            tmp_path / "catalog", failpoint=lambda s: "torn"
        )
        torn_store.put(entries[0])

        supervisor = ServiceSupervisor(
            str(tmp_path / "catalog"),
            cache_dir=str(tmp_path / "cache"),
            config=SupervisorConfig(workers=1),
        )
        supervisor.start()
        try:
            assert supervisor.fsck_report is not None
            assert len(supervisor.fsck_report.quarantined) == 1
            # And the repaired store now fscks clean.
            assert MetricCatalogStore(tmp_path / "catalog").fsck().clean
        finally:
            supervisor.stop()

    def test_stale_answer_matches_request_identity(self, tmp_path):
        """The degraded-mode catalog read answers for exactly the
        requested (system, domain, seed) — never an entry computed for
        another system or seed, and never for faulted requests (an
        unfaulted entry would be a wrong answer merely stamped stale)."""
        from dataclasses import replace
        from urllib.parse import quote

        from repro.core.pipeline import DOMAIN_CONFIGS

        node = aurora_node(seed=7)
        config = replace(DOMAIN_CONFIGS["branch"], use_measurement_cache=True)
        result = AnalysisPipeline.for_domain("branch", node, config=config).run()
        store = MetricCatalogStore(tmp_path / "catalog")
        for entry in entries_from_result(
            result,
            arch=node.name,
            seed=7,
            events_digest=event_set_digest(node.events),
        ):
            store.put(entry)

        supervisor = ServiceSupervisor(
            str(tmp_path / "catalog"),
            config=SupervisorConfig(workers=1, stale_max_age=3600.0),
        )
        target = f"/v1/metric/aurora/branch/{quote(METRIC)}?seed=7"
        answer = supervisor._stale_answer("GET", target)
        assert answer is not None
        assert answer["stale"] is True
        assert answer["metric"] == METRIC

        # A different seed is a different analysis.
        assert (
            supervisor._stale_answer(
                "GET", f"/v1/metric/aurora/branch/{quote(METRIC)}?seed=2024"
            )
            is None
        )
        # Another system's entries never answer for this one.
        assert (
            supervisor._stale_answer(
                "GET", f"/v1/metric/frontier/branch/{quote(METRIC)}?seed=7"
            )
            is None
        )
        # Unknown systems degrade to the 503 path, not a crash.
        assert (
            supervisor._stale_answer(
                "GET", f"/v1/metric/nope/branch/{quote(METRIC)}?seed=7"
            )
            is None
        )
        # Faulted requests must never get an unfaulted stale answer.
        assert (
            supervisor._stale_answer("GET", target + "&faults=kill%3D0.5")
            is None
        )

    def test_fresh_answer_serves_replica_reads_without_a_worker(
        self, tmp_path
    ):
        """The front-replica read: a keyed GET whose stored entry
        carries full freshness evidence is answered by the dispatcher
        itself — same check a worker's catalog hit makes — while any
        doubt (drifted registry evidence, other seed, faults, POSTs)
        falls through to the pool."""
        from dataclasses import replace
        from urllib.parse import quote

        from repro import obs
        from repro.core.pipeline import DOMAIN_CONFIGS

        node = aurora_node(seed=7)
        config = replace(DOMAIN_CONFIGS["branch"], use_measurement_cache=True)
        result = AnalysisPipeline.for_domain("branch", node, config=config).run()
        entries = entries_from_result(
            result,
            arch=node.name,
            seed=7,
            events_digest=event_set_digest(node.events),
        )

        supervisor = ServiceSupervisor(
            str(tmp_path / "catalog"),
            config=SupervisorConfig(workers=1, shards=2, stale_max_age=3600.0),
        )
        assert supervisor._store is not None
        # One entry published against a drifted (wrong) event registry;
        # the rest carry the genuine evidence.
        tampered = entries[1]
        supervisor._store.put(replace(tampered, events_digest="0" * 16))
        for entry in entries:
            if entry.metric != tampered.metric:
                supervisor._store.put(entry)

        target = f"/v1/metric/aurora/branch/{quote(METRIC)}?seed=7"
        with obs.tracing(seed=7) as tracer:
            answer = supervisor._fresh_answer("GET", target)
            assert answer is not None
            assert answer["metric"] == METRIC
            assert answer["stale"] is False
            assert answer["source"] == "catalog"
            assert tracer.counters["shard.front_serves"] == 1
        assert supervisor.status()["front_serves"] == 1

        # Drifted registry evidence is a miss, not a wrong answer.
        drifted = f"/v1/metric/aurora/branch/{quote(tampered.metric)}?seed=7"
        assert supervisor._fresh_answer("GET", drifted) is None
        # Another seed is another analysis; faulted requests and POSTs
        # never take the fast path.
        other_seed = f"/v1/metric/aurora/branch/{quote(METRIC)}?seed=2024"
        assert supervisor._fresh_answer("GET", other_seed) is None
        assert (
            supervisor._fresh_answer("GET", target + "&faults=kill%3D0.5")
            is None
        )
        assert supervisor._fresh_answer("POST", target) is None
        # Unknown systems degrade to dispatch, not a crash.
        assert (
            supervisor._fresh_answer(
                "GET", f"/v1/metric/nope/branch/{quote(METRIC)}?seed=7"
            )
            is None
        )

    def test_status_is_json_serializable(self, tmp_path):
        import json

        supervisor = ServiceSupervisor(
            str(tmp_path / "catalog"),
            config=SupervisorConfig(workers=1),
        )
        # Status must serialize even before start (no processes yet).
        json.dumps(supervisor.status())
