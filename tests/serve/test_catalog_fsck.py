"""Crash-consistency tests: failpoints, fsck, log compaction, staleness.

The failpoint seam on :class:`MetricCatalogStore` simulates the two
power-loss shapes a publication can tear into (a truncated version file
with no log record; a published file whose log append was lost) and the
tests assert ``fsck`` repairs each exactly as documented.
"""

import dataclasses
import json

import pytest

from repro.core.pipeline import AnalysisPipeline
from repro.hardware import aurora_node
from repro.io.cache import event_set_digest
from repro.serve.catalog import MetricCatalogStore, entries_from_result


@pytest.fixture(scope="module")
def entries():
    node = aurora_node(seed=7)
    result = AnalysisPipeline.for_domain("branch", node).run()
    return entries_from_result(
        result, arch=node.name, seed=7, events_digest=event_set_digest(node.events)
    )


def _version_file(store, entry):
    entry_dir = store._entry_dir(entry.arch, entry.metric, entry.config_digest)
    return entry_dir / f"v{entry.version:04d}.json"


class TestFailpoints:
    def test_torn_publication_is_unreadable_and_skipped(self, tmp_path, entries):
        fired = []

        def failpoint(site):
            fired.append(site)
            return "torn"

        store = MetricCatalogStore(tmp_path / "cat", failpoint=failpoint)
        result = store.put(entries[0])
        assert result.version == 0  # a torn publication is not an entry
        assert fired and fired[0].startswith("catalog.publish:")
        # Reads skip the torn file instead of crashing.
        assert (
            store.get(
                entries[0].arch, entries[0].metric, entries[0].config_digest
            )
            is None
        )

    def test_next_put_skips_past_torn_version(self, tmp_path, entries):
        actions = iter(["torn"])

        def failpoint(site):
            return next(actions, None)

        store = MetricCatalogStore(tmp_path / "cat", failpoint=failpoint)
        store.put(entries[0])  # torn v1
        stored = store.put(entries[0])  # clean retry
        assert stored.version == 2
        loaded = store.get(
            entries[0].arch, entries[0].metric, entries[0].config_digest
        )
        assert loaded is not None and loaded.version == 2

    def test_unlogged_publication_reads_fine_but_missing_from_log(
        self, tmp_path, entries
    ):
        store = MetricCatalogStore(tmp_path / "cat", failpoint=lambda s: "unlogged")
        stored = store.put(entries[0])
        assert stored.version == 1
        assert store.get(
            entries[0].arch, entries[0].metric, entries[0].config_digest
        ) is not None
        assert store.log_records() == []


class TestFsck:
    def test_clean_store_fscks_clean(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path / "cat")
        for entry in entries[:2]:
            store.put(entry)
        report = store.fsck()
        assert report.clean
        assert report.scanned == 2

    def test_torn_version_is_quarantined(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path / "cat", failpoint=lambda s: "torn")
        store.put(entries[0])
        report = MetricCatalogStore(tmp_path / "cat").fsck(repair=True)
        assert not report.clean
        assert len(report.quarantined) == 1
        quarantined = MetricCatalogStore(tmp_path / "cat").quarantine_root
        assert any(quarantined.rglob("v0001.json"))
        # After repair the store fscks clean.
        assert MetricCatalogStore(tmp_path / "cat").fsck().clean

    def test_unlogged_version_is_relogged(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path / "cat", failpoint=lambda s: "unlogged")
        stored = store.put(entries[0])
        fresh = MetricCatalogStore(tmp_path / "cat")
        report = fresh.fsck(repair=True)
        assert len(report.relogged) == 1
        records = fresh.log_records()
        assert len(records) == 1
        assert records[0]["version"] == stored.version

    def test_torn_tail_and_unlogged_version_repair_in_one_pass(
        self, tmp_path, entries
    ):
        """Both damage shapes at once: rewriting the torn log tail must
        not discard the just-re-appended records of unlogged versions —
        a single fsck run leaves the store fully clean."""
        store = MetricCatalogStore(tmp_path / "cat", failpoint=lambda s: "unlogged")
        stored = store.put(entries[0])
        fresh = MetricCatalogStore(tmp_path / "cat")
        with fresh.log_path.open("a") as fh:
            fh.write('{"arch": "half a rec')  # no newline: torn tail
        report = fresh.fsck(repair=True)
        assert len(report.relogged) == 1
        assert report.log_torn_lines == 1
        records = MetricCatalogStore(tmp_path / "cat").log_records()
        assert [r["version"] for r in records] == [stored.version]
        assert MetricCatalogStore(tmp_path / "cat").fsck().clean

    def test_staged_leftovers_are_removed(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path / "cat")
        stored = store.put(entries[0])
        staged = _version_file(store, stored).with_suffix(".json.staged")
        staged.write_text("half a publi")
        report = store.fsck(repair=True)
        assert report.staged_removed == [str(staged.relative_to(store.root))]
        assert not staged.exists()

    def test_torn_log_tail_is_repaired(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path / "cat")
        store.put(entries[0])
        store.put(entries[1])
        with store.log_path.open("a") as fh:
            fh.write('{"arch": "half a rec')  # no newline: torn tail
        fresh = MetricCatalogStore(tmp_path / "cat")
        assert len(fresh.log_records()) == 2  # tolerant read
        report = fresh.fsck(repair=True)
        assert report.log_torn_lines == 1
        # The log is now fully parseable again.
        lines = store.log_path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)
        assert fresh.fsck().clean

    def test_orphaned_log_records_are_reported(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path / "cat")
        stored = store.put(entries[0])
        _version_file(store, stored).unlink()
        report = MetricCatalogStore(tmp_path / "cat").fsck(repair=True)
        assert len(report.orphaned_records) == 1

    def test_report_is_json_serializable(self, tmp_path):
        report = MetricCatalogStore(tmp_path / "cat").fsck()
        json.dumps(dataclasses.asdict(report))


class TestCompaction:
    def test_drops_duplicates_and_dead_records(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path / "cat")
        stored = store.put(entries[0])
        store.put(entries[1])
        # Duplicate record for v1 plus a record for a deleted version.
        records = store.log_records()
        with store.log_path.open("a") as fh:
            fh.write(json.dumps(records[0]) + "\n")
            dead = dict(records[0], version=99)
            fh.write(json.dumps(dead) + "\n")
        compaction = store.compact_log()
        assert compaction.records_before == 4
        assert compaction.records_after == 2
        assert compaction.dropped == 2
        survivors = {r["version"] for r in store.log_records()}
        assert survivors == {stored.version, 1}


class TestStaleLatest:
    def test_fresh_entry_is_served_with_age(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path / "cat")
        stored = store.put(entries[0])
        found = store.stale_latest(
            stored.arch, stored.metric, stored.config_digest, max_age=3600.0
        )
        assert found is not None
        entry, age = found
        assert entry.version == stored.version
        assert 0.0 <= age < 3600.0

    def test_age_bound_is_enforced(self, tmp_path, entries):
        import os
        import time

        store = MetricCatalogStore(tmp_path / "cat")
        stored = store.put(entries[0])
        old = time.time() - 100.0
        os.utime(_version_file(store, stored), (old, old))
        assert (
            store.stale_latest(
                stored.arch, stored.metric, stored.config_digest, max_age=10.0
            )
            is None
        )
        assert (
            store.stale_latest(
                stored.arch, stored.metric, stored.config_digest, max_age=500.0
            )
            is not None
        )

    def test_skips_torn_newest_version(self, tmp_path, entries):
        actions = iter([None, "torn"])
        store = MetricCatalogStore(
            tmp_path / "cat", failpoint=lambda s: next(actions, None)
        )
        first = store.put(entries[0])  # clean v1
        import dataclasses as dc

        changed = dc.replace(entries[0], error=entries[0].error * 2)
        store.put(changed)  # torn v2
        found = store.stale_latest(
            first.arch, first.metric, first.config_digest, max_age=3600.0
        )
        assert found is not None
        assert found[0].version == first.version

    def test_missing_key_returns_none(self, tmp_path):
        store = MetricCatalogStore(tmp_path / "cat")
        assert store.stale_latest("a", "m", "d", max_age=10.0) is None
