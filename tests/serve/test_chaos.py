"""The serve-layer chaos property tests.

The drill's invariant (every response bit-identical to the fault-free
answer, explicitly stale, or a typed error) and its zero-fault
degenerate case (supervised multi-worker serving is bit-identical to
single-service serving) are the acceptance criteria of the resilience
tier — see docs/serving.md.
"""

from repro.serve import SupervisorConfig, run_chaos_drill
from repro.serve.chaos import definition_digest


class TestDefinitionDigest:
    def test_ignores_serving_metadata(self):
        base = {"metric": "m", "coefficients_hex": "ab", "error": 1e-9}
        dressed = dict(
            base,
            source="catalog",
            stale=True,
            stale_age_seconds=4.2,
            version=7,
            trace_digest="deadbeef",
        )
        assert definition_digest(base) == definition_digest(dressed)

    def test_sees_definition_changes(self):
        a = {"metric": "m", "coefficients_hex": "ab"}
        b = {"metric": "m", "coefficients_hex": "ac"}
        assert definition_digest(a) != definition_digest(b)


def _drill_config(workers=2):
    return SupervisorConfig(
        workers=workers,
        heartbeat_timeout=1.5,
        backoff_base=0.1,
        backoff_max=0.5,
        restart_intensity=10,
        stale_max_age=3600.0,
    )


class TestChaosDrill:
    def test_zero_fault_drill_is_bit_identical(self, tmp_path):
        """The equivalence property: with nothing injected, the
        supervised multi-worker path answers bit-identically to a plain
        single service — same definitions, nothing stale, no errors."""
        report = run_chaos_drill(
            str(tmp_path / "catalog"),
            chaos_spec="seed=1",
            cache_dir=str(tmp_path / "cache"),
            requests=4,
            config=_drill_config(),
            recovery_budget=20.0,
        )
        assert report.ok, report.violations
        assert report.stale == 0
        assert report.typed_errors == 0
        assert report.identical > 0
        assert report.fsck is not None and report.fsck.clean

    def test_faulted_drill_upholds_invariant(self, tmp_path):
        """Under worker kills, hangs, torn publications, socket drops,
        and latency, every response is still bit-identical / stale / a
        typed error, the pool recovers within budget, and fsck leaves
        no corruption behind."""
        report = run_chaos_drill(
            str(tmp_path / "catalog"),
            chaos_spec=(
                "seed=7,kill=0.25,hang=0.15,torn=0.5,unlogged=0.2,"
                "drop=0.2,latency=0.3,latency_seconds=0.05,hang_seconds=2.5"
            ),
            cache_dir=str(tmp_path / "cache"),
            requests=6,
            config=_drill_config(),
            recovery_budget=30.0,
        )
        assert report.ok, report.violations
        assert report.identical > 0
        # Chaos actually bit: at this torn rate the shared catalog must
        # show quarantined publications after the run.
        assert report.fsck is not None
        assert len(report.fsck.quarantined) + len(report.fsck.relogged) > 0
