"""Tests for the asyncio metric service: coalescing, batching,
backpressure, catalog serving, and fault transparency."""

import asyncio
import threading

import pytest

from repro import obs
from repro.core.pipeline import AnalysisPipeline
from repro.guard.validate import ValidationError
from repro.hardware import aurora_node
from repro.serve import (
    AnalysisRequest,
    MetricCatalogStore,
    MetricService,
    ServiceBusy,
    ServiceError,
)

METRIC = "Mispredicted Branches."


def run_async(coro):
    return asyncio.run(coro)


async def _with_service(body, **kwargs):
    """Start a service, run ``body(service)``, always stop cleanly."""
    service = MetricService(**kwargs)
    await service.start()
    try:
        return await body(service)
    finally:
        await service.stop()


class TestAnalysisRequest:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValidationError):
            AnalysisRequest(system="cray", domain="branch")

    def test_incompatible_domain_rejected(self):
        with pytest.raises(ValidationError):
            AnalysisRequest(system="frontier", domain="branch")

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(ValueError):
            AnalysisRequest(system="aurora", domain="branch", faults="bogus~")

    def test_key_distinguishes_faults(self):
        plain = AnalysisRequest(system="aurora", domain="branch")
        faulted = AnalysisRequest(
            system="aurora", domain="branch", faults="crash=1.0"
        )
        assert plain.key != faulted.key


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_run(self, tmp_path):
        """ISSUE acceptance: N identical concurrent requests -> exactly
        one pipeline execution, asserted via obs counters."""

        async def body(service):
            results = await asyncio.gather(
                *[service.analyze("aurora", "branch", seed=7) for _ in range(5)]
            )
            assert all(set(r) == set(results[0]) for r in results)
            return results

        with obs.tracing(seed=7) as tracer:
            run_async(
                _with_service(
                    body,
                    store=MetricCatalogStore(tmp_path / "catalog"),
                    cache_dir=str(tmp_path / "cache"),
                )
            )
        assert tracer.counters["serve.requests"] == 5
        assert tracer.counters["serve.pipeline_runs"] == 1
        assert tracer.counters["serve.coalesced"] == 4

    def test_distinct_seeds_do_not_coalesce(self, tmp_path):
        async def body(service):
            await asyncio.gather(
                service.analyze("aurora", "branch", seed=7),
                service.analyze("aurora", "branch", seed=8),
            )
            assert service.stats.pipeline_runs == 2
            assert service.stats.coalesced == 0

        run_async(_with_service(body, cache_dir=str(tmp_path / "cache")))


class TestCatalogServing:
    def test_second_request_is_catalog_hit_with_zero_runs(self, tmp_path):
        """ISSUE acceptance: a repeat request is served from the catalog
        with zero new pipeline runs."""

        async def body(service):
            first = await service.analyze("aurora", "branch", seed=7)
            assert {m.source for m in first.values()} == {"pipeline"}
            again = await service.analyze("aurora", "branch", seed=7)
            assert {m.source for m in again.values()} == {"catalog"}
            return first, again

        with obs.tracing(seed=7) as tracer:
            first, again = run_async(
                _with_service(
                    body,
                    store=MetricCatalogStore(tmp_path / "catalog"),
                    cache_dir=str(tmp_path / "cache"),
                )
            )
        assert tracer.counters["serve.pipeline_runs"] == 1
        assert tracer.counters["serve.catalog_hits"] == 1
        for name, served in again.items():
            assert served.entry == first[name].entry

    def test_served_definition_bit_identical_to_direct_run(self, tmp_path):
        """ISSUE acceptance: a served metric definition is bit-identical
        (coefficient bytes, trust level, guard stamps) to a direct
        pipeline run with the same seed and config."""

        async def body(service):
            served = await service.analyze("aurora", "branch", seed=7)
            config = service._config_for("branch")
            return served, config

        served, config = run_async(
            _with_service(
                body,
                store=MetricCatalogStore(tmp_path / "catalog"),
                cache_dir=str(tmp_path / "cache"),
            )
        )
        node = aurora_node(seed=7)
        direct = AnalysisPipeline.for_domain("branch", node, config=config).run()
        assert set(served) == set(direct.metrics)
        for name, metric in direct.metrics.items():
            got = served[name].entry.definition()
            assert got.coefficients.tobytes() == metric.coefficients.tobytes()
            assert got.event_names == metric.event_names
            assert got.error == metric.error
            if metric.trust is not None:
                assert got.trust.level == metric.trust.level
            if metric.health is not None:
                assert (
                    tuple(got.health.guards_fired)
                    == tuple(metric.health.guards_fired)
                )

    def test_unknown_metric_is_404(self, tmp_path):
        async def body(service):
            with pytest.raises(ServiceError) as err:
                await service.get_metric("aurora", "branch", "No Such Metric", seed=7)
            assert err.value.status == 404
            assert METRIC in err.value.payload["available"]

        run_async(_with_service(body, cache_dir=str(tmp_path / "cache")))


class TestBackpressure:
    def test_full_queue_rejects_429(self, tmp_path):
        """A full dispatch queue rejects immediately with ServiceBusy —
        never invisible queueing.  A blocking runner pins the single
        worker; queue_limit=1 leaves room for exactly one more job."""
        release = threading.Event()
        started = threading.Event()

        def runner(tasks):
            started.set()
            assert release.wait(timeout=30), "test runner was never released"
            return MetricService(cache_dir=str(tmp_path / "cache"))._run_batch(tasks)

        async def body(service):
            loop = asyncio.get_running_loop()
            first = asyncio.ensure_future(service.analyze("aurora", "branch", seed=7))
            await loop.run_in_executor(None, started.wait)  # worker is pinned
            second = asyncio.ensure_future(service.analyze("aurora", "branch", seed=8))
            await asyncio.sleep(0)  # let the second request enqueue
            with pytest.raises(ServiceBusy) as err:
                await service.analyze("aurora", "branch", seed=9)
            assert err.value.status == 429
            assert service.stats.rejected == 1
            release.set()
            await asyncio.gather(first, second)

        with obs.tracing(seed=7) as tracer:
            run_async(
                _with_service(
                    body,
                    workers=1,
                    queue_limit=1,
                    batch_size=1,
                    runner=runner,
                    cache_dir=str(tmp_path / "cache"),
                )
            )
        assert tracer.counters["serve.rejected"] == 1
        assert tracer.counters["serve.pipeline_runs"] == 2

    def test_coalesced_rider_is_not_rejected(self, tmp_path):
        """Riders of an in-flight key never consume queue capacity."""
        release = threading.Event()
        started = threading.Event()

        def runner(tasks):
            started.set()
            assert release.wait(timeout=30)
            return MetricService(cache_dir=str(tmp_path / "cache"))._run_batch(tasks)

        async def body(service):
            loop = asyncio.get_running_loop()
            first = asyncio.ensure_future(service.analyze("aurora", "branch", seed=7))
            await loop.run_in_executor(None, started.wait)
            blocker = asyncio.ensure_future(
                service.analyze("aurora", "branch", seed=8)
            )
            await asyncio.sleep(0)
            # Queue is full, but an identical request coalesces fine.
            rider = asyncio.ensure_future(service.analyze("aurora", "branch", seed=7))
            await asyncio.sleep(0)
            assert service.stats.coalesced == 1
            assert service.stats.rejected == 0
            release.set()
            await asyncio.gather(first, blocker, rider)

        run_async(
            _with_service(
                body,
                workers=1,
                queue_limit=1,
                batch_size=1,
                runner=runner,
                cache_dir=str(tmp_path / "cache"),
            )
        )


class TestFaultTransparency:
    def test_injected_crash_surfaces_as_structured_error(self, tmp_path):
        """ISSUE acceptance: a fault-injected worker crash produces a
        structured error payload, never a hang."""

        async def body(service):
            with pytest.raises(ServiceError) as err:
                await service.analyze(
                    "aurora", "branch", seed=7, faults="crash=1.0"
                )
            payload = err.value.payload
            assert err.value.status == 500
            assert payload["error_type"] == "InjectedWorkerCrash"
            assert payload["attempts"] == 1
            assert payload["request"]["faults"] == "crash=1.0"

        with obs.tracing(seed=7) as tracer:
            run_async(
                _with_service(
                    body,
                    store=MetricCatalogStore(tmp_path / "catalog"),
                    retries=0,
                    cache_dir=str(tmp_path / "cache"),
                )
            )
        assert tracer.counters["serve.errors"] == 1

    def test_faulted_requests_never_touch_the_catalog(self, tmp_path):
        """Diagnostic probes must not poison the store or read from it."""
        store = MetricCatalogStore(tmp_path / "catalog")

        async def body(service):
            # A clean run populates the catalog; a faulted re-run of the
            # same key must not be served from it (and must not store).
            await service.analyze("aurora", "branch", seed=7)
            with pytest.raises(ServiceError):
                await service.analyze(
                    "aurora", "branch", seed=7, faults="crash=1.0"
                )
            assert service.stats.catalog_hits == 0

        run_async(
            _with_service(
                body, store=store, retries=0, cache_dir=str(tmp_path / "cache")
            )
        )
        assert len(store.log_records()) > 0  # clean run stored
        versions = {r["version"] for r in store.log_records()}
        assert versions == {1}  # the faulted run appended nothing

    def test_retry_recovers_injected_crash(self, tmp_path):
        """With retries enabled the engine's retry machinery (reused
        verbatim) absorbs the crash and the analysis succeeds."""

        async def body(service):
            served = await service.analyze(
                "aurora", "branch", seed=7, faults="crash=1.0"
            )
            assert {m.source for m in served.values()} == {"pipeline"}

        run_async(
            _with_service(body, retries=1, cache_dir=str(tmp_path / "cache"))
        )


class TestLifecycle:
    def test_stop_resolves_pending_with_503(self, tmp_path):
        release = threading.Event()
        started = threading.Event()

        def runner(tasks):
            started.set()
            release.wait(timeout=30)
            raise RuntimeError("runner aborted by shutdown test")

        async def body():
            service = MetricService(
                workers=1, queue_limit=4, batch_size=1, runner=runner
            )
            await service.start()
            loop = asyncio.get_running_loop()
            pending = asyncio.ensure_future(service.analyze("aurora", "branch"))
            await loop.run_in_executor(None, started.wait)
            queued = asyncio.ensure_future(
                service.analyze("aurora", "branch", seed=99)
            )
            await asyncio.sleep(0)
            await service.stop(drain_timeout=0.2)
            release.set()
            for fut in (pending, queued):
                with pytest.raises(ServiceError) as err:
                    await fut
                assert err.value.status in (500, 503)
            assert not service.ready

        run_async(body())

    def test_health_payload_shape(self):
        async def body(service):
            health = service.health()
            assert health["ready"] is True
            assert health["queue_limit"] == service.queue_limit
            assert set(health["stats"]) == {
                "requests",
                "coalesced",
                "catalog_hits",
                "pipeline_runs",
                "batches",
                "rejected",
                "errors",
                "stale_served",
            }
            assert isinstance(health["counters"], dict)

        run_async(_with_service(body))

    def test_requests_before_start_are_503(self):
        async def body():
            service = MetricService()
            with pytest.raises(ServiceError) as err:
                await service.analyze("aurora", "branch")
            assert err.value.status == 503

        run_async(body())


class TestRefreshHook:
    def test_refresh_builds_then_serves_from_catalog(self, tmp_path):
        """A service-side refresh populates the catalog; subsequent
        requests are pure catalog hits with zero pipeline runs."""

        async def body(service):
            report = await service.refresh("aurora", seed=7, domains=["branch"])
            assert {d for d, _ in report.refreshed} == {"branch"}
            served = await service.analyze("aurora", "branch", seed=7)
            assert {m.source for m in served.values()} == {"catalog"}
            again = await service.refresh("aurora", seed=7, domains=["branch"])
            assert not again.refreshed
            return report, served

        with obs.tracing(seed=7) as tracer:
            report, served = run_async(
                _with_service(
                    body, store=MetricCatalogStore(tmp_path / "catalog")
                )
            )
        assert tracer.counters["serve.refreshes"] == 2
        assert "serve.pipeline_runs" not in tracer.counters
        # The refresh-built entries are the ones served.
        for (domain, metric), entry in report.entries.items():
            assert served[metric].entry == entry

    def test_refresh_with_edited_registry_invalidates_service_reads(
        self, tmp_path
    ):
        """After refreshing against an edited registry, a stock-registry
        request correctly misses the catalog (the stored dependency
        digests no longer match) and re-runs the pipeline."""
        from repro.incr import RegistryEdit, apply_edits

        async def body(service):
            await service.refresh("aurora", seed=7, domains=["branch"])
            node = service._node_for("aurora", 7)
            target = next(
                e.full_name for e in node.events if e.domain == "branch"
            )
            edited = apply_edits(
                node.events,
                [
                    RegistryEdit(
                        action="scale-response", event=target, factor=1.5
                    )
                ],
            )
            report = await service.refresh(
                "aurora", seed=7, domains=["branch"], registry=edited
            )
            assert report.stale_domains == ["branch"]
            served = await service.analyze("aurora", "branch", seed=7)
            assert {m.source for m in served.values()} == {"pipeline"}

        run_async(
            _with_service(body, store=MetricCatalogStore(tmp_path / "catalog"))
        )

    def test_refresh_without_store_is_400(self):
        async def body(service):
            with pytest.raises(ServiceError) as err:
                await service.refresh("aurora")
            assert err.value.status == 400

        run_async(_with_service(body))

    def test_refresh_unknown_system_is_404(self, tmp_path):
        async def body(service):
            with pytest.raises(ServiceError) as err:
                await service.refresh("cray")
            assert err.value.status == 404

        run_async(
            _with_service(body, store=MetricCatalogStore(tmp_path / "catalog"))
        )

    def test_refresh_incompatible_domain_is_400(self, tmp_path):
        async def body(service):
            with pytest.raises(ServiceError) as err:
                await service.refresh("frontier", domains=["branch"])
            assert err.value.status == 400

        run_async(
            _with_service(body, store=MetricCatalogStore(tmp_path / "catalog"))
        )

    def test_refresh_before_start_is_503(self, tmp_path):
        async def body():
            service = MetricService(MetricCatalogStore(tmp_path / "catalog"))
            with pytest.raises(ServiceError) as err:
                await service.refresh("aurora")
            assert err.value.status == 503

        run_async(body())


class TestStopRace:
    """S3: stop() racing in-flight batches must drain cleanly — pending
    requests resolve 503, worker threads join, no staging litter."""

    def test_stop_joins_worker_threads(self, tmp_path):
        async def body():
            service = MetricService(cache_dir=str(tmp_path / "cache"))
            await service.start()
            await service.analyze("aurora", "branch")
            await service.stop(drain_timeout=10.0)
            assert service.drained_clean is True
            lingering = [
                t.name
                for t in threading.enumerate()
                if t.name.startswith(service._thread_prefix)
            ]
            assert lingering == []

        run_async(body())

    def test_stop_with_hung_runner_reports_unclean_drain(self):
        release = threading.Event()
        started = threading.Event()

        def runner(tasks):
            started.set()
            release.wait(timeout=30)
            return []

        async def body():
            service = MetricService(
                workers=1, queue_limit=2, batch_size=1, runner=runner
            )
            await service.start()
            loop = asyncio.get_running_loop()
            pending = asyncio.ensure_future(service.analyze("aurora", "branch"))
            await loop.run_in_executor(None, started.wait)
            await service.stop(drain_timeout=0.2)
            # The runner thread is still wedged: the drain must say so
            # instead of pretending the shutdown was clean.
            assert service.drained_clean is False
            release.set()
            with pytest.raises(ServiceError):
                await pending

        run_async(body())

    def test_stop_midflight_leaves_no_staging_litter(self, tmp_path):
        async def body():
            store = MetricCatalogStore(tmp_path / "catalog")
            service = MetricService(store, cache_dir=str(tmp_path / "cache"))
            await service.start()
            pending = asyncio.ensure_future(service.analyze("aurora", "branch"))
            await asyncio.sleep(0.05)  # let the batch reach the pool
            await service.stop(drain_timeout=10.0)
            try:
                await pending
            except ServiceError:
                pass  # resolved 503 mid-flight: acceptable
            staged = list((tmp_path / "catalog").rglob("*.staged"))
            assert staged == []
            # Whatever was published is readable and fscks clean.
            assert MetricCatalogStore(tmp_path / "catalog").fsck().clean

        run_async(body())


class TestStaleDegradation:
    """Graceful degradation: a saturated service serves the newest
    catalog entries stamped stale instead of rejecting — opt-in via
    stale_max_age, never for faulted requests."""

    async def _saturated_service(self, store, release, started, **kwargs):
        def runner(tasks):
            started.set()
            release.wait(timeout=30)
            return []

        service = MetricService(
            store,
            workers=1,
            queue_limit=1,
            batch_size=1,
            runner=runner,
            **kwargs,
        )
        # Simulate invalidated fresh reads (a registry edit, a dependency
        # digest mismatch): the strict catalog path misses, so requests
        # hit the queue — while the freshness-waiving stale path can
        # still load the stored entries.
        service._from_catalog = lambda request: None
        await service.start()
        loop = asyncio.get_running_loop()
        # One request wedged in the worker, one filling the queue.
        asyncio.ensure_future(service.analyze("aurora", "branch", seed=99))
        await loop.run_in_executor(None, started.wait)
        asyncio.ensure_future(service.analyze("aurora", "branch", seed=98))
        await asyncio.sleep(0)
        return service

    def _populate(self, tmp_path):
        store = MetricCatalogStore(tmp_path / "catalog")

        async def fill():
            service = MetricService(store, cache_dir=str(tmp_path / "cache"))
            await service.start()
            await service.analyze("aurora", "branch")
            await service.stop(drain_timeout=5.0)

        run_async(fill())
        return store

    def test_saturated_service_serves_stale(self, tmp_path):
        store = self._populate(tmp_path)
        release, started = threading.Event(), threading.Event()

        async def body():
            service = await self._saturated_service(
                store, release, started, stale_max_age=3600.0
            )
            with obs.tracing(seed=0) as trace:
                served = await service.analyze("aurora", "branch")
            release.set()
            assert served
            for metric in served.values():
                assert metric.stale is True
                assert metric.source == "catalog"
                payload = metric.to_payload()
                assert payload["stale"] is True
                assert payload["stale_age_seconds"] >= 0.0
            assert service.stats.stale_served == 1
            assert trace.counters["serve.stale_served"] == 1
            await service.stop(drain_timeout=0.5)

        run_async(body())

    def test_stale_serving_is_opt_in(self, tmp_path):
        store = self._populate(tmp_path)
        release, started = threading.Event(), threading.Event()

        async def body():
            service = await self._saturated_service(store, release, started)
            with pytest.raises(ServiceBusy):
                await service.analyze("aurora", "branch")
            release.set()
            assert service.stats.stale_served == 0
            await service.stop(drain_timeout=0.5)

        run_async(body())

    def test_faulted_requests_never_get_stale_answers(self, tmp_path):
        store = self._populate(tmp_path)
        release, started = threading.Event(), threading.Event()

        async def body():
            service = await self._saturated_service(
                store, release, started, stale_max_age=3600.0
            )
            with pytest.raises(ServiceBusy):
                await service.analyze("aurora", "branch", faults="crash=1.0")
            release.set()
            await service.stop(drain_timeout=0.5)

        run_async(body())

    def test_empty_catalog_still_rejects(self, tmp_path):
        store = MetricCatalogStore(tmp_path / "empty")
        release, started = threading.Event(), threading.Event()

        async def body():
            service = await self._saturated_service(
                store, release, started, stale_max_age=3600.0
            )
            with pytest.raises(ServiceBusy):
                await service.analyze("aurora", "branch")
            release.set()
            await service.stop(drain_timeout=0.5)

        run_async(body())
