"""Tests for consistent-hash catalog sharding.

The ring's three guarantees are held as hypothesis properties (balance
within bound, exactly one live owner per key, minimal remap on
reshard); the :class:`ShardedCatalogStore` tests prove the front is
behaviourally identical to one unsharded store — routing, deterministic
fan-out, typed per-shard degradation, and replica invalidation on the
events-registry digest.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.pipeline import AnalysisPipeline
from repro.hardware import aurora_node
from repro.io.cache import event_set_digest
from repro.serve import (
    MetricCatalogStore,
    ShardRing,
    ShardUnavailable,
    ShardedCatalogStore,
    open_catalog,
    shard_names,
)

_KEYS = st.tuples(
    st.text(min_size=1, max_size=12), st.text(min_size=1, max_size=24)
)


@pytest.fixture(scope="module")
def node():
    return aurora_node(seed=7)


@pytest.fixture(scope="module")
def entries(node):
    from repro.serve.catalog import entries_from_result

    result = AnalysisPipeline.for_domain("branch", node).run()
    return entries_from_result(
        result, arch=node.name, seed=7, events_digest=event_set_digest(node.events)
    )


class TestShardNames:
    def test_canonical_names(self):
        assert shard_names(3) == ("shard-00", "shard-01", "shard-02")
        with pytest.raises(ValueError):
            shard_names(0)


class TestShardRingProperties:
    """The hypothesis-held contract (satellite S1)."""

    @given(key=_KEYS, n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_lookup_is_deterministic_across_instances(self, key, n):
        """Two processes that agree on the names agree on every route."""
        a, b = ShardRing.of_size(n), ShardRing.of_size(n)
        assert a.lookup(*key) == b.lookup(*key)

    @given(
        key=_KEYS,
        n=st.integers(min_value=2, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_key_maps_to_exactly_one_live_shard(self, key, n, data):
        """Down shards are walked past; the route stays a function."""
        ring = ShardRing.of_size(n)
        down = data.draw(
            st.sets(st.sampled_from(ring.shards), max_size=n - 1)
        )
        owner = ring.lookup(*key, exclude=down)
        assert owner in ring.shards and owner not in down
        # A function: the same exclusion set yields the same owner.
        assert ring.lookup(*key, exclude=down) == owner
        # Only when *everything* is down does the ring give up, typed.
        with pytest.raises(ShardUnavailable):
            ring.lookup(*key, exclude=ring.shards)

    @given(n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_balance_within_bound(self, n):
        """128 vnodes keep every shard within ~2x of its fair share of
        the ring (empirically within ~1.3x; 2x is the alarm bound)."""
        shares = ShardRing.of_size(n).arc_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        fair = 1.0 / n
        for name, share in shares.items():
            assert share < 2.0 * fair, f"{name} hoards {share:.3f} of the ring"
            assert share > 0.25 * fair, f"{name} owns almost nothing ({share:.4f})"

    @given(key=_KEYS, n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_reshard_moves_keys_only_onto_the_new_shard(self, key, n):
        """The minimality property, exactly: growing N -> N+1 either
        leaves a key where it was or moves it onto the new shard."""
        old_owner = ShardRing.of_size(n).lookup(*key)
        new_owner = ShardRing.of_size(n + 1).lookup(*key)
        if new_owner != old_owner:
            assert new_owner == shard_names(n + 1)[-1]

    def test_reshard_remaps_a_minimal_fraction(self):
        """Over a large deterministic key population the moved fraction
        tracks the new shard's arc share — about 1/(N+1), never a
        reshuffle of everything."""
        keys = [("arch", f"metric-{i}") for i in range(2000)]
        for n in (2, 4, 7):
            before = ShardRing.of_size(n)
            after = ShardRing.of_size(n + 1)
            moved = sum(1 for k in keys if before.lookup(*k) != after.lookup(*k))
            new_share = after.arc_shares()[shard_names(n + 1)[-1]]
            fraction = moved / len(keys)
            assert fraction <= 2.0 / (n + 1)
            # The moved set IS the new shard's slice (sampling error only).
            assert abs(fraction - new_share) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRing([])
        with pytest.raises(ValueError):
            ShardRing(["a", "a"])
        with pytest.raises(ValueError):
            ShardRing(["a"], vnodes=0)


class TestShardedStoreRouting:
    def test_put_routes_to_ring_owner_and_round_trips(self, tmp_path, entries):
        store = ShardedCatalogStore(tmp_path, n_shards=3)
        for entry in entries:
            stored = store.put(entry)
            owner = store.shard_for(entry.arch, entry.metric)
            on_disk = store.shard_store(owner).latest(
                entry.arch, entry.metric, entry.config_digest
            )
            assert on_disk is not None and on_disk.version == stored.version
            # Exactly one shard holds the key.
            for other in store.shards:
                if other != owner:
                    assert (
                        store.shard_store(other).latest(
                            entry.arch, entry.metric, entry.config_digest
                        )
                        is None
                    )
        got = store.latest(
            entries[0].arch, entries[0].metric, entries[0].config_digest
        )
        assert got is not None
        assert got.coefficients_hex == entries[0].coefficients_hex

    def test_reopen_reads_manifest_and_rejects_mismatch(self, tmp_path, entries):
        store = ShardedCatalogStore(tmp_path, n_shards=3)
        store.put(entries[0])
        reopened = ShardedCatalogStore(tmp_path)  # no n_shards: manifest rules
        assert reopened.shards == store.shards
        assert (
            reopened.latest(
                entries[0].arch, entries[0].metric, entries[0].config_digest
            )
            is not None
        )
        with pytest.raises(ValueError, match="re-partition"):
            ShardedCatalogStore(tmp_path, n_shards=5)

    def test_unreadable_manifest_format_is_an_error(self, tmp_path):
        store = ShardedCatalogStore(tmp_path, n_shards=2)
        store.manifest_path.write_text(json.dumps({"format": 99, "shards": []}))
        with pytest.raises(ValueError, match="format"):
            ShardedCatalogStore(tmp_path)

    def test_open_catalog_dispatches_by_manifest(self, tmp_path):
        plain = open_catalog(tmp_path / "plain")
        assert isinstance(plain, MetricCatalogStore)
        sharded = open_catalog(tmp_path / "sharded", shards=2)
        assert isinstance(sharded, ShardedCatalogStore)
        # A root that carries shards.json opens sharded with no hint.
        again = open_catalog(tmp_path / "sharded")
        assert isinstance(again, ShardedCatalogStore)
        assert again.shards == sharded.shards

    def test_history_and_diff_route_to_the_owner(self, tmp_path, entries):
        from repro.serve.catalog import _coeffs_to_hex

        store = ShardedCatalogStore(tmp_path, n_shards=3)
        base = store.put(entries[0])
        coeffs = entries[0].coefficients.copy()
        coeffs[0] = coeffs[0] + 2.0**-48
        store.put(
            dataclasses.replace(
                entries[0], coefficients_hex=_coeffs_to_hex(coeffs)
            )
        )
        assert [
            e.version
            for e in store.history(base.arch, base.metric, base.config_digest)
        ] == [1, 2]
        diff = store.diff(base.arch, base.metric, base.config_digest, 1, 2)
        assert not diff.identical


class TestShardedFanOut:
    """Cross-shard list/diff/fsck coverage (satellite S3)."""

    def test_listing_is_deterministic_and_matches_unsharded(
        self, tmp_path, entries
    ):
        sharded = ShardedCatalogStore(tmp_path / "sharded", n_shards=3)
        plain = MetricCatalogStore(tmp_path / "plain")
        for entry in entries:
            sharded.put(entry)
            plain.put(entry)
        rows = sharded.list_entries()
        assert rows == sharded.list_entries()  # stable order
        assert rows == sorted(
            plain.list_entries(),
            key=lambda r: (r["arch"], r["metric"], r["config_digest"]),
        )

    def test_down_shard_degrades_its_keys_not_the_listing(
        self, tmp_path, entries
    ):
        store = ShardedCatalogStore(tmp_path, n_shards=3)
        for entry in entries:
            store.put(entry)
        owners = {e.metric: store.shard_for(e.arch, e.metric) for e in entries}
        victim = owners[entries[0].metric]
        survivors = [m for m, owner in owners.items() if owner != victim]
        with obs.tracing(seed=7) as tracer:
            store.mark_down(victim)
            # Keyed ops on the down shard: typed 503, scoped to the shard.
            with pytest.raises(ShardUnavailable) as err:
                store.latest(
                    entries[0].arch,
                    entries[0].metric,
                    entries[0].config_digest,
                )
            assert err.value.status == 503
            assert err.value.payload["shard"] == victim
            assert err.value.payload["retry"] is True
            # The listing still answers, minus the down shard's rows.
            rows = store.list_entries()
            assert store.degraded_shards == (victim,)
            listed = {r["metric"] for r in rows}
            assert set(survivors) <= listed
            assert all(owners[m] != victim for m in listed)
            assert tracer.counters["shard.degraded_reads"] >= 2
        store.mark_up(victim)
        assert (
            store.latest(
                entries[0].arch, entries[0].metric, entries[0].config_digest
            )
            is not None
        )
        assert {r["metric"] for r in store.list_entries()} == set(owners)

    def test_fsck_merges_reports_with_shard_prefixed_paths(
        self, tmp_path, entries
    ):
        store = ShardedCatalogStore(tmp_path, n_shards=3)
        for entry in entries:
            store.put(entry)
        clean = store.fsck(repair=True)
        assert clean.clean and clean.scanned == len(entries)
        # Tear one version file in whichever shard owns the first entry.
        owner = store.shard_for(entries[0].arch, entries[0].metric)
        victim_dir = tmp_path / owner
        torn = next(victim_dir.rglob("v*.json"))
        torn.write_text(torn.read_text()[: len(torn.read_text()) // 2])
        report = ShardedCatalogStore(tmp_path).fsck(repair=True)
        assert not report.clean
        assert len(report.quarantined) == 1
        assert report.quarantined[0].startswith(f"{owner}/")

    def test_compact_log_sums_across_shards(self, tmp_path, entries):
        store = ShardedCatalogStore(tmp_path, n_shards=3)
        for entry in entries:
            store.put(entry)
        assert len(store.log_records()) == len(entries)
        compaction = store.compact_log()
        assert compaction.records_before == len(entries)
        assert compaction.dropped == 0


class TestReadReplicas:
    def test_fresh_read_is_replicated_and_hit(self, tmp_path, entries):
        store = ShardedCatalogStore(tmp_path, n_shards=2)
        entry = entries[0]
        store.put(entry)
        with obs.tracing(seed=7) as tracer:
            first = store.latest(
                entry.arch,
                entry.metric,
                entry.config_digest,
                events_digest=entry.events_digest,
            )
            assert first is not None and store.replica_count == 1
            again = store.latest(
                entry.arch,
                entry.metric,
                entry.config_digest,
                events_digest=entry.events_digest,
            )
            assert again.coefficients_hex == first.coefficients_hex
            assert tracer.counters["shard.replica_hits"] == 1
            # The replica hit skipped the disk route.
            assert tracer.counters["shard.routes"] == 1

    def test_registry_edit_invalidates_replica(self, tmp_path, entries):
        store = ShardedCatalogStore(tmp_path, n_shards=2)
        entry = entries[0]
        store.put(entry)
        with obs.tracing(seed=7) as tracer:
            store.latest(
                entry.arch,
                entry.metric,
                entry.config_digest,
                events_digest=entry.events_digest,
            )
            assert store.replica_count == 1
            # The registry moved: the caller's digest changed, so the
            # replica must not answer — and the disk read (also
            # staleness-checked) refuses too.
            stale = store.latest(
                entry.arch,
                entry.metric,
                entry.config_digest,
                events_digest="0" * 16,
            )
            assert stale is None
            assert store.replica_count == 0
            assert tracer.counters["shard.replica_invalidations"] == 1

    def test_write_invalidates_replica(self, tmp_path, entries):
        store = ShardedCatalogStore(tmp_path, n_shards=2)
        entry = entries[0]
        store.put(entry)
        store.latest(
            entry.arch,
            entry.metric,
            entry.config_digest,
            events_digest=entry.events_digest,
        )
        assert store.replica_count == 1
        store.put(entry)
        assert store.replica_count == 0

    def test_unchecked_reads_are_not_cached(self, tmp_path, entries):
        store = ShardedCatalogStore(tmp_path, n_shards=2)
        store.put(entries[0])
        assert (
            store.latest(
                entries[0].arch, entries[0].metric, entries[0].config_digest
            )
            is not None
        )
        assert store.replica_count == 0  # no freshness evidence, no replica

    def test_replica_capacity_is_lru_bounded(self, tmp_path, entries):
        store = ShardedCatalogStore(tmp_path, n_shards=2, replica_capacity=2)
        for entry in entries[:3]:
            store.put(entry)
            store.latest(
                entry.arch,
                entry.metric,
                entry.config_digest,
                events_digest=entry.events_digest,
            )
        assert store.replica_count == 2

    def test_mark_down_clears_replicas(self, tmp_path, entries):
        store = ShardedCatalogStore(tmp_path, n_shards=2)
        entry = entries[0]
        store.put(entry)
        store.latest(
            entry.arch,
            entry.metric,
            entry.config_digest,
            events_digest=entry.events_digest,
        )
        assert store.replica_count == 1
        store.mark_down(store.shards[0])
        assert store.replica_count == 0
