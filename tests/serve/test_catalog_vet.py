"""Vet evidence on catalog entries: digest semantics, round trips, and
verdict-flip diffs."""

from dataclasses import replace

import pytest

from repro.core.pipeline import AnalysisPipeline
from repro.hardware import aurora_node
from repro.io.cache import event_set_digest
from repro.serve.catalog import CatalogEntry, diff_entries, entries_from_result
from repro.vet import TrustPriors, VetStamp


@pytest.fixture(scope="module")
def node():
    return aurora_node(seed=7)


@pytest.fixture(scope="module")
def clean_entries(node):
    result = AnalysisPipeline.for_domain("branch", node).run()
    return entries_from_result(
        result, arch=node.name, seed=7, events_digest=event_set_digest(node.events)
    )


@pytest.fixture(scope="module")
def vetted_entries(node):
    priors = TrustPriors(
        verdicts={"BR_INST_RETIRED:ALL_BRANCHES": "accurate"},
        source="vet-campaign[test]",
    )
    result = AnalysisPipeline.for_domain(
        "branch", aurora_node(seed=7), priors=priors
    ).run()
    return entries_from_result(
        result, arch=node.name, seed=7, events_digest=event_set_digest(node.events)
    )


class TestVetPayload:
    def test_prior_free_entries_have_no_vet(self, clean_entries):
        assert all(entry.vet is None for entry in clean_entries)

    def test_vetted_entries_carry_the_stamp(self, vetted_entries):
        for entry in vetted_entries:
            assert entry.vet is not None
            assert set(entry.vet) == {"verdicts", "excluded", "source"}
            assert entry.vet["source"] == "vet-campaign[test]"

    def test_payload_round_trip(self, vetted_entries):
        entry = vetted_entries[0]
        again = CatalogEntry.from_payload(entry.to_payload())
        assert again.vet == entry.vet
        assert again.content_digest() == entry.content_digest()

    def test_definition_rehydrates_the_stamp(self, vetted_entries):
        definition = vetted_entries[0].definition()
        assert isinstance(definition.vet, VetStamp)
        assert definition.vet.source == "vet-campaign[test]"

    def test_clean_definition_has_no_stamp(self, clean_entries):
        assert clean_entries[0].definition().vet is None


class TestDigestSemantics:
    def test_absent_and_empty_vet_share_digests(self, clean_entries):
        # Old stored entries have no vet field; their digests (and hence
        # dedup) must be unaffected by the field's existence.
        entry = clean_entries[0]
        assert (
            replace(entry, vet=None).content_digest()
            == replace(entry, vet={}).content_digest()
        )

    def test_vet_payload_changes_the_digest(self, clean_entries):
        entry = clean_entries[0]
        stamped = replace(
            entry,
            vet={"verdicts": {"E": "accurate"}, "excluded": [], "source": "s"},
        )
        assert stamped.content_digest() != entry.content_digest()


class TestVerdictFlipDiff:
    def test_vet_only_change_is_not_identical(self, clean_entries, vetted_entries):
        clean = next(
            c
            for c in clean_entries
            if any(
                v.metric == c.metric
                and v.event_names == c.event_names
                and v.coefficients_hex == c.coefficients_hex
                for v in vetted_entries
            )
        )
        vetted = next(v for v in vetted_entries if v.metric == clean.metric)
        diff = diff_entries(clean, replace(vetted, version=2))
        assert not diff.identical
        assert diff.verdict_flips

    def test_flip_in_render_and_payload(self, clean_entries, vetted_entries):
        clean = clean_entries[0]
        vetted = next(
            v for v in vetted_entries if v.metric == clean.metric
        )
        diff = diff_entries(clean, replace(vetted, version=2))
        payload = diff.to_payload()
        assert payload["verdict_flips"]
        for event, (old, new) in payload["verdict_flips"].items():
            assert old is None
            assert new in ("accurate", "unvetted")
        assert "vet:" in diff.render()
