"""Tests for the versioned, content-addressed metric catalog."""

import json

import numpy as np
import pytest

from repro import obs
from repro.core.pipeline import AnalysisPipeline, DOMAIN_CONFIGS
from repro.hardware import aurora_node
from repro.io.cache import event_set_digest
from repro.serve.catalog import (
    CatalogEntry,
    MetricCatalogStore,
    analysis_config_digest,
    diff_entries,
    entries_from_result,
    metric_slug,
)


@pytest.fixture(scope="module")
def node():
    return aurora_node(seed=7)


@pytest.fixture(scope="module")
def result(node):
    return AnalysisPipeline.for_domain("branch", node).run()


@pytest.fixture(scope="module")
def entries(node, result):
    return entries_from_result(
        result, arch=node.name, seed=7, events_digest=event_set_digest(node.events)
    )


class TestMetricSlug:
    def test_deterministic_and_filesystem_safe(self):
        slug = metric_slug("Mispredicted Branches.")
        assert slug == metric_slug("Mispredicted Branches.")
        assert "/" not in slug and " " not in slug

    def test_distinct_metrics_distinct_slugs(self):
        assert metric_slug("Mispredicted Branches.") != metric_slug(
            "Correctly Predicted Branches."
        )

    def test_collision_resistant_beyond_stem(self):
        # Same slugged stem, different raw names -> the digest suffix
        # separates them.
        assert metric_slug("A  B") != metric_slug("A-B")


class TestConfigDigest:
    def test_cache_flag_does_not_change_digest(self):
        from dataclasses import replace

        base = DOMAIN_CONFIGS["branch"]
        a = analysis_config_digest("branch", 7, base)
        b = analysis_config_digest(
            "branch", 7, replace(base, use_measurement_cache=True)
        )
        assert a == b  # the cache cannot change results

    def test_seed_and_config_are_load_bearing(self):
        from dataclasses import replace

        base = DOMAIN_CONFIGS["branch"]
        assert analysis_config_digest("branch", 7, base) != analysis_config_digest(
            "branch", 8, base
        )
        assert analysis_config_digest("branch", 7, base) != analysis_config_digest(
            "branch", 7, replace(base, tau=1e-3)
        )


class TestEntryRoundTrip:
    def test_definition_is_bit_exact(self, result, entries):
        for entry in entries:
            direct = result.metrics[entry.metric]
            rebuilt = entry.definition()
            assert rebuilt.coefficients.tobytes() == direct.coefficients.tobytes()
            assert rebuilt.event_names == direct.event_names
            assert rebuilt.error == direct.error
            assert rebuilt.degraded == direct.degraded

    def test_payload_round_trip_preserves_everything(self, entries):
        for entry in entries:
            back = CatalogEntry.from_payload(
                json.loads(json.dumps(entry.to_payload()))
            )
            assert back == entry

    def test_trust_and_guards_survive(self, result, entries):
        for entry in entries:
            direct = result.metrics[entry.metric]
            if direct.trust is not None:
                assert entry.trust is not None
                assert entry.trust.level == direct.trust.level
                assert entry.trust.reasons == direct.trust.reasons
            if direct.health is not None:
                assert entry.guards_fired == tuple(direct.health.guards_fired)

    def test_content_digest_ignores_version(self, entries):
        import dataclasses

        entry = entries[0]
        bumped = dataclasses.replace(entry, version=41)
        assert bumped.content_digest() == entry.content_digest()


class TestStore:
    def test_put_get_round_trip(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path)
        stored = store.put(entries[0])
        assert stored.version == 1
        got = store.get(stored.arch, stored.metric, stored.config_digest)
        assert got == stored

    def test_identical_content_dedups(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path)
        first = store.put(entries[0])
        again = store.put(entries[0])
        assert again.version == first.version == 1
        assert len(store.history(first.arch, first.metric, first.config_digest)) == 1

    def test_changed_content_appends_version(self, tmp_path, entries):
        import dataclasses

        store = MetricCatalogStore(tmp_path)
        store.put(entries[0])
        coeffs = entries[0].coefficients.copy()
        coeffs[0] += 1.0
        from repro.serve.catalog import _coeffs_to_hex

        changed = dataclasses.replace(
            entries[0], coefficients_hex=_coeffs_to_hex(coeffs)
        )
        stored = store.put(changed)
        assert stored.version == 2
        history = store.history(stored.arch, stored.metric, stored.config_digest)
        assert [e.version for e in history] == [1, 2]

    def test_events_digest_mismatch_invalidates(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path)
        stored = store.put(entries[0])
        with obs.tracing(seed=0) as tracer:
            missed = store.latest(
                stored.arch,
                stored.metric,
                stored.config_digest,
                events_digest="different-registry",
            )
        assert missed is None
        assert tracer.counters["catalog.invalidated"] == 1

    def test_version_log_is_append_only(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path)
        for entry in entries[:3]:
            store.put(entry)
        records = store.log_records()
        assert len(records) == 3
        assert all(r["version"] == 1 for r in records)

    def test_diff_golden(self, tmp_path, entries):
        """Golden rendering: version bumps show exactly the drifted
        fields, bit-level coefficient drift included."""
        import dataclasses

        from repro.serve.catalog import _coeffs_to_hex

        store = MetricCatalogStore(tmp_path)
        base = store.put(entries[0])
        coeffs = entries[0].coefficients.copy()
        coeffs[0] = coeffs[0] + 2.0**-48  # sub-display-precision drift
        store.put(
            dataclasses.replace(entries[0], coefficients_hex=_coeffs_to_hex(coeffs))
        )
        diff = store.diff(base.arch, base.metric, base.config_digest, 1, 2)
        assert not diff.identical
        rendered = diff.render()
        assert "v1 -> v2" in rendered
        # repr-level rendering must expose the bit-level change that %g
        # formatting would hide.
        event = entries[0].event_names[0]
        assert event in rendered

    def test_diff_missing_version_raises(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path)
        stored = store.put(entries[0])
        with pytest.raises(KeyError):
            store.diff(stored.arch, stored.metric, stored.config_digest, 1, 9)

    def test_identical_versions_diff_identical(self, entries):
        diff = diff_entries(entries[0], entries[0])
        assert diff.identical
        assert "identical" in diff.render()

    def test_list_entries_summarizes(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path)
        for entry in entries:
            store.put(entry)
        rows = store.list_entries()
        assert len(rows) == len(entries)
        assert {r["metric"] for r in rows} == {e.metric for e in entries}
        assert all(r["latest_version"] == 1 for r in rows)

    def test_counters(self, tmp_path, entries):
        store = MetricCatalogStore(tmp_path)
        with obs.tracing(seed=0) as tracer:
            stored = store.put(entries[0])
            store.put(entries[0])  # dedup
            store.latest(stored.arch, stored.metric, stored.config_digest)
            store.latest(stored.arch, "absent", stored.config_digest)
        assert tracer.counters["catalog.stores"] == 1
        assert tracer.counters["catalog.dedup"] == 1
        assert tracer.counters["catalog.hits"] >= 1
        assert tracer.counters["catalog.misses"] == 1


class TestEventDigests:
    """Per-event dependency tracking on catalog entries."""

    @pytest.fixture(scope="class")
    def tracked(self, node, result):
        deps = node.events.select(domains=("branch",)).event_digests()
        return entries_from_result(
            result,
            arch=node.name,
            seed=7,
            events_digest=event_set_digest(node.events),
            event_digests=deps,
        )

    def test_payload_round_trip(self, tracked):
        for entry in tracked:
            assert entry.event_digests
            back = CatalogEntry.from_payload(
                json.loads(json.dumps(entry.to_payload()))
            )
            assert back == entry
            assert back.event_digests == entry.event_digests

    def test_empty_map_keeps_legacy_content_digest(self, entries):
        """Adding the (empty) field must not change the content digest
        of pre-tracking entries — stored catalogs keep deduping."""
        import dataclasses

        entry = entries[0]
        assert entry.event_digests == {}
        payload = entry.to_payload()
        # The payload carries the field, but the content digest drops it
        # when empty, so a legacy payload (no field at all) digests the
        # same.
        legacy = dict(payload)
        legacy.pop("event_digests")
        legacy_entry = CatalogEntry.from_payload(legacy)
        assert legacy_entry.content_digest() == entry.content_digest()
        tracked = dataclasses.replace(entry, event_digests={"E": "abc"})
        assert tracked.content_digest() != entry.content_digest()

    def test_fine_grained_freshness(self, tmp_path, node, tracked):
        store = MetricCatalogStore(tmp_path)
        stored = store.put(tracked[0])
        deps = node.events.select(domains=("branch",)).event_digests()

        # Exact dependency match: fresh.
        assert (
            store.latest(
                stored.arch,
                stored.metric,
                stored.config_digest,
                events_digest="whole-registry-digest-changed",
                event_digests=deps,
            )
            is not None
        )

        # One dependent event's digest drifts: stale.
        drifted = dict(deps)
        drifted[next(iter(drifted))] = "0" * 16
        with obs.tracing(seed=0) as tracer:
            assert (
                store.latest(
                    stored.arch,
                    stored.metric,
                    stored.config_digest,
                    event_digests=drifted,
                )
                is None
            )
            assert tracer.counters["catalog.invalidated"] == 1

        # An added dependency (new event in the measured slice): stale.
        grown = dict(deps)
        grown["NEW_EVENT"] = "f" * 16
        assert (
            store.latest(
                stored.arch,
                stored.metric,
                stored.config_digest,
                event_digests=grown,
            )
            is None
        )

    def test_legacy_entry_falls_back_to_coarse_check(
        self, tmp_path, entries, node
    ):
        """An entry without a dependency map is checked against the
        whole-registry digest even when fine-grained digests are given."""
        store = MetricCatalogStore(tmp_path)
        stored = store.put(entries[0])  # event_digests == {}
        deps = node.events.select(domains=("branch",)).event_digests()
        assert (
            store.latest(
                stored.arch,
                stored.metric,
                stored.config_digest,
                events_digest=stored.events_digest,
                event_digests=deps,
            )
            is not None
        )
        assert (
            store.latest(
                stored.arch,
                stored.metric,
                stored.config_digest,
                events_digest="different-registry",
                event_digests=deps,
            )
            is None
        )


class TestPartialRefreshDiff:
    """``catalog diff`` semantics across a partial refresh: only the
    invalidated (arch, metric) entries gain versions; untouched entries
    keep identical content digests (satellite for the refresh engine)."""

    def test_partial_refresh_versions_only_invalidated_entries(
        self, tmp_path, node
    ):
        from repro.incr import RegistryEdit, apply_edits, refresh_catalog
        from repro.io.cache import MeasurementCache

        cache = MeasurementCache(max_memory_entries=4096)
        store = MetricCatalogStore(tmp_path)
        domains = ("cpu_flops", "branch")
        built = refresh_catalog(store, node, domains, cache=cache)
        before = {
            (d, m): entry.content_digest()
            for (d, m), entry in built.entries.items()
        }

        # Edit one FLOPS event: only cpu_flops' slice depends on it.
        target = next(
            e.full_name for e in node.events if e.domain == "flops"
        )
        edited = apply_edits(
            node.events,
            [RegistryEdit(action="scale-response", event=target, factor=1.3)],
        )
        report = refresh_catalog(
            store, node, domains, registry=edited, cache=cache
        )
        assert report.stale_domains == ["cpu_flops"]

        for (domain, metric), entry in report.entries.items():
            history = store.history(
                entry.arch, entry.metric, entry.config_digest
            )
            if domain == "cpu_flops":
                # Invalidated: a second version appended, and the diff
                # between v1 and v2 names real field drift.
                assert [e.version for e in history] == [1, 2]
                diff = store.diff(
                    entry.arch, entry.metric, entry.config_digest, 1, 2
                )
                assert not diff.identical
                assert "v1 -> v2" in diff.render()
            else:
                # Untouched: still the single original version with the
                # identical content digest.
                assert [e.version for e in history] == [1]
                assert (
                    history[0].content_digest() == before[(domain, metric)]
                )
