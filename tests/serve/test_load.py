"""Tests for the closed-loop load harness.

The cheap tests pin the deterministic machinery — workload streams,
percentile maths, response classification — without any server; the
drill tests actually serve: one single-process tier (in-process
asyncio) and one sharded multi-process tier (real spawn workers, the
slow path), both judged against the invariant.
"""

import subprocess
import sys
import time

import pytest

from repro import obs
from repro.serve import LoadStep, Workload, latency_percentile, run_load_drill
from repro.serve.chaos import definition_digest
from repro.serve.load import LoadStepReport, RequestSpec, _classify
from repro.serve.service import ServiceBusy, ServiceError, TransportError


class TestWorkload:
    def test_streams_are_deterministic(self):
        workload = Workload(clients=3, requests_per_client=5, hot_fraction=0.5)
        names = {("aurora", "branch"): ["Mispredicted Branches."]}
        for client in range(3):
            assert workload.client_stream(client, names) == workload.client_stream(
                client, names
            )
        # Distinct clients draw distinct streams (same rendezvous head).
        streams = [workload.client_stream(c, names) for c in range(3)]
        assert len({tuple(s) for s in streams}) > 1
        heads = {s[0] for s in streams}
        assert heads == {RequestSpec("analyze", "aurora", "branch", seed=2024)}

    def test_universe_covers_every_possible_request(self):
        workload = Workload(
            clients=4, requests_per_client=8, seed_pool=3, hot_fraction=0.4
        )
        universe = set(workload.universe())
        names = {("aurora", "branch"): ["Mispredicted Branches."]}
        for client in range(workload.clients):
            for spec in workload.client_stream(client, names):
                assert (spec.system, spec.domain, spec.seed) in universe

    def test_unique_seeds_never_repeat_an_analysis(self):
        workload = Workload(clients=3, requests_per_client=4, unique_seeds=True)
        seeds = [
            spec.seed
            for client in range(3)
            for spec in workload.client_stream(client, {})
        ]
        assert len(seeds) == len(set(seeds)) == 12
        assert len(workload.universe()) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(pairs=())
        with pytest.raises(ValueError):
            Workload(clients=0)
        with pytest.raises(ValueError):
            Workload(hot_fraction=1.5)
        with pytest.raises(ValueError):
            Workload(seed_pool=0)


class TestLoadStep:
    def test_open_loop_needs_a_rate(self):
        with pytest.raises(ValueError):
            LoadStep("open")
        with pytest.raises(ValueError):
            LoadStep("open", offered_rps=0)
        with pytest.raises(ValueError):
            LoadStep("sideways")
        assert LoadStep("open", offered_rps=4.0).label() == "open@4rps"
        assert LoadStep("closed").label() == "closed"


class TestLatencyPercentile:
    def test_nearest_rank(self):
        samples = [i / 1000 for i in range(1, 101)]
        assert latency_percentile(samples, 50) == pytest.approx(0.050)
        assert latency_percentile(samples, 99) == pytest.approx(0.099)
        assert latency_percentile(samples, 100) == pytest.approx(0.100)
        assert latency_percentile([0.007], 99) == pytest.approx(0.007)
        assert latency_percentile([], 50) == 0.0

    def test_rejects_bad_quantiles(self):
        with pytest.raises(ValueError):
            latency_percentile([1.0], 0)
        with pytest.raises(ValueError):
            latency_percentile([1.0], 101)


class TestClassification:
    """The invariant, case by case, with no server in the loop."""

    def _spec(self, kind="analyze", metric=None):
        return RequestSpec(kind, "aurora", "branch", seed=7, metric=metric)

    def test_identical_stale_and_mismatch(self):
        payload = {"metric": "M", "coefficients_hex": ["0x1"]}
        baseline = {("aurora", "branch", 7): {"M": definition_digest(payload)}}
        report = LoadStepReport(step=LoadStep("closed"))
        with obs.tracing(seed=7) as tracer:
            _classify(report, self._spec(), "analyze", {"M": payload}, baseline)
            _classify(
                report,
                self._spec(),
                "analyze",
                {"M": {**payload, "stale": True}},
                baseline,
            )
            _classify(
                report,
                self._spec(),
                "analyze",
                {"M": {"metric": "M", "coefficients_hex": ["0x2"]}},
                baseline,
            )
            assert (report.identical, report.stale) == (1, 1)
            assert len(report.violations) == 1
            assert "definition digest" in report.violations[0]
            assert tracer.counters["load.requests"] == 3
            assert tracer.counters["load.violations"] == 1

    def test_metric_reads_classify_like_analyses(self):
        payload = {"metric": "M", "coefficients_hex": ["0x1"]}
        baseline = {("aurora", "branch", 7): {"M": definition_digest(payload)}}
        report = LoadStepReport(step=LoadStep("closed"))
        _classify(
            report, self._spec("metric", metric="M"), "metric", payload, baseline
        )
        assert report.identical == 1 and not report.violations

    def test_typed_rejections_are_within_contract(self):
        report = LoadStepReport(step=LoadStep("closed"))
        _classify(report, self._spec(), "error", ServiceBusy(16), {})
        _classify(
            report,
            self._spec(),
            "error",
            ServiceError(503, {"error": "shard down", "retry": True}),
            {},
        )
        _classify(
            report, self._spec(), "error", TransportError("refused", None), {}
        )
        assert report.rejected == 3 and report.transport_rejected == 1
        assert not report.violations

    def test_untyped_errors_are_violations(self):
        report = LoadStepReport(step=LoadStep("closed"))
        _classify(report, self._spec(), "error", RuntimeError("boom"), {})
        _classify(
            report, self._spec(), "error", ServiceError(500, {"oops": 1}), {}
        )
        assert report.rejected == 0
        assert len(report.violations) == 2


class TestRunLoadDrillValidation:
    def test_bad_target_and_missing_root(self):
        with pytest.raises(ValueError, match="target"):
            run_load_drill(target="tripled")
        with pytest.raises(ValueError, match="catalog_root"):
            run_load_drill(target="sharded")
        with pytest.raises(ValueError, match="LoadStep"):
            run_load_drill(target="single", steps=())


class TestSingleTierDrill:
    def test_invariant_holds_and_percentiles_populate(self, tmp_path):
        workload = Workload(
            clients=3, requests_per_client=4, seed_pool=2, hot_fraction=0.5
        )
        with obs.tracing(seed=7) as tracer:
            report = run_load_drill(
                str(tmp_path / "catalog"),
                target="single",
                workload=workload,
                steps=(LoadStep("closed"), LoadStep("open", offered_rps=30.0)),
                cache_dir=str(tmp_path / "cache"),
            )
            assert report.ok, report.violations
            assert report.requests == 24
            assert tracer.counters["load.requests"] == 24
            assert tracer.counters["load.identical"] >= 1
        assert len(report.steps) == 2
        for step in report.steps:
            assert step.requests == 12
            assert step.rejected == 0
            assert 0 < step.p50_ms <= step.p95_ms <= step.p99_ms
            assert step.achieved_rps > 0
            row = step.to_row()
            assert row["violations"] == 0 and row["p99_ms"] >= row["p50_ms"]
        # The open-loop step was rate-limited, so it took at least its
        # schedule's span.
        open_step = report.steps[1]
        assert open_step.duration_seconds >= (12 - 1) / 30.0
        # Coalescing at the rendezvous: 3 clients, one computation.
        assert report.coalesced >= 1
        assert "load drill [single]" in report.summary()


class TestShardedTierDrill:
    def test_invariant_and_affinity_over_real_workers(self, tmp_path):
        """The expensive end-to-end: real spawn workers over real shard
        directories, judged request by request against the baseline."""
        workload = Workload(
            clients=3, requests_per_client=4, seed_pool=2, hot_fraction=0.5
        )
        with obs.tracing(seed=7) as tracer:
            report = run_load_drill(
                str(tmp_path / "catalog"),
                target="sharded",
                workers=2,
                shards=2,
                workload=workload,
                steps=(LoadStep("closed"),),
                cache_dir=str(tmp_path / "cache"),
            )
            assert report.ok, report.violations
            assert report.requests == 12
            # Shard-affinity routing actually routed: every request has
            # a catalog key, so every dispatch had a preferred worker.
            assert tracer.counters["shard.affinity_hits"] >= 1
        status = report.supervisor_status
        assert status is not None and status["live"] == 2
        # Hot keyed reads were answered by the dispatcher's replica-
        # fronted catalog view without a worker hop.
        assert status["front_serves"] >= 1
        # The rendezvous coalesced on the owning worker.
        assert report.coalesced >= 1
        # The drill's writes landed in shard directories.
        assert (tmp_path / "catalog" / "shards.json").exists()
        shard_dirs = [
            p for p in (tmp_path / "catalog").iterdir() if p.is_dir()
        ]
        assert len(shard_dirs) == 2


class TestServeEphemeralPort:
    def test_port_zero_prints_bound_port_on_stdout(self, tmp_path):
        """`repro-cat serve --port 0` must print the chosen port as the
        first stdout line so a harness can connect without racing for a
        fixed port (satellite S2)."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stdout.readline().strip()
            port = int(line)  # first line is the port, nothing else
            assert 1024 <= port <= 65535
            from repro.serve import CatalogClient

            deadline = time.time() + 10
            while True:
                try:
                    assert CatalogClient(port=port, timeout=5.0).ready()
                    break
                except Exception:
                    if time.time() > deadline:
                        raise
                    time.sleep(0.1)
        finally:
            proc.terminate()
            proc.wait(timeout=10)
