"""Tests for the HTTP front-end and the blocking CatalogClient.

The server runs on an ephemeral localhost port inside the test's event
loop; the blocking client is driven through ``run_in_executor`` so one
loop hosts both sides.
"""

import asyncio
import functools
import json

import pytest

from repro.serve import (
    CatalogClient,
    HttpMetricServer,
    MetricCatalogStore,
    MetricService,
    ServiceError,
)

METRIC = "Mispredicted Branches."


async def _with_server(body, **service_kwargs):
    """Start service+listener, run ``body(client, server)``, stop."""
    service = MetricService(**service_kwargs)
    server = HttpMetricServer(service, port=0)
    port = await server.start()
    loop = asyncio.get_running_loop()
    client = CatalogClient(port=port)

    def call(fn, *args, **kwargs):
        return loop.run_in_executor(None, functools.partial(fn, *args, **kwargs))

    try:
        return await body(client, call, server)
    finally:
        await server.stop()


def run_async(coro):
    return asyncio.run(coro)


class TestEndpoints:
    def test_health_and_ready(self, tmp_path):
        async def body(client, call, server):
            health = await call(client.health)
            assert health["ready"] is True
            assert await call(client.ready) is True

        run_async(_with_server(body, cache_dir=str(tmp_path / "cache")))

    def test_metric_and_analyze_round_trip(self, tmp_path):
        async def body(client, call, server):
            payload = await call(
                client.metric, "aurora", "branch", METRIC, seed=7
            )
            assert payload["source"] == "pipeline"
            assert payload["metric"] == METRIC
            assert payload["version"] == 1
            # The hex coefficient encoding survives the HTTP round trip
            # bit-exactly.
            from repro.serve.catalog import CatalogEntry

            entry = CatalogEntry.from_payload(
                {k: v for k, v in payload.items() if k != "source"}
            )
            assert entry.definition().coefficients.dtype == "float64"

            everything = await call(client.analyze, "aurora", "branch", seed=7)
            assert METRIC in everything
            assert everything[METRIC]["source"] == "catalog"

        run_async(
            _with_server(
                body,
                store=MetricCatalogStore(tmp_path / "catalog"),
                cache_dir=str(tmp_path / "cache"),
            )
        )

    def test_catalog_endpoints(self, tmp_path):
        async def body(client, call, server):
            await call(client.analyze, "aurora", "branch", seed=7)
            rows = await call(client.catalog_list)
            assert rows and all(r["latest_version"] == 1 for r in rows)
            entry = await call(
                client.catalog_entry, rows[0]["arch"], rows[0]["metric"]
            )
            assert entry["version"] == 1
            filtered = await call(client.catalog_list, rows[0]["arch"])
            assert filtered == rows

        run_async(
            _with_server(
                body,
                store=MetricCatalogStore(tmp_path / "catalog"),
                cache_dir=str(tmp_path / "cache"),
            )
        )


class TestErrorMapping:
    def test_unknown_route_is_404(self, tmp_path):
        async def body(client, call, server):
            with pytest.raises(ServiceError) as err:
                await call(client._request, "GET", "/nope")
            assert err.value.status == 404

        run_async(_with_server(body, cache_dir=str(tmp_path / "cache")))

    def test_validation_error_is_400(self, tmp_path):
        async def body(client, call, server):
            with pytest.raises(ServiceError) as err:
                await call(client.metric, "cray", "branch", METRIC)
            assert err.value.status == 400
            assert "unknown system" in err.value.payload["error"]

        run_async(_with_server(body, cache_dir=str(tmp_path / "cache")))

    def test_injected_crash_is_structured_500(self, tmp_path):
        async def body(client, call, server):
            with pytest.raises(ServiceError) as err:
                await call(
                    client.metric,
                    "aurora",
                    "branch",
                    METRIC,
                    seed=7,
                    faults="crash=1.0",
                )
            assert err.value.status == 500
            assert err.value.payload["error_type"] == "InjectedWorkerCrash"

        run_async(
            _with_server(body, retries=0, cache_dir=str(tmp_path / "cache"))
        )

    def test_catalog_on_storeless_service_is_404(self, tmp_path):
        async def body(client, call, server):
            with pytest.raises(ServiceError) as err:
                await call(client.catalog_list)
            assert err.value.status == 404

        run_async(_with_server(body, cache_dir=str(tmp_path / "cache")))

    def test_malformed_analyze_body_is_400(self, tmp_path):
        async def body(client, call, server):
            with pytest.raises(ServiceError) as err:
                await call(client._request, "POST", "/v1/analyze", {"system": "aurora"})
            assert err.value.status == 400

            import http.client

            def raw_junk():
                conn = http.client.HTTPConnection(
                    client.host, client.port, timeout=10
                )
                try:
                    conn.request(
                        "POST",
                        "/v1/analyze",
                        body=b"not json",
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    return response.status, json.loads(response.read().decode())
                finally:
                    conn.close()

            status, payload = await call(raw_junk)
            assert status == 400
            assert "not JSON" in payload["error"]

        run_async(_with_server(body, cache_dir=str(tmp_path / "cache")))

    def test_wrong_method_is_405(self, tmp_path):
        async def body(client, call, server):
            with pytest.raises(ServiceError) as err:
                await call(client._request, "GET", "/v1/analyze")
            assert err.value.status == 405

        run_async(_with_server(body, cache_dir=str(tmp_path / "cache")))
