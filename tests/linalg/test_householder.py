"""Unit and property tests for the Householder QR machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg import (
    HouseholderQR,
    apply_householder,
    householder_vector,
    qr_decompose,
)


def _matrices(min_rows=1, max_rows=12, min_cols=1, max_cols=8):
    """Strategy producing well-scaled float matrices with m >= n."""

    def build(draw):
        n = draw(st.integers(min_cols, max_cols))
        m = draw(st.integers(max(min_rows, n), max_rows))
        return draw(
            hnp.arrays(
                np.float64,
                (m, n),
                elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
            )
        )

    return st.composite(lambda draw: build(draw))()


class TestHouseholderVector:
    def test_annihilates_tail(self):
        x = np.array([3.0, 4.0, 0.0, 12.0])
        v, beta, alpha = householder_vector(x)
        y = x.copy().reshape(-1, 1)
        apply_householder(y, v, beta)
        y = y.ravel()
        assert np.allclose(y[1:], 0.0, atol=1e-12)
        assert np.isclose(abs(y[0]), np.linalg.norm(x))
        assert np.isclose(y[0], alpha)

    def test_zero_vector_gives_identity_reflector(self):
        v, beta, alpha = householder_vector(np.zeros(4))
        assert beta == 0.0
        assert alpha == 0.0

    def test_already_aligned_vector(self):
        # x = (a, 0, ..., 0) with a < 0 needs no reflection beyond sign.
        x = np.array([-5.0, 0.0, 0.0])
        v, beta, alpha = householder_vector(x)
        y = x.reshape(-1, 1).copy()
        apply_householder(y, v, beta)
        assert np.allclose(y.ravel()[1:], 0.0)
        assert np.isclose(abs(y.ravel()[0]), 5.0)

    def test_sign_convention_avoids_cancellation(self):
        # alpha must have the opposite sign of x[0].
        x = np.array([1.0, 1e-8])
        _, _, alpha = householder_vector(x)
        assert alpha < 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            householder_vector(np.zeros(0))

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            householder_vector(np.zeros((2, 2)))

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 20),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        )
    )
    def test_reflector_is_orthogonal(self, x):
        v, beta, _ = householder_vector(x)
        n = x.size
        h = np.eye(n) - beta * np.outer(v, v)
        assert np.allclose(h @ h.T, np.eye(n), atol=1e-10)

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 20),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        )
    )
    def test_reflection_preserves_norm(self, x):
        v, beta, alpha = householder_vector(x)
        y = x.reshape(-1, 1).copy()
        apply_householder(y, v, beta)
        assert np.isclose(np.linalg.norm(y), np.linalg.norm(x), rtol=1e-10)


class TestQRDecompose:
    def test_identity(self):
        q, r = qr_decompose(np.eye(4))
        assert np.allclose(q @ r, np.eye(4))
        assert np.allclose(np.abs(np.diag(r)), 1.0)

    def test_reconstruction_square(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(6, 6))
        q, r = qr_decompose(a)
        assert np.allclose(q @ r, a, atol=1e-12)
        assert np.allclose(q.T @ q, np.eye(6), atol=1e-12)
        assert np.allclose(r, np.triu(r))

    def test_reconstruction_tall(self):
        rng = np.random.default_rng(8)
        a = rng.normal(size=(15, 4))
        q, r = qr_decompose(a)
        assert q.shape == (15, 4)
        assert r.shape == (4, 4)
        assert np.allclose(q @ r, a, atol=1e-12)

    def test_full_mode(self):
        rng = np.random.default_rng(9)
        a = rng.normal(size=(7, 3))
        q, r = qr_decompose(a, economy=False)
        assert q.shape == (7, 7)
        assert r.shape == (7, 3)
        assert np.allclose(q @ r, a, atol=1e-12)
        assert np.allclose(q.T @ q, np.eye(7), atol=1e-12)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            qr_decompose(np.zeros((2, 5)))

    def test_rank_deficient_zero_diagonal(self):
        a = np.column_stack([np.ones(5), 2 * np.ones(5), np.arange(5.0)])
        q, r = qr_decompose(a)
        assert np.allclose(q @ r, a, atol=1e-12)
        # Second column is a multiple of the first -> tiny second pivot.
        assert abs(r[1, 1]) < 1e-12

    @settings(max_examples=60)
    @given(_matrices())
    def test_property_reconstruction(self, a):
        q, r = qr_decompose(a)
        assert np.allclose(q @ r, a, atol=1e-8 * max(1.0, np.abs(a).max()))

    @settings(max_examples=60)
    @given(_matrices())
    def test_property_r_upper_triangular(self, a):
        _, r = qr_decompose(a)
        assert np.allclose(r, np.triu(r))


class TestHouseholderQRIncremental:
    def test_stepwise_matches_oneshot(self):
        rng = np.random.default_rng(11)
        a = rng.normal(size=(8, 5))
        fact = HouseholderQR(a)
        for _ in range(5):
            fact.step()
        r_inc = fact.r_factor()[:5, :]
        _, r_ref = qr_decompose(a)
        # R is unique up to row signs.
        assert np.allclose(np.abs(r_inc), np.abs(r_ref), atol=1e-12)

    def test_swap_columns(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        fact = HouseholderQR(a)
        fact.swap_columns(0, 1)
        assert np.allclose(fact.a, [[2.0, 1.0], [4.0, 3.0]])
        fact.swap_columns(1, 1)  # no-op
        assert np.allclose(fact.a, [[2.0, 1.0], [4.0, 3.0]])

    def test_trailing_norms_shrink_for_dependent_columns(self):
        # Column 1 is 3x column 0: after one step its residual vanishes.
        base = np.array([1.0, 2.0, -1.0, 0.5])
        a = np.column_stack([base, 3 * base, np.array([0.0, 1.0, 0.0, 0.0])])
        fact = HouseholderQR(a)
        fact.step()
        norms = fact.trailing_column_norms()
        assert norms[0] < 1e-12  # the dependent column
        assert norms[1] > 0.1  # the independent one

    def test_apply_qt_consistency(self):
        rng = np.random.default_rng(13)
        a = rng.normal(size=(9, 4))
        b = rng.normal(size=9)
        fact = HouseholderQR(a)
        for _ in range(4):
            fact.step()
        q, _ = qr_decompose(a, economy=False)
        assert np.allclose(fact.apply_qt(b), q.T @ b, atol=1e-12)

    def test_step_past_completion_raises(self):
        fact = HouseholderQR(np.eye(2))
        fact.step()
        fact.step()
        with pytest.raises(RuntimeError):
            fact.step()

    def test_does_not_mutate_input(self):
        a = np.ones((3, 3))
        snapshot = a.copy()
        fact = HouseholderQR(a)
        fact.step()
        assert np.array_equal(a, snapshot)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            HouseholderQR(np.ones(3))
