"""Tests for the QR-based least-squares solver and Equation-5 backward error."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import backward_error, lstsq_qr


class TestLstsqQR:
    def test_exact_square_system(self):
        a = np.array([[2.0, 0.0], [0.0, 3.0]])
        res = lstsq_qr(a, np.array([4.0, 9.0]))
        assert np.allclose(res.x, [2.0, 3.0])
        assert res.residual_norm < 1e-12
        assert res.backward_error < 1e-12
        assert res.rank == 2

    def test_overdetermined_matches_numpy(self):
        rng = np.random.default_rng(42)
        a = rng.normal(size=(20, 6))
        b = rng.normal(size=20)
        res = lstsq_qr(a, b)
        ref = np.linalg.lstsq(a, b, rcond=None)[0]
        assert np.allclose(res.x, ref, atol=1e-10)

    def test_residual_orthogonal_to_range(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(10, 3))
        b = rng.normal(size=10)
        res = lstsq_qr(a, b)
        r = a @ res.x - b
        assert np.allclose(a.T @ r, 0.0, atol=1e-10)

    def test_rank_deficient_minimizes_residual(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=(12, 3))
        a = np.column_stack([base[:, 0], 2 * base[:, 0], base[:, 1], base[:, 2]])
        b = rng.normal(size=12)
        res = lstsq_qr(a, b)
        ref = np.linalg.norm(a @ np.linalg.lstsq(a, b, rcond=None)[0] - b)
        assert res.rank == 3
        assert np.isclose(res.residual_norm, ref, rtol=1e-10)

    def test_zero_matrix_yields_zero_solution(self):
        a = np.zeros((5, 2))
        b = np.ones(5)
        res = lstsq_qr(a, b)
        assert np.allclose(res.x, 0.0)
        assert res.rank == 0
        assert np.isclose(res.residual_norm, np.sqrt(5.0))

    def test_zero_rhs(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(6, 2))
        res = lstsq_qr(a, np.zeros(6))
        assert np.allclose(res.x, 0.0, atol=1e-12)
        assert res.relative_residual == 0.0

    def test_empty_columns(self):
        res = lstsq_qr(np.zeros((4, 0)), np.ones(4))
        assert res.x.shape == (0,)
        assert res.backward_error == 1.0

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError):
            lstsq_qr(np.ones((2, 5)), np.ones(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lstsq_qr(np.ones((4, 2)), np.ones(3))

    def test_signature_outside_span_has_backward_error_one(self):
        # The paper's uncomposable-metric certificate (Table VII, last row):
        # when the target is orthogonal to every event column, the solution
        # is ~0 and the backward error is exactly 1.
        a = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        s = np.array([1.0, 0.0, 0.0])
        res = lstsq_qr(a, s)
        assert np.allclose(res.x, 0.0, atol=1e-12)
        assert np.isclose(res.backward_error, 1.0)

    @settings(max_examples=50)
    @given(st.integers(0, 10_000))
    def test_property_matches_numpy_random(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 15))
        n = int(rng.integers(1, m + 1))
        a = rng.normal(size=(m, n))
        b = rng.normal(size=m)
        res = lstsq_qr(a, b)
        ref = np.linalg.lstsq(a, b, rcond=None)[0]
        assert np.allclose(res.x, ref, atol=1e-8)

    @settings(max_examples=50)
    @given(st.integers(0, 10_000))
    def test_property_residual_is_minimal(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(8, 3))
        b = rng.normal(size=8)
        res = lstsq_qr(a, b)
        # Perturbing the solution can only increase the residual.
        for _ in range(5):
            perturbed = res.x + rng.normal(scale=0.1, size=3)
            assert np.linalg.norm(a @ perturbed - b) >= res.residual_norm - 1e-12


class TestBackwardError:
    def test_zero_residual(self):
        a = np.eye(3)
        y = np.array([1.0, 2.0, 3.0])
        assert backward_error(a, y, y) == 0.0

    def test_all_zero_inputs(self):
        assert backward_error(np.zeros((2, 2)), np.zeros(2), np.zeros(2)) == 0.0

    def test_bounded_by_one_for_lstsq_solutions(self):
        rng = np.random.default_rng(5)
        for seed in range(10):
            rng = np.random.default_rng(seed)
            a = rng.normal(size=(6, 2))
            b = rng.normal(size=6)
            res = lstsq_qr(a, b)
            assert 0.0 <= res.backward_error <= 1.0 + 1e-12

    def test_matches_paper_fma_fingerprint(self):
        # Reconstructs Table V's FMA rows analytically: four orthogonal
        # event columns each equal to e_k + 2 e_{k+FMA}; target signature is
        # 2 on the FMA dimensions.  Least squares gives coefficients 0.8 and
        # backward error 2.36e-1.
        e = np.zeros((8, 4))
        for k in range(4):
            e[k, k] = 1.0
            e[4 + k, k] = 2.0
        s = np.zeros(8)
        s[4:] = 2.0
        res = lstsq_qr(e, s)
        assert np.allclose(res.x, 0.8)
        assert np.isclose(res.backward_error, 0.236, atol=5e-4)
