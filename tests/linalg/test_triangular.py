"""Tests for the substitution solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import solve_lower, solve_upper


def _well_conditioned_triangular(draw, lower):
    n = draw(st.integers(1, 8))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    a = rng.uniform(-2.0, 2.0, size=(n, n))
    a = np.tril(a) if lower else np.triu(a)
    # Push the diagonal away from zero so the system is well conditioned.
    diag_sign = np.where(np.diag(a) >= 0, 1.0, -1.0)
    a[np.diag_indices(n)] = diag_sign * (np.abs(np.diag(a)) + 1.0)
    x = rng.uniform(-5.0, 5.0, size=n)
    return a, x


class TestSolveUpper:
    def test_identity(self):
        b = np.array([1.0, -2.0, 3.0])
        assert np.allclose(solve_upper(np.eye(3), b), b)

    def test_known_system(self):
        r = np.array([[2.0, 1.0], [0.0, 4.0]])
        x = solve_upper(r, np.array([5.0, 8.0]))
        assert np.allclose(x, [1.5, 2.0])

    def test_matrix_rhs(self):
        r = np.triu(np.array([[3.0, 1.0, 2.0], [0.0, 2.0, -1.0], [0.0, 0.0, 5.0]]))
        b = np.array([[1.0, 0.0], [0.0, 1.0], [5.0, 10.0]])
        x = solve_upper(r, b)
        assert np.allclose(r @ x, b)
        assert x.shape == (3, 2)

    def test_ignores_lower_entries(self):
        r = np.array([[2.0, 1.0], [99.0, 4.0]])
        x = solve_upper(r, np.array([5.0, 8.0]))
        assert np.allclose(x, [1.5, 2.0])

    def test_singular_raises(self):
        r = np.array([[1.0, 2.0], [0.0, 0.0]])
        with pytest.raises(np.linalg.LinAlgError):
            solve_upper(r, np.ones(2))

    def test_tolerance_rejects_tiny_diagonal(self):
        r = np.array([[1.0, 0.0], [0.0, 1e-15]])
        with pytest.raises(np.linalg.LinAlgError):
            solve_upper(r, np.ones(2), tol=1e-12)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            solve_upper(np.zeros((2, 3)), np.ones(2))

    @settings(max_examples=60)
    @given(st.data())
    def test_property_roundtrip(self, data):
        r, x = _well_conditioned_triangular(data.draw, lower=False)
        assert np.allclose(solve_upper(r, r @ x), x, atol=1e-8)


class TestSolveLower:
    def test_known_system(self):
        l = np.array([[2.0, 0.0], [1.0, 4.0]])
        x = solve_lower(l, np.array([4.0, 10.0]))
        assert np.allclose(x, [2.0, 2.0])

    def test_singular_raises(self):
        l = np.array([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(np.linalg.LinAlgError):
            solve_lower(l, np.ones(2))

    def test_matrix_rhs_shape(self):
        l = np.eye(3) * 2.0
        b = np.ones((3, 4))
        assert solve_lower(l, b).shape == (3, 4)

    @settings(max_examples=60)
    @given(st.data())
    def test_property_roundtrip(self, data):
        l, x = _well_conditioned_triangular(data.draw, lower=True)
        assert np.allclose(solve_lower(l, l @ x), x, atol=1e-8)

    @settings(max_examples=30)
    @given(st.data())
    def test_property_transpose_duality(self, data):
        # solve_lower(L, b) == solve_upper(L.T, b) for symmetric use.
        l, x = _well_conditioned_triangular(data.draw, lower=True)
        b = l @ x
        assert np.allclose(solve_lower(l, b), solve_upper(l.T, l.T @ solve_lower(l, b)), atol=1e-8)
