"""Tests for rank-one QR column updates (``repro.linalg.updates``)."""

import numpy as np
import pytest

from repro.guard import GuardConfig
from repro.linalg.householder import qr_decompose
from repro.linalg.lstsq import lstsq_qr
from repro.linalg.updates import UpdatableQR, givens_rotation
from repro.obs import tracing

RNG = np.random.default_rng(42)


def _random(m, n, rng=RNG):
    return rng.standard_normal((m, n))


def _assert_valid_factorization(qr, a_expected, tol=1e-11):
    """Q orthogonal, R upper triangular, Q @ R == tracked matrix == A."""
    m, n = qr.m, qr.n
    np.testing.assert_allclose(qr.q @ qr.q.T, np.eye(m), atol=tol)
    np.testing.assert_allclose(
        qr.r[:n, :], np.triu(qr.r[:n, :]), atol=tol
    )
    np.testing.assert_allclose(qr.r[n:, :], 0.0, atol=tol)
    np.testing.assert_allclose(qr.q @ qr.r, a_expected, atol=tol)
    np.testing.assert_allclose(qr.a, a_expected, atol=0)


class TestGivens:
    def test_zeroes_second_component(self):
        for a, b in [(3.0, 4.0), (-1.0, 2.0), (5.0, 0.0), (0.0, 7.0)]:
            c, s = givens_rotation(a, b)
            assert abs(-s * a + c * b) < 1e-14
            assert abs(c * c + s * s - 1.0) < 1e-14

    def test_identity_for_zero_b(self):
        assert givens_rotation(2.5, 0.0) == (1.0, 0.0)


class TestColumnEdits:
    @pytest.mark.parametrize("j", [0, 3, 7])
    def test_insert(self, j):
        a = _random(12, 7)
        col = RNG.standard_normal(12)
        qr = UpdatableQR(a)
        qr.insert_column(j, col)
        _assert_valid_factorization(qr, np.insert(a, j, col, axis=1))
        assert qr.updates == 1

    @pytest.mark.parametrize("j", [0, 4, 6])
    def test_delete(self, j):
        a = _random(12, 7)
        qr = UpdatableQR(a)
        qr.delete_column(j)
        _assert_valid_factorization(qr, np.delete(a, j, axis=1))

    @pytest.mark.parametrize("j", [0, 2, 6])
    def test_replace(self, j):
        a = _random(12, 7)
        col = RNG.standard_normal(12)
        qr = UpdatableQR(a)
        qr.replace_column(j, col)
        expected = a.copy()
        expected[:, j] = col
        _assert_valid_factorization(qr, expected)
        assert qr.updates == 1  # replace is one logical edit

    def test_many_sequential_edits_stay_consistent(self):
        rng = np.random.default_rng(7)
        a = _random(16, 6, rng)
        qr = UpdatableQR(a)
        tracked = a.copy()
        for step in range(12):
            op = step % 3
            if op == 0 and qr.n < 10:
                j = int(rng.integers(0, qr.n + 1))
                col = rng.standard_normal(16)
                qr.insert_column(j, col)
                tracked = np.insert(tracked, j, col, axis=1)
            elif op == 1 and qr.n > 2:
                j = int(rng.integers(0, qr.n))
                qr.delete_column(j)
                tracked = np.delete(tracked, j, axis=1)
            else:
                j = int(rng.integers(0, qr.n))
                col = rng.standard_normal(16)
                qr.replace_column(j, col)
                tracked[:, j] = col
        _assert_valid_factorization(qr, tracked, tol=1e-10)

    def test_update_counter(self):
        with tracing(seed=0) as tracer:
            qr = UpdatableQR(_random(8, 4))
            qr.insert_column(0, RNG.standard_normal(8))
            qr.delete_column(0)
            qr.replace_column(1, RNG.standard_normal(8))
            assert qr.updates == 3
            assert tracer.counters.get("incr.qr_updates") == 3


class TestValidation:
    def test_rejects_wide_matrix(self):
        with pytest.raises(ValueError):
            UpdatableQR(_random(3, 5))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            UpdatableQR(np.ones(4))

    def test_insert_cannot_make_wide(self):
        qr = UpdatableQR(_random(4, 4))
        with pytest.raises(ValueError):
            qr.insert_column(0, np.ones(4))

    def test_insert_position_bounds(self):
        qr = UpdatableQR(_random(8, 3))
        with pytest.raises(IndexError):
            qr.insert_column(5, np.ones(8))

    def test_delete_position_bounds(self):
        qr = UpdatableQR(_random(8, 3))
        with pytest.raises(IndexError):
            qr.delete_column(3)

    def test_column_shape_mismatch(self):
        qr = UpdatableQR(_random(8, 3))
        with pytest.raises(ValueError):
            qr.insert_column(0, np.ones(5))

    def test_rhs_shape_mismatch(self):
        qr = UpdatableQR(_random(8, 3))
        with pytest.raises(ValueError):
            qr.lstsq(np.ones(5))


class TestSolve:
    def test_matches_lstsq_qr_after_update(self):
        a = _random(20, 8)
        b = RNG.standard_normal(20)
        col = RNG.standard_normal(20)
        qr = UpdatableQR(a)
        qr.replace_column(3, col)
        edited = a.copy()
        edited[:, 3] = col
        mine = qr.lstsq(b)
        ref = lstsq_qr(edited, b)
        np.testing.assert_allclose(mine.x, ref.x, rtol=1e-9, atol=1e-12)
        assert mine.rank == ref.rank

    def test_pristine_solve_not_stamped(self):
        a = _random(10, 4)
        qr = UpdatableQR(a)
        result = qr.lstsq(RNG.standard_normal(10), guard=GuardConfig())
        assert "incr-rank-one-update" not in result.health.guards_fired

    def test_updated_solve_is_stamped(self):
        qr = UpdatableQR(_random(10, 4))
        qr.replace_column(1, RNG.standard_normal(10))
        result = qr.lstsq(RNG.standard_normal(10), guard=GuardConfig())
        assert "incr-rank-one-update" in result.health.guards_fired

    def test_guard_fallback_bit_identical(self):
        """Replacing a column with a near-duplicate of another fires the
        conditioning sentinel; the solve must re-factorize and match the
        from-scratch guarded answer exactly."""
        a = _random(16, 5)
        b = RNG.standard_normal(16)
        near_dup = a[:, 0] * (1.0 + 1e-14)
        qr = UpdatableQR(a)
        qr.replace_column(4, near_dup)
        edited = a.copy()
        edited[:, 4] = near_dup
        guard = GuardConfig()
        with tracing(seed=0) as tracer:
            mine = qr.lstsq(b, guard=guard)
            ref = lstsq_qr(edited, b, guard=guard)
            assert "incr-refactorized" in mine.health.guards_fired
            assert tracer.counters.get("incr.qr_fallbacks") == 1
        # Bit-identical to the non-incremental path (not just close).
        assert mine.x.tobytes() == ref.x.tobytes()
        assert mine.backward_error == ref.backward_error
        assert mine.rank == ref.rank

    def test_economy_vs_full_equivalence(self):
        """The explicit full-Q factorization agrees with the economy one
        on the leading block (up to the sign/column conventions both
        share, since they come from the same Householder core)."""
        a = _random(12, 5)
        q_full, r_full = qr_decompose(a, economy=False)
        qr = UpdatableQR(a)
        np.testing.assert_allclose(qr.q, q_full, atol=0)
        np.testing.assert_allclose(qr.r, r_full, atol=0)
