"""Tests for norms and the Equation-5 backward-error helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg.norms import (
    backward_error,
    column_norms,
    frobenius_norm,
    spectral_norm,
    vector_norm,
)


class TestVectorNorm:
    def test_pythagorean(self):
        assert vector_norm(np.array([3.0, 4.0])) == 5.0

    def test_zero(self):
        assert vector_norm(np.zeros(7)) == 0.0

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 30),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        )
    )
    def test_matches_numpy(self, x):
        assert np.isclose(vector_norm(x), np.linalg.norm(x), rtol=1e-12, atol=1e-300)


class TestColumnNorms:
    def test_known(self):
        a = np.array([[3.0, 0.0], [4.0, 2.0]])
        assert np.allclose(column_norms(a), [5.0, 2.0])

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            column_norms(np.ones(3))

    def test_empty_columns(self):
        assert column_norms(np.zeros((3, 0))).shape == (0,)


class TestMatrixNorms:
    def test_frobenius_known(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        assert np.isclose(frobenius_norm(a), 5.0)

    def test_spectral_of_diagonal(self):
        assert np.isclose(spectral_norm(np.diag([1.0, -7.0, 3.0])), 7.0)

    def test_spectral_empty(self):
        assert spectral_norm(np.zeros((0, 3))) == 0.0

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_spectral_le_frobenius(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(5, 4))
        assert spectral_norm(a) <= frobenius_norm(a) + 1e-12

    @settings(max_examples=40)
    @given(st.integers(0, 10_000))
    def test_spectral_is_operator_norm(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(6, 3))
        s = spectral_norm(a)
        for _ in range(5):
            x = rng.normal(size=3)
            assert np.linalg.norm(a @ x) <= s * np.linalg.norm(x) + 1e-10


class TestBackwardErrorHelper:
    def test_exact_solution_is_zero(self):
        a = np.array([[1.0, 0.0], [0.0, 2.0], [0.0, 0.0]])
        y = np.array([3.0, 0.5])
        s = a @ y
        assert backward_error(a, y, s) < 1e-15

    def test_scale_invariance(self):
        # Scaling A, y, s together by c leaves the backward error unchanged.
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 2))
        y = rng.normal(size=2)
        s = rng.normal(size=5)
        e1 = backward_error(a, y, s)
        e2 = backward_error(10.0 * a, y, 10.0 * s)
        assert np.isclose(e1, e2, rtol=1e-10)

    def test_zero_solution_against_nonzero_signature(self):
        a = np.ones((3, 1))
        assert np.isclose(backward_error(a, np.zeros(1), np.array([0.0, 1.0, 0.0])), 1.0)
