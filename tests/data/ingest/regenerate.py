"""Regenerate the checked-in ingestion fixture corpus.

Run from the repository root::

    PYTHONPATH=src python tests/data/ingest/regenerate.py

The corpus is *derived from the simulator* (the repository's bit-exact
ground truth) and then dressed in real collector clothing: the Sapphire
Rapids corpus becomes ``perf stat`` files (interval CSV, plain ``-x,``
CSV, and a human-format baseline/sample) under perf's own event
spellings, the Zen 3 corpus becomes one PAPI/CAT CSV matrix under PAPI
preset names.  Deriving from the simulator is what makes the
ingested-vs-simulated equivalence test meaningful: modulo the corpus's
deliberate degradations, ingesting these files must reproduce the
simulator's measurement bit-for-bit.

Deliberate degradations (each one exercises a documented ingest path):

* ``branch-misses`` reports a 75.00% multiplex percentage (values
  untouched — perf had already scaled them): the column is exact,
  survives the tau filter, gets selected by QRCP, and must drag the
  ``degraded`` flag onto every metric that composes it.
* ``br_inst_retired.near_taken`` reports 62.50%: an exact multiplexed
  column QRCP does *not* select — the flag is recorded but no metric is
  degraded by it.
* ``baclears.any`` reports 50.00%: a noisy column the tau filter drops,
  proving a flag alone does not doom a column — the filter does.
* ``br_inst_retired.cond_ntaken`` is ``<not counted>`` for every
  repetition of the ``k03_always_taken`` row (a zero-true-count cell,
  so the typed zero keeps the column exact and composable — the
  accountability test's subject).
* ``int_misc.clear_resteer_cycles`` is ``<not supported>`` everywhere:
  an all-zero column the zero-discard stage removes.
* ``cpu_custom.unknown_event`` / ``amd_custom.unknown_event`` map to
  nothing and must land in the unmapped report.
* The SPR baseline run adds +0.25 to events where the addition is
  exactly invertible in float64 (asserted below), so baseline
  subtraction restores the simulator values bit-for-bit.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro.cat import BenchmarkRunner, BranchBenchmark
from repro.hardware.systems import aurora_node, frontier_cpu_node
from repro.ingest.model import (
    QUALITY_MULTIPLEXED,
    QUALITY_NOT_COUNTED,
    QUALITY_NOT_SUPPORTED,
    QUALITY_OK,
    CounterReading,
    CounterSample,
)
from repro.ingest.papi import PapiMatrix, PapiRecord, serialize_papi_csv
from repro.ingest.perf import serialize_samples

HERE = Path(__file__).parent
SEED = 2024
REPS = 3
BASELINE_OFFSET = 0.25

# -- Sapphire Rapids perf corpus ----------------------------------------
# (collector spelling, registry full name, multiplex pct or None)
SPR_GROUP_A = [
    ("branches", "BR_INST_RETIRED:ALL_BRANCHES", None),
    ("br_inst_retired.cond", "BR_INST_RETIRED:COND", None),
    ("br_inst_retired.cond_taken", "BR_INST_RETIRED:COND_TAKEN", None),
    ("br_inst_retired.near_taken", "BR_INST_RETIRED:NEAR_TAKEN", 62.50),
    ("branch-misses", "BR_MISP_RETIRED", 75.00),
    ("cpu_custom.unknown_event", None, None),  # deliberately unmapped
]
SPR_GROUP_B = [
    ("br_inst_retired.cond_ntaken", "BR_INST_RETIRED:COND_NTAKEN", None),
    ("br_inst_retired.far_branch", "BR_INST_RETIRED:FAR_BRANCH", None),
    ("br_misp_retired.cond", "BR_MISP_RETIRED:COND", None),
    ("baclears.any", "BACLEARS:ANY", 50.00),
    ("int_misc.clear_resteer_cycles", "INT_MISC:CLEAR_RESTEER_CYCLES", None),
]
#: (row, collector event) cells reported as <not counted>.
SPR_NOT_COUNTED = {("k03_always_taken", "br_inst_retired.cond_ntaken")}
#: Collector events reported as <not supported> everywhere.
SPR_NOT_SUPPORTED = {"int_misc.clear_resteer_cycles"}

# -- Zen 3 PAPI corpus --------------------------------------------------
ZEN3_EVENTS = [
    ("PAPI_BR_INS", "EX_RET_BRN"),
    ("ex_ret_brn_tkn", "EX_RET_BRN_TKN"),
    ("PAPI_BR_MSP", "EX_RET_BRN_MISP"),
    ("ex_ret_cond", "EX_RET_COND"),
    ("amd_custom.unknown_event", None),  # deliberately unmapped
]
ZEN3_NOT_COUNTED = {("k10_unconditional", "PAPI_BR_MSP")}


def _measure(node, registry_names):
    registry = node.events.select(
        predicate=lambda e: e.full_name in set(registry_names)
    )
    got = set(registry.full_names)
    missing = [n for n in registry_names if n not in got]
    if missing:
        raise SystemExit(f"registry lacks fixture events: {missing}")
    runner = BenchmarkRunner(node, repetitions=REPS)
    measurement = runner.run(BranchBenchmark(), events=registry)
    assert measurement.data.shape[1] == 1, "branch benchmark is single-threaded"
    return measurement


def _cell(measurement, rep, row, event):
    r = measurement.row_labels.index(row)
    e = measurement.event_names.index(event)
    return float(measurement.data[rep, 0, r, e])


def _spr_reading(measurement, rep, row, collector, registry_name, pct):
    if collector in SPR_NOT_SUPPORTED:
        return CounterReading(collector, 0.0, QUALITY_NOT_SUPPORTED)
    if (row, collector) in SPR_NOT_COUNTED:
        return CounterReading(collector, 0.0, QUALITY_NOT_COUNTED)
    value = _cell(measurement, rep, row, registry_name)
    if collector in _spr_baseline_events(measurement):
        value += BASELINE_OFFSET
    if pct is not None:
        return CounterReading(collector, value, QUALITY_MULTIPLEXED, scale_pct=pct)
    return CounterReading(collector, value, QUALITY_OK, scale_pct=100.0)


_baseline_cache = None


def _spr_baseline_events(measurement):
    """Collector events whose +0.25 baseline offset is exactly invertible
    for every cell (and that the degradations leave fully 'ok')."""
    global _baseline_cache
    if _baseline_cache is not None:
        return _baseline_cache
    chosen = set()
    for collector, registry_name, pct in SPR_GROUP_A + SPR_GROUP_B:
        if registry_name is None or pct is not None:
            continue
        if collector in SPR_NOT_SUPPORTED:
            continue
        if any(c == collector for _, c in SPR_NOT_COUNTED):
            continue
        e = measurement.event_names.index(registry_name)
        cells = measurement.data[:, 0, :, e]
        if np.all((cells + BASELINE_OFFSET) - BASELINE_OFFSET == cells):
            chosen.add(collector)
    if not chosen:
        raise SystemExit("no event qualifies for exact baseline calibration")
    _baseline_cache = chosen
    return chosen


def _assert_zero_truth(measurement, not_counted, table):
    """The <not counted> cells must sit where the true count is exactly
    zero — the typed zero then *equals* the measurement, the column stays
    bit-exact through the noise filter, and the accountability test gets
    a flagged column that genuinely composes."""
    registry_for = {c: n for c, n, *_ in table if n is not None}
    for row, collector in not_counted:
        for rep in range(REPS):
            value = _cell(measurement, rep, row, registry_for[collector])
            if value != 0.0:
                raise SystemExit(
                    f"fixture design violated: {collector} at {row} "
                    f"rep {rep} is {value!r}, not 0.0"
                )


def write_spr(corpus: Path) -> None:
    names = [n for _, n, _ in SPR_GROUP_A + SPR_GROUP_B if n is not None]
    measurement = _measure(aurora_node(seed=SEED), names)
    _assert_zero_truth(measurement, SPR_NOT_COUNTED, SPR_GROUP_A + SPR_GROUP_B)
    rows = measurement.row_labels
    (corpus / "groupA").mkdir(parents=True, exist_ok=True)
    (corpus / "groupB").mkdir(parents=True, exist_ok=True)

    manifest_rows = {}
    for row in rows:
        # Group A: one interval-mode file per row, one interval per rep.
        samples = []
        for rep in range(REPS):
            sample = CounterSample(
                source=row, format="perf-interval", interval=float(rep + 1)
            )
            for collector, registry_name, pct in SPR_GROUP_A:
                if registry_name is None:
                    sample.readings.append(
                        CounterReading(collector, 7.0, QUALITY_OK, scale_pct=100.0)
                    )
                    continue
                sample.readings.append(
                    _spr_reading(measurement, rep, row, collector, registry_name, pct)
                )
            samples.append(sample)
        a_path = corpus / "groupA" / f"{row}.csv"
        a_path.write_text(serialize_samples("perf-interval", samples))

        # Group B: k01 ships as three single-shot -x, files (exercising
        # per-repetition file concatenation); every other row as one
        # interval file.
        b_files = []
        b_samples = []
        for rep in range(REPS):
            sample = CounterSample(
                source=row, format="perf-csv", interval=float(rep + 1)
            )
            for collector, registry_name, pct in SPR_GROUP_B:
                sample.readings.append(
                    _spr_reading(measurement, rep, row, collector, registry_name, pct)
                )
            b_samples.append(sample)
        if row == "k01_alternating":
            for rep, sample in enumerate(b_samples):
                sample.interval = None
                path = corpus / "groupB" / f"{row}_r{rep}.csv"
                path.write_text(serialize_samples("perf-csv", [sample]))
                b_files.append(f"groupB/{path.name}")
        else:
            for sample in b_samples:
                sample.format = "perf-interval"
            path = corpus / "groupB" / f"{row}.csv"
            path.write_text(serialize_samples("perf-interval", b_samples))
            b_files.append(f"groupB/{path.name}")
        manifest_rows[row] = [[f"groupA/{row}.csv"], b_files]

    # Baseline: a human-format calibration run reporting the fixed +0.25
    # harness overhead for the exactly-invertible events.
    baseline = CounterSample(source="baseline", format="perf-human")
    for collector in sorted(_spr_baseline_events(measurement)):
        baseline.readings.append(
            CounterReading(collector, BASELINE_OFFSET, QUALITY_OK)
        )
    (corpus / "baseline.txt").write_text(
        serialize_samples("perf-human", [baseline])
    )

    # A standalone human-format sample (k01, repetition 0) for the
    # parse-only CLI paths; not referenced by the manifest.
    human = CounterSample(source="sample", format="perf-human")
    for collector, registry_name, pct in SPR_GROUP_A + SPR_GROUP_B:
        if registry_name is None:
            human.readings.append(CounterReading(collector, 7.0, QUALITY_OK))
            continue
        reading = _spr_reading(
            measurement, 0, "k01_alternating", collector, registry_name, pct
        )
        human.readings.append(reading)
    (corpus / "sample_human.txt").write_text(
        serialize_samples("perf-human", [human])
    )

    manifest = {
        "collector": "perf",
        "uarch": "sapphire_rapids",
        "domain": "branch",
        "arch": "spr-ingest",
        "rows": manifest_rows,
        "baseline": ["baseline.txt"],
    }
    (corpus / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )


def write_zen3(corpus: Path) -> None:
    names = [n for _, n in ZEN3_EVENTS if n is not None]
    measurement = _measure(frontier_cpu_node(seed=SEED), names)
    _assert_zero_truth(measurement, ZEN3_NOT_COUNTED, ZEN3_EVENTS)
    corpus.mkdir(parents=True, exist_ok=True)
    collector_names = tuple(c for c, _ in ZEN3_EVENTS)
    records = []
    for row in measurement.row_labels:
        for rep in range(REPS):
            sample = CounterSample(source="matrix.csv", format="papi-csv")
            for collector, registry_name in ZEN3_EVENTS:
                if registry_name is None:
                    sample.readings.append(CounterReading(collector, 3.0))
                    continue
                if (row, collector) in ZEN3_NOT_COUNTED:
                    sample.readings.append(
                        CounterReading(collector, 0.0, QUALITY_NOT_COUNTED)
                    )
                    continue
                sample.readings.append(
                    CounterReading(
                        collector, _cell(measurement, rep, row, registry_name)
                    )
                )
            records.append(PapiRecord(row=row, repetition=rep, sample=sample))
    matrix = PapiMatrix(
        source="matrix.csv", event_names=collector_names, records=records
    )
    (corpus / "matrix.csv").write_text(serialize_papi_csv(matrix))
    manifest = {
        "collector": "papi",
        "uarch": "zen3",
        "domain": "branch",
        "arch": "zen3-ingest",
        "matrix": "matrix.csv",
    }
    (corpus / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )


def main() -> int:
    write_spr(HERE / "spr_branch")
    write_zen3(HERE / "zen3_branch")
    print(f"fixture corpus regenerated under {HERE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
