"""Leave-one-kernel-out certification: stable fits certify, fragile ones
degrade, and uninformative folds are skipped — not failed."""

import numpy as np
import pytest

from repro.guard import GuardConfig, TrustScore, certify_metric
from repro.linalg import lstsq_qr

# A well-conditioned 6x2 expectation basis: every dimension witnessed by
# several kernels, so no holdout is degenerate.
BASIS = np.array(
    [
        [1.0, 0.0],
        [0.0, 1.0],
        [1.0, 1.0],
        [1.0, -1.0],
        [2.0, 1.0],
        [1.0, 2.0],
    ]
)
#: Event representations (exact): two independent directions.
W = np.array([[1.0, 0.25], [0.5, 1.0]])
COORDS = np.array([1.0, 1.0])
EVENTS = ["EV_A", "EV_B"]


def _full_fit(e, m_sel, coords, rcond=None):
    x_hat = np.column_stack(
        [lstsq_qr(e, m_sel[:, j], rcond=rcond).x for j in range(m_sel.shape[1])]
    )
    fit = lstsq_qr(x_hat, coords, rcond=rcond)
    return fit.x, fit.backward_error


class TestCertified:
    def test_exact_data_certifies(self):
        m_sel = BASIS @ W
        y, err = _full_fit(BASIS, m_sel, COORDS)
        trust = certify_metric(
            "m", BASIS, m_sel, COORDS, EVENTS, y, err
        )
        assert trust.level == "certified"
        assert trust.certified
        assert trust.reasons == ()
        assert trust.n_holdouts == BASIS.shape[0]
        assert trust.n_skipped == 0
        assert trust.coefficient_spread == pytest.approx(0.0, abs=1e-9)

    def test_empty_selection_is_vacuously_certified(self):
        trust = certify_metric(
            "m",
            BASIS,
            np.zeros((6, 0)),
            COORDS,
            [],
            np.zeros(0),
            1.0,
        )
        assert trust.level == "certified"
        assert trust.n_holdouts == 0


class TestDegradation:
    def _noisy(self):
        rng = np.random.default_rng(11)
        m_sel = BASIS @ W + 0.05 * rng.standard_normal((6, 2))
        y, err = _full_fit(BASIS, m_sel, COORDS)
        return m_sel, y, err

    def test_tight_tolerance_yields_caution(self):
        m_sel, y, err = self._noisy()
        config = GuardConfig(certify_coeff_tol=1e-12, reject_coeff_tol=1e6)
        trust = certify_metric(
            "m", BASIS, m_sel, COORDS, EVENTS, y, err, config=config
        )
        assert trust.level == "caution"
        assert any("coefficient spread" in r for r in trust.reasons)
        assert trust.suspect_events  # the unstable events are named

    def test_reject_threshold(self):
        m_sel, y, err = self._noisy()
        config = GuardConfig(
            certify_coeff_tol=1e-12, reject_coeff_tol=1e-12
        )
        trust = certify_metric(
            "m", BASIS, m_sel, COORDS, EVENTS, y, err, config=config
        )
        assert trust.level == "reject"
        assert any("does not survive recalibration" in r for r in trust.reasons)

    def test_nonfinite_fit_is_rejected(self):
        trust = certify_metric(
            "m",
            BASIS,
            BASIS @ W,
            COORDS,
            EVENTS,
            np.array([np.nan, 1.0]),
            0.0,
        )
        assert trust.level == "reject"
        assert "non-finite" in trust.reasons[0]
        assert trust.suspect_events == tuple(EVENTS)

    def test_upstream_guard_caps_at_caution(self):
        m_sel = BASIS @ W
        y, err = _full_fit(BASIS, m_sel, COORDS)
        trust = certify_metric(
            "m",
            BASIS,
            m_sel,
            COORDS,
            EVENTS,
            y,
            err,
            guards_fired=("column-scaling",),
        )
        assert trust.level == "caution"
        assert any("column-scaling" in r for r in trust.reasons)

    def test_degraded_selection_caps_at_caution(self):
        m_sel = BASIS @ W
        y, err = _full_fit(BASIS, m_sel, COORDS)
        trust = certify_metric(
            "m", BASIS, m_sel, COORDS, EVENTS, y, err, degraded=True
        )
        assert trust.level == "caution"
        assert any("fault-degraded" in r for r in trust.reasons)


class TestIdentifiabilitySkips:
    def test_sole_witness_fold_is_skipped_not_failed(self):
        # Kernel row 2 is the only witness of dimension 1: holding it out
        # collapses the basis, so that fold carries no stability evidence.
        e = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        w = np.array([[1.0], [1.0]])
        m_sel = e @ w
        y, err = _full_fit(e, m_sel, COORDS)
        trust = certify_metric("m", e, m_sel, COORDS, ["EV_A"], y, err)
        assert trust.level == "certified"
        assert trust.n_holdouts == 2
        assert trust.n_skipped == 1

    def test_no_informative_fold_is_caution(self):
        # Every kernel row measures the same direction: the full basis is
        # already rank-deficient and every fold stays so.
        e = np.array([[1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        m_sel = np.array([[1.0], [2.0], [3.0]])
        trust = certify_metric(
            "m", e, m_sel, COORDS, ["EV_A"], np.array([1.0]), 0.0
        )
        assert trust.level == "caution"
        assert trust.n_holdouts == 0
        assert trust.n_skipped == 3
        assert any("rank-deficient" in r for r in trust.reasons)

    def test_too_few_rows_to_hold_out(self):
        e = np.eye(2)
        trust = certify_metric(
            "m",
            e,
            np.ones((2, 1)),
            np.ones(2),
            ["EV_A"],
            np.array([1.0]),
            0.0,
        )
        assert trust.level == "caution"
        assert any("cannot cross-validate" in r for r in trust.reasons)


class TestTrustScore:
    def test_describe(self):
        assert TrustScore(level="certified").describe() == "certified"
        stamped = TrustScore(level="caution", reasons=("a", "b"))
        assert stamped.describe() == "caution (a; b)"
