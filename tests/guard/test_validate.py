"""Boundary validators: accept the valid, reject the malformed with a reason."""

import numpy as np
import pytest

from repro.guard import ValidationError
from repro.guard.validate import (
    require_finite,
    require_fraction,
    require_in,
    require_int,
    require_matrix,
    require_monotone,
    require_nonempty,
    require_positive,
    require_vector,
)


class TestRequireFinite:
    def test_passes_through_finite(self):
        a = np.arange(6.0).reshape(2, 3)
        out = require_finite(a, "a")
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, a)

    def test_names_offender_coordinates(self):
        a = np.zeros((2, 3))
        a[1, 2] = np.nan
        with pytest.raises(ValidationError, match=r"\(1, 2\)"):
            require_finite(a, "readings")

    def test_counts_and_elides_many_offenders(self):
        a = np.full(10, np.inf)
        with pytest.raises(ValidationError, match=r"10 non-finite.*\+7 more"):
            require_finite(a, "readings")

    def test_context_prefixes_message(self):
        with pytest.raises(ValidationError, match=r"^pipeline\[x\]: "):
            require_finite(np.array([np.nan]), "m", context="pipeline[x]")

    def test_message_is_actionable(self):
        with pytest.raises(ValidationError, match="scrub or re-measure"):
            require_finite(np.array([np.nan]), "m")


class TestRequireMatrix:
    def test_accepts_lists(self):
        out = require_matrix([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="2-D matrix"):
            require_matrix(np.zeros(3), "m")

    def test_enforces_minimum_shape(self):
        with pytest.raises(ValidationError, match="at least 3 row"):
            require_matrix(np.zeros((2, 2)), "m", min_rows=3)
        with pytest.raises(ValidationError, match="at least 4 column"):
            require_matrix(np.zeros((5, 2)), "m", min_cols=4)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="not numeric"):
            require_matrix([["a", "b"]], "m")

    def test_finite_check_optional(self):
        a = np.array([[np.nan]])
        with pytest.raises(ValidationError):
            require_matrix(a, "m")
        out = require_matrix(a, "m", finite=False)
        assert np.isnan(out[0, 0])


class TestRequireVector:
    def test_length_enforced(self):
        with pytest.raises(ValidationError, match="length 3"):
            require_vector([1.0, 2.0], "v", length=3)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="1-D vector"):
            require_vector(np.zeros((2, 2)), "v")


class TestScalars:
    def test_positive(self):
        assert require_positive(2.5, "tau") == 2.5
        for bad in (0, -1.0, float("nan"), float("inf"), "x"):
            with pytest.raises(ValidationError):
                require_positive(bad, "tau")

    def test_int_rejects_bool_and_floats(self):
        assert require_int(3, "seed") == 3
        for bad in (True, 3.0, "3"):
            with pytest.raises(ValidationError):
                require_int(bad, "seed")

    def test_int_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            require_int(1, "repetitions", minimum=2)

    def test_fraction(self):
        assert require_fraction(1.0, "quorum") == 1.0
        for bad in (0.0, 1.5, -0.2):
            with pytest.raises(ValidationError):
                require_fraction(bad, "quorum")


class TestSequences:
    def test_nonempty(self):
        assert require_nonempty([1], "events") == [1]
        with pytest.raises(ValidationError, match="must not be empty"):
            require_nonempty([], "events")

    def test_monotone_strict_names_inversion(self):
        with pytest.raises(ValidationError, match=r"entry 2 \(2\) does not follow 3"):
            require_monotone([1, 3, 2], "loop_sizes")

    def test_monotone_weak_allows_plateaus(self):
        out = require_monotone([1, 1, 2], "sizes", strict=False)
        np.testing.assert_array_equal(out, [1, 1, 2])
        with pytest.raises(ValidationError):
            require_monotone([1, 1, 2], "sizes", strict=True)

    def test_in_lists_alternatives(self):
        assert require_in("a", ("a", "b"), "mode") == "a"
        with pytest.raises(ValidationError, match=r"'a'.*'b'"):
            require_in("c", ("a", "b"), "mode")


class TestErrorHierarchy:
    def test_validation_error_is_value_error(self):
        # Callers already catching ValueError keep working.
        assert issubclass(ValidationError, ValueError)
