"""Conditioning sentinels: the estimates are tight, deterministic, cheap."""

import numpy as np
import pytest

from repro.guard import GuardConfig, NumericalHealth
from repro.guard.health import estimate_condition, triangular_health


class TestEstimateCondition:
    def test_diagonal_matrix_is_exact(self):
        r = np.diag([10.0, 1.0, 0.1])
        assert estimate_condition(r) == pytest.approx(100.0)

    def test_refinement_tightens_loose_diagonal_bound(self):
        # cond_2([[1, 100], [0, 1]]) ~ 1e4 but the diagonal ratio is 1:
        # the power-iteration sweeps must recover the hidden conditioning.
        r = np.array([[1.0, 100.0], [0.0, 1.0]])
        true = np.linalg.cond(r)
        base = estimate_condition(r, refine_iterations=0)
        refined = estimate_condition(r, refine_iterations=6)
        assert base == pytest.approx(1.0)
        assert refined == pytest.approx(true, rel=0.05)

    def test_never_exceeds_reality_by_much_on_random_triangles(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            r = np.triu(rng.standard_normal((5, 5)))
            est = estimate_condition(r, refine_iterations=8)
            true = np.linalg.cond(r)
            # A lower-bound-style estimate: within the true condition
            # number (small slack for the estimate's own rounding) and
            # not pathologically below it after refinement.
            assert est <= true * 1.01
            assert est >= true * 0.1

    def test_zero_diagonal_is_infinite(self):
        r = np.array([[1.0, 2.0], [0.0, 0.0]])
        assert estimate_condition(r) == np.inf

    def test_empty_factor(self):
        assert estimate_condition(np.zeros((0, 0))) == 1.0

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        r = np.triu(rng.standard_normal((6, 6)))
        assert estimate_condition(r) == estimate_condition(r)


class TestTriangularHealth:
    def test_rank_gap_names_the_tail_columns(self):
        r = np.diag([1.0, 0.5, 1e-9])
        health = triangular_health(r)
        assert health.rank_gap == pytest.approx(0.5 / 1e-9)
        assert health.suspect_columns == (2,)

    def test_healthy_factor_has_no_suspects(self):
        r = np.diag([2.0, 1.0, 0.5])
        health = triangular_health(r)
        assert health.suspect_columns == ()
        assert health.guards_fired == ()

    def test_pivot_growth(self):
        original = np.array([[1.0, 0.0], [0.0, 1.0]])
        r = np.array([[8.0, 0.0], [0.0, 1.0]])
        health = triangular_health(r, original=original)
        assert health.pivot_growth == pytest.approx(8.0)

    def test_empty(self):
        health = triangular_health(np.zeros((0, 0)))
        assert health.condition_estimate == 1.0
        assert health.rank_gap == 1.0


class TestOkThresholds:
    def test_below_thresholds(self):
        config = GuardConfig(condition_threshold=1e8, rank_gap_threshold=1e6)
        assert NumericalHealth(condition_estimate=1e7, rank_gap=1e5).ok(config)

    def test_condition_crossing(self):
        config = GuardConfig(condition_threshold=1e8)
        assert not NumericalHealth(condition_estimate=1e9).ok(config)

    def test_rank_gap_crossing(self):
        config = GuardConfig(rank_gap_threshold=1e6)
        assert not NumericalHealth(
            condition_estimate=10.0, rank_gap=1e7
        ).ok(config)

    def test_describe_mentions_guards(self):
        health = NumericalHealth(
            condition_estimate=1e9,
            guards_fired=("column-scaling", "iterative-refinement-float64"),
        )
        text = health.describe()
        assert "cond~1.00e+09" in text
        assert "column-scaling -> iterative-refinement-float64" in text


class TestGuardConfigValidation:
    def test_rejects_unity_thresholds(self):
        with pytest.raises(ValueError, match="thresholds must be > 1"):
            GuardConfig(condition_threshold=1.0)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError, match=">= 0"):
            GuardConfig(refine_iterations=-1)

    def test_rejects_inverted_certify_tols(self):
        with pytest.raises(ValueError, match="certify_coeff_tol"):
            GuardConfig(certify_coeff_tol=0.9, reject_coeff_tol=0.5)

    def test_rejects_single_holdout(self):
        with pytest.raises(ValueError, match="certify_holdouts"):
            GuardConfig(certify_holdouts=1)
