"""Property tests for the guard's two core contracts.

1. **Zero-rate contract**: on well-conditioned data every sentinel stays
   below its threshold, so a guarded factorization/solve is *bit-identical*
   to an unguarded one — the guard is pure observation.
2. **Scaling equivariance**: once the guard fires, the column-equilibrated
   re-pivot makes the specialized QRCP's pivot order invariant under
   per-column rescaling.  Power-of-two scalings make this exact: the
   normalized working matrix is bit-identical, hence so is the pivot walk.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qrcp import qrcp_specialized, qrcp_standard
from repro.guard import GuardConfig
from repro.linalg import default_rcond, lstsq_qr

#: A guard whose thresholds no finite-precision matrix can cross.
SLEEPING_GUARD = GuardConfig(condition_threshold=1e300, rank_gap_threshold=1e300)
#: A guard that fires on anything with measurable conditioning, forcing
#: the equilibrated re-pivot path on every input.
HAIR_TRIGGER = GuardConfig(condition_threshold=1.000001, rank_gap_threshold=1e300)


def _random_matrix(seed: int, m_lo: int = 4, m_hi: int = 12) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = int(rng.integers(m_lo, m_hi))
    n = int(rng.integers(2, m + 1))
    return rng.normal(size=(m, n))


class TestZeroRateContract:
    """Guarded == unguarded, bit for bit, on healthy inputs."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_qrcp_specialized_bit_identical(self, seed):
        x = _random_matrix(seed)
        plain = qrcp_specialized(x, alpha=1e-6)
        for guard in (SLEEPING_GUARD, GuardConfig(enabled=False)):
            guarded = qrcp_specialized(x, alpha=1e-6, guard=guard)
            np.testing.assert_array_equal(guarded.permutation, plain.permutation)
            assert guarded.rank == plain.rank
            np.testing.assert_array_equal(guarded.r_factor, plain.r_factor)
            if guard.enabled:
                assert guarded.health is not None
                assert guarded.health.guards_fired == ()
            else:
                assert guarded.health is None

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_qrcp_standard_bit_identical(self, seed):
        x = _random_matrix(seed)
        plain = qrcp_standard(x)
        guarded = qrcp_standard(x, guard=SLEEPING_GUARD)
        np.testing.assert_array_equal(guarded.permutation, plain.permutation)
        np.testing.assert_array_equal(guarded.r_factor, plain.r_factor)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_lstsq_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(10, 4))
        b = rng.normal(size=10)
        plain = lstsq_qr(a, b)
        for guard in (SLEEPING_GUARD, GuardConfig(enabled=False)):
            guarded = lstsq_qr(a, b, guard=guard)
            np.testing.assert_array_equal(guarded.x, plain.x)
            assert guarded.residual_norm == plain.residual_norm
            assert guarded.backward_error == plain.backward_error
            assert guarded.rank == plain.rank


class TestScalingEquivariance:
    """Pivot order under the fired guard is invariant to column scaling."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.lists(st.integers(-8, 8), min_size=12, max_size=12),
    )
    def test_pivot_order_invariant_under_pow2_scaling(self, seed, exponents):
        x = _random_matrix(seed, m_lo=5, m_hi=9)
        n = x.shape[1]
        scales = np.array([2.0 ** e for e in exponents[:n]])
        base = qrcp_specialized(x, alpha=1e-6, guard=HAIR_TRIGGER)
        scaled = qrcp_specialized(x * scales, alpha=1e-6, guard=HAIR_TRIGGER)
        # Only compare when the hair-trigger actually fired on both runs
        # (an essentially orthogonal draw can legitimately stay below even
        # a threshold of 1 + 1e-6).
        if (
            base.health is None
            or "qrcp-column-scaled-repivot" not in base.health.guards_fired
            or scaled.health is None
            or "qrcp-column-scaled-repivot" not in scaled.health.guards_fired
        ):
            return
        assert scaled.rank == base.rank
        np.testing.assert_array_equal(
            scaled.permutation[: scaled.rank], base.permutation[: base.rank]
        )

    def test_hair_trigger_fires_on_generic_matrix(self):
        # Guards the property above against becoming vacuous: on a generic
        # draw the hair-trigger must actually fire.
        x = _random_matrix(1234)
        result = qrcp_specialized(x, alpha=1e-6, guard=HAIR_TRIGGER)
        assert result.health is not None
        assert "qrcp-column-scaled-repivot" in result.health.guards_fired


class TestFallbackLadder:
    def test_ladder_fires_and_never_hurts(self):
        # A Läuchli-style near-collinear system: the classic conditioning
        # trap.  The guarded solve must record its ladder and end with a
        # backward error no worse than the unguarded one.
        eps = 1e-9
        a = np.array(
            [
                [1.0, 1.0],
                [eps, 0.0],
                [0.0, eps],
            ]
        )
        b = np.array([2.0, eps, eps])
        plain = lstsq_qr(a, b)
        guarded = lstsq_qr(a, b, guard=GuardConfig(condition_threshold=1e3))
        assert guarded.health is not None
        assert "column-scaling" in guarded.health.guards_fired
        assert "iterative-refinement-float64" in guarded.health.guards_fired
        assert "iterative-refinement-longdouble" in guarded.health.guards_fired
        assert guarded.backward_error <= plain.backward_error + 1e-15
        assert np.allclose(guarded.x, [1.0, 1.0], atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_guarded_solution_never_worse(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(8, 3))
        # Manufacture ill-conditioning: make a column a near-copy.
        a[:, 2] = a[:, 1] * (1.0 + 1e-10)
        b = rng.normal(size=8)
        plain = lstsq_qr(a, b)
        guarded = lstsq_qr(a, b, guard=GuardConfig(condition_threshold=1e4))
        assert guarded.backward_error <= plain.backward_error + 1e-12


class TestDefaultRcond:
    def test_lapack_convention(self):
        eps = float(np.finfo(np.float64).eps)
        assert default_rcond(10, 4) == 10 * eps
        assert default_rcond(3, 7) == 7 * eps

    def test_rank_decision_scales_with_problem(self):
        # diag(R) = [1, 1e-13]: kept under the LAPACK default (~2e-15 for
        # a 2x2), truncated under the old hardcoded 1e-12.
        a = np.diag([1.0, 1e-13])
        b = np.array([1.0, 1e-13])
        assert lstsq_qr(a, b).rank == 2
        assert lstsq_qr(a, b, rcond=1e-12).rank == 1
