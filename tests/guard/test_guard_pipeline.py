"""The guard layer through the full pipeline: bit-identical on healthy
data, certifying every default metric, validating at the boundary, and
coherent under rank-deficient event registries."""

import numpy as np
import pytest

from repro.core.pipeline import AnalysisPipeline, PipelineConfig
from repro.core.report import render_report
from repro.core.stability import selection_stability
from repro.guard import GuardConfig, ValidationError
from repro.hardware.systems import aurora_node

SEED = 321


@pytest.fixture(scope="module")
def guarded_result():
    return AnalysisPipeline.for_domain("branch", aurora_node(seed=SEED)).run()


@pytest.fixture(scope="module")
def unguarded_result():
    config = PipelineConfig(guard=GuardConfig(enabled=False))
    return AnalysisPipeline.for_domain(
        "branch", aurora_node(seed=SEED), config=config
    ).run()


class TestBitIdenticalContract:
    """On a healthy catalog the guard is pure observation."""

    def test_selection_identical(self, guarded_result, unguarded_result):
        assert guarded_result.selected_events == unguarded_result.selected_events
        np.testing.assert_array_equal(
            guarded_result.x_hat, unguarded_result.x_hat
        )

    def test_metrics_identical(self, guarded_result, unguarded_result):
        assert set(guarded_result.metrics) == set(unguarded_result.metrics)
        for name, metric in guarded_result.metrics.items():
            other = unguarded_result.metrics[name]
            np.testing.assert_array_equal(metric.coefficients, other.coefficients)
            assert metric.error == other.error

    def test_no_guard_fired(self, guarded_result):
        health = guarded_result.qrcp.health
        assert health is not None
        assert health.guards_fired == ()
        assert health.suspect_columns == ()

    def test_unguarded_run_carries_no_stamps(self, unguarded_result):
        assert unguarded_result.qrcp.health is None
        assert all(
            m.trust is None for m in unguarded_result.metrics.values()
        )


class TestCertification:
    def test_all_default_metrics_certified(self, guarded_result):
        for name, metric in guarded_result.metrics.items():
            assert metric.trust is not None, f"{name} has no trust stamp"
            assert metric.trust.level == "certified", (
                f"{name}: {metric.trust.describe()}"
            )

    def test_summary_surfaces_health_and_trust(self, guarded_result):
        text = guarded_result.summary()
        assert "numerical health:" in text
        assert "trust=certified" in text

    def test_report_has_health_section(self, guarded_result):
        text = render_report(guarded_result, include_figures=False)
        assert "## Numerical health & trust" in text
        assert "certified" in text

    def test_strict_mode_is_silent_on_clean_data(self):
        config = PipelineConfig(strict=True)
        result = AnalysisPipeline.for_domain(
            "branch", aurora_node(seed=SEED), config=config
        ).run()
        assert all(
            m.trust is not None and m.trust.level == "certified"
            for m in result.metrics.values()
        )


class TestBoundaryValidation:
    def test_nan_measurement_rejected_with_coordinates(self, guarded_result):
        clean = guarded_result.measurement
        data = clean.data.copy()
        data[0, 0, 1, 2] = np.nan
        bad = type(clean)(
            benchmark=clean.benchmark,
            row_labels=list(clean.row_labels),
            event_names=list(clean.event_names),
            data=data,
            pmu_runs=clean.pmu_runs,
        )
        pipeline = AnalysisPipeline.for_domain("branch", aurora_node(seed=SEED))
        with pytest.raises(ValidationError, match=r"\(0, 0, 1, 2\)"):
            pipeline.run(measurement=bad)

    def test_config_rejects_bad_rcond(self):
        with pytest.raises(ValueError, match="lstsq_rcond"):
            PipelineConfig(lstsq_rcond=-1e-12)

    def test_config_rejects_non_guardconfig(self):
        with pytest.raises(ValueError, match="GuardConfig"):
            PipelineConfig(guard="yes please")

    def test_rcond_threads_through(self, guarded_result):
        # A sanity check that the knob reaches the solver: an absurd
        # rcond truncates every direction, so every composition collapses
        # to the zero solution (the branch X-hat R-diagonal is exactly
        # all-ones, so any rcond < 1 truncates nothing).
        config = PipelineConfig(lstsq_rcond=1.5)
        result = AnalysisPipeline.for_domain(
            "branch", aurora_node(seed=SEED), config=config
        ).run()
        assert all(
            np.allclose(m.coefficients, 0.0) for m in result.metrics.values()
        )
        assert any(
            not np.allclose(m.coefficients, 0.0)
            for m in guarded_result.metrics.values()
        )


class TestRankDeficientStability:
    """n_events < n_dims: the harness must stay coherent, not crash."""

    def test_two_event_registry(self):
        node = aurora_node(seed=SEED)
        keep = {"BR_INST_RETIRED:COND", "BR_MISP_RETIRED"}
        registry = node.events.select(predicate=lambda e: e.full_name in keep)
        assert len(list(registry)) == 2
        report = selection_stability(
            lambda seed: aurora_node(seed=seed),
            "branch",
            seeds=[1, 2, 3],
            events=registry,
        )
        assert report.is_deterministic
        for sel in report.selections.values():
            assert 0 < len(sel) <= 2
            assert set(sel) <= keep
        # Each selected event is attributed to exactly one dimension and
        # the summary renders without error.
        assert sum(
            sum(c.values()) for c in report.dimension_carriers.values()
        ) == sum(len(s) for s in report.selections.values())
        assert "branch" in report.summary()

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValidationError, match="seeds"):
            selection_stability(
                lambda seed: aurora_node(seed=seed), "branch", seeds=[]
            )
