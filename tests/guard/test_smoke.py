"""The ill-conditioned smoke scenario: the guard's end-to-end exercise."""

import numpy as np
import pytest

from repro.guard import GuardConfig, run_smoke
from repro.guard.smoke import SMOKE_GUARD, forge_near_duplicates


@pytest.fixture(scope="module")
def outcome():
    return run_smoke(seed=2024)


@pytest.fixture(scope="module")
def strict_outcome():
    return run_smoke(seed=2024, strict=True)


class TestSmokeScenario:
    def test_passes(self, outcome):
        assert outcome.passed, outcome.describe()

    def test_sentinel_fired(self, outcome):
        assert outcome.sentinels_fired
        assert "qrcp-column-scaled-repivot" in outcome.sentinels_fired

    def test_condition_past_threshold(self, outcome):
        assert outcome.condition_estimate > SMOKE_GUARD.condition_threshold

    def test_run_degraded_not_crashed(self, outcome):
        # The pipeline finished (no crash) and no metric touching forged
        # columns kept a certified stamp.
        assert outcome.result is not None
        assert set(outcome.trust_levels.values()) != {"certified"}

    def test_describe_names_forged_events(self, outcome):
        text = outcome.describe()
        assert "SYNTH_NEAR_DUP_0" in text
        assert "PASS" in text


class TestStrictSmoke:
    def test_passes(self, strict_outcome):
        assert strict_outcome.passed, strict_outcome.describe()

    def test_raises_naming_forged_event(self, strict_outcome):
        assert strict_outcome.strict_error is not None
        assert any(
            name in strict_outcome.strict_error
            for name in strict_outcome.forged_events
        )
        assert "strict mode" in strict_outcome.strict_error


class TestForgery:
    def test_forged_columns_are_near_duplicates(self, outcome):
        clean = outcome.result.measurement
        forged_idx = [
            i
            for i, name in enumerate(clean.event_names)
            if name.startswith("SYNTH_NEAR_DUP_")
        ]
        assert len(forged_idx) == len(outcome.forged_events)
        # Near, not exact, duplicates: each forged column sits a tiny but
        # nonzero relative distance from its (clean) donor column.
        clean_idx = [
            j for j in range(clean.data.shape[-1]) if j not in forged_idx
        ]
        for i in forged_idx:
            f = clean.data[..., i]
            rel = min(
                np.abs(f - clean.data[..., j]).max()
                / max(np.abs(clean.data[..., j]).max(), 1.0)
                for j in clean_idx
            )
            assert 0.0 < rel < 1e-4

    def test_forge_rejects_empty_donors(self, outcome):
        with pytest.raises(ValueError, match="donor"):
            forge_near_duplicates(
                outcome.result.measurement, [], np.zeros(1)
            )

    def test_forge_rejects_wrong_pattern_shape(self, outcome):
        m = outcome.result.measurement
        with pytest.raises(ValueError, match="pattern"):
            forge_near_duplicates(
                m, [m.event_names[0]], np.zeros(m.data.shape[2] + 1)
            )

    def test_smoke_guard_is_tighter_than_default(self):
        default = GuardConfig()
        assert SMOKE_GUARD.condition_threshold < default.condition_threshold
        assert SMOKE_GUARD.rank_gap_threshold < default.rank_gap_threshold
