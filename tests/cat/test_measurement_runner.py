"""Tests for the measurement container and the benchmark runner."""

import numpy as np
import pytest

from repro.cat import BenchmarkRunner, BranchBenchmark, DCacheBenchmark, MeasurementSet
from repro.events import EventDomain
from repro.hardware import aurora_node


def _ms(data, **kw):
    data = np.asarray(data, dtype=float)
    defaults = dict(
        benchmark="t",
        row_labels=[f"r{i}" for i in range(data.shape[2])],
        event_names=[f"e{i}" for i in range(data.shape[3])],
        data=data,
    )
    defaults.update(kw)
    return MeasurementSet(**defaults)


class TestMeasurementSet:
    def test_shape_accessors(self):
        ms = _ms(np.zeros((3, 2, 4, 5)))
        assert (ms.n_repetitions, ms.n_threads, ms.n_rows, ms.n_events) == (3, 2, 4, 5)

    def test_validation(self):
        with pytest.raises(ValueError, match="reps, threads, rows, events"):
            MeasurementSet("t", ["r0"], ["e0"], np.zeros((2, 3, 4)))
        with pytest.raises(ValueError, match="row labels"):
            MeasurementSet("t", ["r0"], ["e0"], np.zeros((2, 1, 2, 1)))
        with pytest.raises(ValueError, match="event names"):
            MeasurementSet("t", ["r0"], ["e0", "e1"], np.zeros((2, 1, 1, 1)))
        with pytest.raises(ValueError, match="duplicate"):
            MeasurementSet("t", ["r0"], ["e0", "e0"], np.zeros((2, 1, 1, 2)))

    def test_event_index(self):
        ms = _ms(np.zeros((2, 1, 1, 3)))
        assert ms.event_index("e2") == 2
        with pytest.raises(KeyError, match="not measured"):
            ms.event_index("nope")

    def test_thread_median(self):
        data = np.zeros((1, 3, 2, 1))
        data[0, :, 0, 0] = [1.0, 100.0, 2.0]
        data[0, :, 1, 0] = [5.0, 5.0, 5.0]
        collapsed = _ms(data).thread_median()
        assert collapsed.n_threads == 1
        assert collapsed.data[0, 0, :, 0].tolist() == [2.0, 5.0]

    def test_repetition_vectors_median_threads(self):
        data = np.zeros((2, 3, 1, 1))
        data[:, :, 0, 0] = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]
        vectors = _ms(data).repetition_vectors("e0")
        assert vectors.tolist() == [[2.0], [5.0]]

    def test_mean_vector_averages_repetitions(self):
        data = np.zeros((2, 1, 2, 1))
        data[0, 0, :, 0] = [1.0, 3.0]
        data[1, 0, :, 0] = [3.0, 5.0]
        assert _ms(data).mean_vector("e0").tolist() == [2.0, 4.0]

    def test_measurement_matrix_shape(self):
        ms = _ms(np.random.default_rng(0).random((3, 2, 4, 5)))
        assert ms.measurement_matrix().shape == (4, 5)

    def test_select_events_preserves_order(self):
        data = np.arange(2 * 1 * 1 * 3, dtype=float).reshape(2, 1, 1, 3)
        sub = _ms(data).select_events(["e2", "e0"])
        assert sub.event_names == ["e2", "e0"]
        assert sub.data[0, 0, 0, :].tolist() == [2.0, 0.0]


class TestBenchmarkRunner:
    @pytest.fixture(scope="class")
    def node(self):
        return aurora_node(seed=99)

    def test_requires_two_repetitions(self, node):
        with pytest.raises(ValueError):
            BenchmarkRunner(node, repetitions=1)

    def test_run_is_bit_reproducible(self, node):
        bench = BranchBenchmark()
        a = BenchmarkRunner(node, repetitions=2).run(bench)
        b = BenchmarkRunner(node, repetitions=2).run(bench)
        assert np.array_equal(a.data, b.data)

    def test_different_seed_changes_noisy_readings_only(self, node):
        bench = BranchBenchmark()
        a = BenchmarkRunner(node, repetitions=2).run(bench)
        other = aurora_node(seed=100)
        b = BenchmarkRunner(other, repetitions=2).run(bench)
        i_exact = a.event_names.index("BR_INST_RETIRED:COND")
        i_noisy = a.event_names.index("CPU_CLK_UNHALTED:THREAD")
        assert np.array_equal(a.data[..., i_exact], b.data[..., i_exact])
        assert not np.array_equal(a.data[..., i_noisy], b.data[..., i_noisy])

    def test_deterministic_events_identical_across_repetitions(self, node):
        ms = BenchmarkRunner(node, repetitions=3).run(BranchBenchmark())
        idx = ms.event_names.index("BR_INST_RETIRED:COND_TAKEN")
        assert np.array_equal(ms.data[0, ..., idx], ms.data[1, ..., idx])
        assert np.array_equal(ms.data[0, ..., idx], ms.data[2, ..., idx])

    def test_domain_scoping(self, node):
        runner = BenchmarkRunner(node, repetitions=2)
        registry = runner.select_events(BranchBenchmark())
        domains = {e.domain for e in registry}
        assert EventDomain.BRANCH in domains
        assert EventDomain.CACHE not in domains

    def test_explicit_event_registry(self, node):
        runner = BenchmarkRunner(node, repetitions=2)
        events = node.events.select(prefix="BR_MISP_RETIRED")
        ms = runner.run(BranchBenchmark(), events=events)
        assert all(n.startswith("BR_MISP_RETIRED") for n in ms.event_names)

    def test_empty_event_selection_rejected(self, node):
        runner = BenchmarkRunner(node, repetitions=2)
        with pytest.raises(ValueError, match="no events"):
            runner.run(BranchBenchmark(), events=node.events.select(prefix="ZZZ"))

    def test_pmu_runs_recorded(self, node):
        ms = BenchmarkRunner(node, repetitions=2).run(BranchBenchmark())
        # ~130 events over 8 programmable + 3 fixed counters needs many runs.
        assert ms.pmu_runs > 10

    def test_environment_noise_perturbs_exact_events(self, node):
        bench = DCacheBenchmark(
            footprints=[("L1", 16 * 1024)], n_threads=2
        )
        ms = BenchmarkRunner(node, repetitions=2).run(bench)
        idx = ms.event_names.index("MEM_INST_RETIRED:ALL_LOADS")
        # Without environment noise this retired count would be bit-exact;
        # the multithreaded benchmark jitters it.
        assert not np.array_equal(ms.data[0, ..., idx], ms.data[1, ..., idx])
