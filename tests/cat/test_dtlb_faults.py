"""Fault injection on the dTLB domain: faults are scrubbed or flagged,
never silently composed.

The dTLB extension domain got pipeline coverage but never fault
coverage; these tests close that gap with the same two properties the
branch-domain fault suite asserts — zero-fault identity and full fault
accountability — plus a composition check specific to the concern:
a dropout/spike load on dTLB events must leave every injected fault
with a terminal outcome (recovered, excluded, or degraded) before any
metric is composed over the affected columns.
"""

import numpy as np
import pytest

from repro.core.pipeline import AnalysisPipeline
from repro.faults import FaultConfig
from repro.hardware.systems import aurora_node

DROPOUT_AND_SPIKES = FaultConfig(
    seed=13,
    dropout_rate=0.03,
    spike_rate=0.02,
    spike_scale=50.0,
)

#: Outcomes that account for a fault; "injected" means nothing handled it.
ACCOUNTED = {"recovered", "excluded", "degraded"}


@pytest.fixture(scope="module")
def baseline():
    return AnalysisPipeline.for_domain("dtlb", aurora_node()).run()


@pytest.fixture(scope="module")
def faulted():
    return AnalysisPipeline.for_domain(
        "dtlb", aurora_node(), faults=DROPOUT_AND_SPIKES
    ).run()


class TestZeroFaultIdentity:
    def test_zero_rate_config_is_bit_identical(self, baseline):
        result = AnalysisPipeline.for_domain(
            "dtlb", aurora_node(), faults=FaultConfig(seed=5)
        ).run()
        np.testing.assert_array_equal(
            result.measurement.data, baseline.measurement.data
        )
        assert result.selected_events == baseline.selected_events
        assert {n: m.error for n, m in result.metrics.items()} == {
            n: m.error for n, m in baseline.metrics.items()
        }
        assert result.robustness is None


class TestAccountability:
    def test_faults_actually_fired(self, faulted):
        report = faulted.robustness
        assert report is not None
        assert report.n_injected > 0
        kinds = {r.kind for r in report.records}
        assert "dropout" in kinds
        assert "spike" in kinds

    def test_no_fault_silently_composed(self, faulted):
        report = faulted.robustness
        assert report.unaccounted() == []
        for record in report.records:
            assert record.outcome in ACCOUNTED, (
                f"{record.kind} on {record.event} at {record.coords} "
                f"left outcome {record.outcome!r}"
            )

    def test_dropped_dtlb_columns_never_compose(self, faulted):
        # "excluded" is per-cell (the corrupted repetition leaves the
        # median); "degraded" means the scrubber dropped the whole event
        # column — those columns must never reach QRCP selection.
        dropped = {
            r.event
            for r in faulted.robustness.records
            if r.outcome == "degraded" and r.event
        }
        assert not dropped & set(faulted.selected_events)

    def test_moderate_load_preserves_selection(self, faulted, baseline):
        # Scrubbing (impute dropouts, exclude spiked repetitions) exists
        # so sparse corruption does not change the composition basis.
        assert faulted.selected_events == baseline.selected_events

    def test_degradation_is_flagged_never_silent(self, faulted):
        # This load drops at least one unrecoverable column; the pipeline
        # must advertise that, and the audit trail must justify the flag.
        if faulted.degraded:
            assert any(
                r.outcome == "degraded" for r in faulted.robustness.records
            )
            assert "DEGRADED" in faulted.summary()

    def test_audit_table_names_the_dtlb_context(self, faulted):
        table = faulted.robustness.table()
        assert "fault kind" in table
        assert faulted.robustness.unaccounted() == []


class TestDeterminism:
    def test_faulted_run_deterministic_under_seed(self, faulted):
        again = AnalysisPipeline.for_domain(
            "dtlb", aurora_node(), faults=DROPOUT_AND_SPIKES
        ).run()
        np.testing.assert_array_equal(
            faulted.measurement.data, again.measurement.data
        )
        assert faulted.selected_events == again.selected_events
        key = lambda r: (r.kind, r.event, r.coords, r.outcome)
        assert sorted(map(key, faulted.robustness.records)) == sorted(
            map(key, again.robustness.records)
        )


class TestBrutalDropout:
    def test_heavy_dtlb_dropout_degrades_not_lies(self):
        brutal = FaultConfig(seed=9, dropout_rate=0.6)
        result = AnalysisPipeline.for_domain(
            "dtlb", aurora_node(), faults=brutal
        ).run()
        assert result.degraded
        assert result.robustness.unaccounted() == []
        for metric in result.metrics.values():
            assert metric.degraded
