"""Tests for the CAT benchmark definitions."""

import numpy as np
import pytest

from repro.cat import (
    BRANCH_KERNEL_SPECS,
    BranchBenchmark,
    CPUFlopsBenchmark,
    DCacheBenchmark,
    GPUFlopsBenchmark,
    default_footprints,
)
from repro.cat.kernels import (
    CPU_FLOPS_DIMENSIONS,
    GPU_FLOPS_DIMENSIONS,
    flops_per_instruction,
)
from repro.core.basis import BRANCH_EXPECTATION_MATRIX
from repro.hardware import SimulatedCPU, SimulatedGPU, aurora_node, frontier_node


class TestKernelTables:
    def test_cpu_dimension_count(self):
        assert len(CPU_FLOPS_DIMENSIONS) == 16

    def test_gpu_dimension_count(self):
        assert len(GPU_FLOPS_DIMENSIONS) == 15

    def test_cpu_symbols_unique(self):
        symbols = [d.symbol for d in CPU_FLOPS_DIMENSIONS]
        assert len(set(symbols)) == 16

    def test_flops_per_instruction_table(self):
        assert flops_per_instruction("scalar", "dp", False) == 1
        assert flops_per_instruction("scalar", "dp", True) == 2
        assert flops_per_instruction("128", "dp", False) == 2
        assert flops_per_instruction("256", "sp", False) == 8
        assert flops_per_instruction("512", "dp", True) == 16
        assert flops_per_instruction("512", "sp", True) == 32

    def test_fma_kernels_use_half_blocks(self):
        fma = [d for d in CPU_FLOPS_DIMENSIONS if d.fma][0]
        nonfma = [d for d in CPU_FLOPS_DIMENSIONS if not d.fma][0]
        assert fma.loop_blocks == (12, 24, 48)
        assert nonfma.loop_blocks == (24, 48, 96)

    def test_gpu_sqrt_maps_to_trans(self):
        sqrt_dims = [d for d in GPU_FLOPS_DIMENSIONS if d.op == "trans"]
        assert all(d.kernel_name.startswith("sqrt_") for d in sqrt_dims)
        assert [d.symbol for d in sqrt_dims] == ["SQH", "SQS", "SQD"]

    def test_gpu_fma_two_ops(self):
        for d in GPU_FLOPS_DIMENSIONS:
            assert d.ops_per_instruction == (2 if d.op == "fma" else 1)


class TestCPUFlopsBenchmark:
    def test_row_structure(self):
        bench = CPUFlopsBenchmark()
        labels = bench.row_labels()
        assert len(labels) == 48
        assert labels[0] == "sp_scalar/loop24"
        assert labels[-1] == "dp_512_fma/loop48"

    def test_execute_shapes(self):
        bench = CPUFlopsBenchmark()
        activities = bench.execute(SimulatedCPU())
        assert len(activities) == 48
        assert all(len(row) == 1 for row in activities)

    def test_activity_matches_kernel_class(self):
        bench = CPUFlopsBenchmark()
        activities = bench.execute(SimulatedCPU())
        labels = bench.row_labels()
        idx = labels.index("dp_256_fma/loop24")
        act = activities[idx][0]
        assert act.get("instr.fp.256.dp.fma") == 24.0
        assert act.get("instr.fp.256.dp.nonfma") == 0.0

    def test_rejects_gpu_machine(self):
        with pytest.raises(TypeError):
            CPUFlopsBenchmark().execute(SimulatedGPU())


class TestGPUFlopsBenchmark:
    def test_row_structure(self):
        bench = GPUFlopsBenchmark()
        assert len(bench.row_labels()) == 45

    def test_rejects_cpu_machine(self):
        with pytest.raises(TypeError):
            GPUFlopsBenchmark().execute(SimulatedCPU())

    def test_execute(self):
        bench = GPUFlopsBenchmark()
        activities = bench.execute(SimulatedGPU())
        labels = bench.row_labels()
        idx = labels.index("fma_f64/loop96")
        assert activities[idx][0].get("gpu.valu.fma.f64") == 96.0


class TestBranchBenchmark:
    def test_eleven_kernels(self):
        assert len(BRANCH_KERNEL_SPECS) == 11
        assert len(BranchBenchmark().row_labels()) == 11

    def test_activities_reproduce_equation3(self):
        """Every measured row equals the paper's expectation matrix —
        the substrate-level ground truth behind the branch results."""
        bench = BranchBenchmark()
        activities = bench.execute(SimulatedCPU())
        measured = np.array(
            [
                [
                    act[0].get("branch.cond_executed"),
                    act[0].get("branch.cond_retired"),
                    act[0].get("branch.cond_taken"),
                    act[0].get("branch.uncond_direct"),
                    act[0].get("branch.mispredicted"),
                ]
                for act in activities
            ]
        )
        assert np.array_equal(measured, BRANCH_EXPECTATION_MATRIX)


class TestDCacheBenchmark:
    def test_default_row_structure(self):
        bench = DCacheBenchmark()
        labels = bench.row_labels()
        assert len(labels) == 16
        assert labels[0].startswith("stride64/L1/")
        assert labels[8].startswith("stride128/L1/")
        regions = bench.row_regions()
        assert regions == ["L1", "L1", "L2", "L2", "L3", "L3", "M", "M"] * 2

    def test_footprints_span_hierarchy(self):
        footprints = default_footprints()
        regions = [r for r, _ in footprints]
        assert regions == ["L1", "L1", "L2", "L2", "L3", "L3", "M", "M"]
        sizes = [s for _, s in footprints]
        assert sizes == sorted(sizes)

    def test_execute_thread_count(self):
        bench = DCacheBenchmark(n_threads=3, footprints=[("L1", 16 * 1024)])
        activities = bench.execute(SimulatedCPU())
        assert len(activities) == 2  # one footprint x two strides
        assert all(len(row) == 3 for row in activities)

    def test_environment_noise_declared(self):
        assert DCacheBenchmark().environment_noise is not None
        assert CPUFlopsBenchmark().environment_noise is None

    def test_footprint_too_small_for_stride(self):
        with pytest.raises(ValueError):
            DCacheBenchmark(strides=(4096,), footprints=[("L1", 1024)])
