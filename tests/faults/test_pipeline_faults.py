"""End-to-end fault-injection properties of the analysis pipeline.

The two properties the whole substrate is built around:

* **Zero-fault identity** — a pipeline handed a zero-rate FaultConfig
  produces bit-identical artifacts to one that never saw the fault layer.
* **Accountability** — under a seeded fault load, every injected fault is
  recovered, excluded, or degraded; none is silent; and the whole faulted
  run is deterministic under its seed.
"""

import numpy as np
import pytest

from repro.core.pipeline import AnalysisPipeline
from repro.faults import FaultConfig, TransientMeasurementError
from repro.hardware.systems import aurora_node

MODERATE = FaultConfig(
    seed=21,
    dropout_rate=0.02,
    spike_rate=0.01,
    overflow_bits=32,
    overflow_rate=0.02,
    run_failure_rate=0.4,
)


@pytest.fixture(scope="module")
def baseline():
    return AnalysisPipeline.for_domain("branch", aurora_node()).run()


@pytest.fixture(scope="module")
def faulted():
    return AnalysisPipeline.for_domain(
        "branch", aurora_node(), faults=MODERATE
    ).run()


class TestZeroFaultIdentity:
    def test_zero_rate_config_is_bit_identical(self, baseline):
        result = AnalysisPipeline.for_domain(
            "branch", aurora_node(), faults=FaultConfig(seed=77)
        ).run()
        np.testing.assert_array_equal(
            result.measurement.data, baseline.measurement.data
        )
        assert result.selected_events == baseline.selected_events
        assert {n: m.error for n, m in result.metrics.items()} == {
            n: m.error for n, m in baseline.metrics.items()
        }
        assert result.robustness is None
        assert not result.degraded


class TestFaultedDeterminism:
    def test_faulted_run_deterministic_under_seed(self, faulted):
        again = AnalysisPipeline.for_domain(
            "branch", aurora_node(), faults=MODERATE
        ).run()
        np.testing.assert_array_equal(
            faulted.measurement.data, again.measurement.data
        )
        assert faulted.selected_events == again.selected_events
        key = lambda r: (r.kind, r.event, r.coords, r.outcome)
        assert sorted(map(key, faulted.robustness.records)) == sorted(
            map(key, again.robustness.records)
        )


class TestAccountability:
    def test_no_silent_faults(self, faulted):
        report = faulted.robustness
        assert report is not None
        assert report.n_injected > 0
        assert report.unaccounted() == []

    def test_moderate_load_preserves_selection(self, faulted, baseline):
        # The recovery layers exist so that sparse structural corruption
        # does not change the paper's conclusions.
        assert faulted.selected_events == baseline.selected_events
        assert not faulted.degraded

    def test_report_table_renders(self, faulted):
        table = faulted.robustness.table()
        assert "fault kind" in table
        assert "status: ok" in table


class TestDegradedMode:
    def test_brutal_dropout_degrades_gracefully(self):
        brutal = FaultConfig(seed=3, dropout_rate=0.6)
        result = AnalysisPipeline.for_domain(
            "branch", aurora_node(), faults=brutal
        ).run()
        # The pipeline survives; losses are flagged, never hidden.
        assert result.degraded
        assert result.robustness.unaccounted() == []
        for metric in result.metrics.values():
            assert metric.degraded
        assert "DEGRADED" in result.summary()

    def test_retry_exhaustion_raises_transient_error(self):
        persistent = FaultConfig(seed=3, run_failure_rate=1.0, transient=False)
        pipeline = AnalysisPipeline.for_domain(
            "branch", aurora_node(), faults=persistent
        )
        with pytest.raises(TransientMeasurementError):
            pipeline.run()


class TestRetryRecovery:
    def test_transient_run_failure_recovered_and_noted(self):
        flaky = FaultConfig(seed=1, run_failure_rate=1.0)  # transient: attempt 0 only
        result = AnalysisPipeline.for_domain(
            "branch", aurora_node(), faults=flaky
        ).run()
        report = result.robustness
        assert report.retries  # the retry is in the audit trail
        failures = [r for r in report.records if r.kind == "run-failure"]
        assert failures and all(r.outcome == "recovered" for r in failures)
        assert not result.degraded
