"""Tests for the fault model: configuration, spec parsing, records."""

import math

import pytest

from repro.faults import FaultConfig, parse_fault_spec
from repro.faults.model import FaultRecord


class TestFaultConfig:
    def test_default_is_disabled(self):
        config = FaultConfig()
        assert not config.enabled
        assert not config.any_measurement_faults

    def test_any_rate_enables(self):
        assert FaultConfig(dropout_rate=0.1).enabled
        assert FaultConfig(crash_rate=0.1).enabled
        assert FaultConfig(cache_corruption_rate=0.1).enabled

    def test_measurement_faults_exclude_task_faults(self):
        assert FaultConfig(spike_rate=0.1).any_measurement_faults
        assert not FaultConfig(crash_rate=0.5).any_measurement_faults

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dropout_rate": -0.1},
            {"dropout_rate": 1.5},
            {"spike_rate": 2.0},
            {"overflow_bits": -1},
            {"hang_seconds": -1.0},
            {"spike_scale": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_describe_mentions_active_faults(self):
        text = FaultConfig(seed=3, dropout_rate=0.25).describe()
        assert "dropout" in text and "0.25" in text


class TestParseFaultSpec:
    def test_aliases(self):
        config = parse_fault_spec(
            "seed=9,dropout=0.1,spike=0.05,overflow=0.01,runfail=0.2,"
            "crash=0.3,hang=0.4,cache=0.5"
        )
        assert config.seed == 9
        assert config.dropout_rate == 0.1
        assert config.spike_rate == 0.05
        assert config.overflow_rate == 0.01
        assert config.run_failure_rate == 0.2
        assert config.crash_rate == 0.3
        assert config.hang_rate == 0.4
        assert config.cache_corruption_rate == 0.5

    def test_full_names_and_bool(self):
        config = parse_fault_spec("dropout_rate=0.2,transient=false,overflow_bits=48")
        assert config.dropout_rate == 0.2
        assert config.transient is False
        assert config.overflow_bits == 48

    def test_roundtrips_describe(self):
        config = parse_fault_spec("seed=5,dropout=0.1,spike=0.02")
        assert parse_fault_spec(config.describe()) == config

    @pytest.mark.parametrize("spec", ["nonsense=1", "dropout", "dropout=x"])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    def test_empty_spec_is_disabled(self):
        assert not parse_fault_spec("seed=42").enabled


class TestFaultRecord:
    def test_cell_key(self):
        record = FaultRecord(
            kind="spike", context="c", event="E", coords=(1, 2, 3)
        )
        assert record.cell_key == ("E", (1, 2, 3))

    def test_cell_key_none_without_coords(self):
        assert FaultRecord(kind="crash", context="c").cell_key is None

    def test_default_outcome_is_injected(self):
        assert FaultRecord(kind="dropout", context="c").outcome == "injected"


class TestDropoutValue:
    def test_default_dropout_is_nan(self):
        assert math.isnan(FaultConfig().dropout_value)

    def test_zero_dropout_value_allowed(self):
        config = FaultConfig(dropout_rate=0.1, dropout_value=0.0)
        assert config.dropout_value == 0.0
