"""Tests for the quorum scrubber."""

import numpy as np
import pytest

from repro.cat.measurement import MeasurementSet
from repro.faults import ScrubPolicy, scrub_measurement


def make_measurement(data):
    data = np.asarray(data, dtype=np.float64)
    reps, threads, rows, events = data.shape
    return MeasurementSet(
        benchmark="synthetic",
        row_labels=[f"row{i}" for i in range(rows)],
        event_names=[f"E{j}" for j in range(events)],
        data=data,
    )


def uniform(value, reps=5, threads=2, rows=3, events=2):
    return np.full((reps, threads, rows, events), float(value))


class TestCleanIdentity:
    def test_clean_measurement_returned_untouched(self):
        m = make_measurement(uniform(100.0))
        result = scrub_measurement(m)
        assert result.measurement is m  # same object: bit-identity for free
        assert result.clean
        assert not result.degraded

    def test_legitimate_noise_not_repaired(self):
        rng = np.random.default_rng(0)
        base = uniform(1000.0)
        noisy = base * (1.0 + rng.normal(0.0, 0.05, base.shape))
        result = scrub_measurement(make_measurement(noisy))
        assert result.clean


class TestImputation:
    def test_nan_cell_imputed_from_median(self):
        data = uniform(100.0)
        data[2, 0, 1, 0] = np.nan
        result = scrub_measurement(make_measurement(data))
        assert result.measurement.data[2, 0, 1, 0] == 100.0
        (action,) = result.actions
        assert action.action == "imputed"
        assert action.event == "E0"
        assert action.coords == (2, 0, 1)

    def test_imputation_robust_to_coexisting_outlier(self):
        data = uniform(100.0)
        data[0, 0, 0, 0] = np.nan
        data[1, 0, 0, 0] = 1e6  # spike among the remaining reps
        result = scrub_measurement(make_measurement(data))
        assert result.measurement.data[0, 0, 0, 0] == 100.0


class TestOutlierExclusion:
    def test_spiked_cell_replaced_by_quorum_median(self):
        data = uniform(100.0)
        data[3, 1, 2, 1] = 1e5
        result = scrub_measurement(make_measurement(data))
        assert result.measurement.data[3, 1, 2, 1] == 100.0
        (action,) = result.actions
        assert action.action == "excluded"
        assert action.coords == (3, 1, 2)

    def test_broad_disagreement_left_to_tau_filter(self):
        """An event whose repetitions disagree everywhere is noise, not
        corruption: the scrubber must not manufacture consensus."""
        rng = np.random.default_rng(1)
        data = uniform(100.0)
        # Log-uniform over six decades: nearly every repetition pair
        # disagrees by more than the 5x threshold.
        data[:, :, :, 0] = 10.0 ** rng.uniform(0.0, 6.0, data.shape[:3])
        result = scrub_measurement(make_measurement(data))
        assert result.measurement.data[:, :, :, 0] == pytest.approx(
            data[:, :, :, 0]
        )


class TestDegradation:
    def test_event_without_quorum_dropped(self):
        data = uniform(100.0)
        data[0:4, 0, 0, 1] = np.nan  # 4 of 5 reps lost: no quorum
        result = scrub_measurement(make_measurement(data))
        assert result.dropped_events == ["E1"]
        assert result.degraded
        assert result.measurement.event_names == ["E0"]
        assert result.measurement.data.shape[-1] == 1
        assert any(a.action == "dropped-event" for a in result.actions)

    def test_survivors_keep_their_data(self):
        data = uniform(100.0)
        data[:, :, :, 1] = 777.0
        data[0:5, 0, 0, 0] = np.nan
        result = scrub_measurement(make_measurement(data))
        assert result.dropped_events == ["E0"]
        np.testing.assert_array_equal(
            result.measurement.data[..., 0], data[..., 1]
        )


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"outlier_threshold": 0.0},
            {"quorum": 0.5},
            {"quorum": 1.5},
            {"max_outlier_fraction": 0.0},
        ],
    )
    def test_rejects_bad_policies(self, kwargs):
        with pytest.raises(ValueError):
            ScrubPolicy(**kwargs)
