"""Tests for the serve-layer chaos model (repro.faults.chaos)."""

import pytest

from repro.faults import ChaosConfig, ChaosInjector, parse_chaos_spec


class TestChaosConfig:
    def test_default_injects_nothing(self):
        config = ChaosConfig()
        assert not config.enabled
        injector = ChaosInjector(config)
        assert not injector.fires("worker-kill", "dispatch:1")
        assert injector.latency("request:w0:1") == 0.0
        assert injector.catalog_failpoint("catalog.publish:x") is None
        assert injector.records == []

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="worker_kill_rate"):
            ChaosConfig(worker_kill_rate=1.5)
        with pytest.raises(ValueError, match="latency_seconds"):
            ChaosConfig(latency_seconds=-1.0)

    def test_enabled_flags_any_nonzero_rate(self):
        assert ChaosConfig(socket_drop_rate=0.01).enabled
        assert not ChaosConfig(seed=7, hang_seconds=9.0).enabled

    def test_describe_names_nonzero_knobs(self):
        text = ChaosConfig(seed=3, torn_publication_rate=0.5).describe()
        assert "seed=3" in text
        assert "torn_publication_rate=0.5" in text
        assert "socket_drop_rate" not in text


class TestParseChaosSpec:
    def test_aliases_round_trip(self):
        config = parse_chaos_spec(
            "seed=7,kill=0.2,hang=0.1,torn=0.3,unlogged=0.05,drop=0.1,"
            "latency=0.5,latency_seconds=0.01"
        )
        assert config.seed == 7
        assert config.worker_kill_rate == 0.2
        assert config.worker_hang_rate == 0.1
        assert config.torn_publication_rate == 0.3
        assert config.unlogged_publication_rate == 0.05
        assert config.socket_drop_rate == 0.1
        assert config.latency_rate == 0.5
        assert config.latency_seconds == 0.01

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos spec key"):
            parse_chaos_spec("explode=1.0")

    def test_bad_term_rejected(self):
        with pytest.raises(ValueError, match="expected key=value"):
            parse_chaos_spec("kill")


class TestChaosInjector:
    def test_decisions_are_deterministic_per_site(self):
        config = ChaosConfig(seed=11, socket_drop_rate=0.5)
        first = [
            ChaosInjector(config).fires("socket-drop", f"request:w0:{i}")
            for i in range(40)
        ]
        second = [
            ChaosInjector(config).fires("socket-drop", f"request:w0:{i}")
            for i in range(40)
        ]
        assert first == second
        assert any(first) and not all(first)  # rate 0.5 actually mixes

    def test_decisions_are_order_independent(self):
        config = ChaosConfig(seed=5, worker_kill_rate=0.4)
        forward = ChaosInjector(config)
        backward = ChaosInjector(config)
        sites = [f"dispatch:{i}" for i in range(20)]
        a = {s: forward.fires("worker-kill", s) for s in sites}
        b = {s: backward.fires("worker-kill", s) for s in reversed(sites)}
        assert a == b

    def test_seed_changes_decisions(self):
        sites = [f"dispatch:{i}" for i in range(60)]
        a = [ChaosInjector(ChaosConfig(seed=1, worker_kill_rate=0.5)).fires(
            "worker-kill", s) for s in sites]
        b = [ChaosInjector(ChaosConfig(seed=2, worker_kill_rate=0.5)).fires(
            "worker-kill", s) for s in sites]
        assert a != b

    def test_unknown_kind_raises(self):
        injector = ChaosInjector(ChaosConfig(seed=1))
        with pytest.raises(ValueError, match="unknown chaos kind"):
            injector.fires("meteor-strike", "dispatch:1")

    def test_records_audit_every_injection(self):
        injector = ChaosInjector(ChaosConfig(seed=11, socket_drop_rate=1.0))
        assert injector.fires("socket-drop", "request:w0:1")
        assert injector.fires("socket-drop", "request:w0:2")
        kinds = [r.kind for r in injector.records]
        sites = [r.context for r in injector.records]
        assert kinds == ["chaos-socket-drop"] * 2
        assert sites == ["request:w0:1", "request:w0:2"]

    def test_latency_returns_configured_seconds(self):
        injector = ChaosInjector(
            ChaosConfig(seed=1, latency_rate=1.0, latency_seconds=0.25)
        )
        assert injector.latency("request:w0:1") == 0.25

    def test_catalog_failpoint_maps_to_actions(self):
        torn = ChaosInjector(ChaosConfig(seed=1, torn_publication_rate=1.0))
        assert torn.catalog_failpoint("catalog.publish:a:m:d:v0001") == "torn"
        unlogged = ChaosInjector(
            ChaosConfig(seed=1, unlogged_publication_rate=1.0)
        )
        assert (
            unlogged.catalog_failpoint("catalog.publish:a:m:d:v0001")
            == "unlogged"
        )
