"""Property tests for the fault injector's determinism contract.

The contract: injection is a pure function of (config, site, attempt) —
independent of execution order, process, or how many other sites were
visited first.  Everything downstream (parallel == serial sweeps,
checkpoint resume, the CI kill/resume smoke test) leans on this.
"""

import numpy as np
import pytest

from repro.cat import BranchBenchmark
from repro.cat.runner import BenchmarkRunner
from repro.faults import (
    FaultConfig,
    FaultInjector,
    InjectedWorkerCrash,
    TransientMeasurementError,
)
from repro.hardware.systems import aurora_node


@pytest.fixture(scope="module")
def clean_measurement():
    node = aurora_node()
    runner = BenchmarkRunner(node)
    return runner.run(BranchBenchmark())


CONFIG = FaultConfig(
    seed=13,
    dropout_rate=0.03,
    spike_rate=0.02,
    overflow_bits=7,
    overflow_rate=0.05,
)


class TestDeterminism:
    def test_same_config_bit_identical(self, clean_measurement):
        a = FaultInjector(CONFIG).corrupt_measurement(clean_measurement, "ctx")
        b = FaultInjector(CONFIG).corrupt_measurement(clean_measurement, "ctx")
        np.testing.assert_array_equal(a.data, b.data)

    def test_order_independent(self, clean_measurement):
        """Corrupting contexts in either order yields identical data —
        each site has its own stream, there is no shared cursor."""
        inj1 = FaultInjector(CONFIG)
        first_a = inj1.corrupt_measurement(clean_measurement, "a")
        inj1.corrupt_measurement(clean_measurement, "b")

        inj2 = FaultInjector(CONFIG)
        inj2.corrupt_measurement(clean_measurement, "b")
        second_a = inj2.corrupt_measurement(clean_measurement, "a")
        np.testing.assert_array_equal(first_a.data, second_a.data)

    def test_records_match_between_runs(self, clean_measurement):
        inj1, inj2 = FaultInjector(CONFIG), FaultInjector(CONFIG)
        inj1.corrupt_measurement(clean_measurement, "ctx")
        inj2.corrupt_measurement(clean_measurement, "ctx")
        key = lambda r: (r.kind, r.event, r.coords)
        assert sorted(map(key, inj1.records)) == sorted(map(key, inj2.records))

    def test_attempts_draw_fresh_patterns(self, clean_measurement):
        inj = FaultInjector(CONFIG)
        a0 = inj.corrupt_measurement(clean_measurement, "ctx", attempt=0)
        a1 = inj.corrupt_measurement(clean_measurement, "ctx", attempt=1)
        assert not np.array_equal(
            np.nan_to_num(a0.data), np.nan_to_num(a1.data)
        )

    def test_different_seeds_differ(self, clean_measurement):
        a = FaultInjector(CONFIG).corrupt_measurement(clean_measurement, "ctx")
        b = FaultInjector(
            FaultConfig(
                seed=14,
                dropout_rate=0.03,
                spike_rate=0.02,
                overflow_bits=7,
                overflow_rate=0.05,
            )
        ).corrupt_measurement(clean_measurement, "ctx")
        assert not np.array_equal(np.nan_to_num(a.data), np.nan_to_num(b.data))


class TestZeroFaultIdentity:
    def test_zero_config_returns_same_object(self, clean_measurement):
        inj = FaultInjector(FaultConfig(seed=99))
        out = inj.corrupt_measurement(clean_measurement, "ctx")
        assert out is clean_measurement
        assert inj.records == []

    def test_zero_rate_checks_never_fire(self):
        inj = FaultInjector(FaultConfig(seed=99))
        inj.check_run_failure("ctx")
        inj.check_worker_crash("ctx")
        assert inj.hang_duration("ctx") == 0.0


class TestCorruptionSemantics:
    def test_dropouts_are_nan_and_recorded(self, clean_measurement):
        config = FaultConfig(seed=5, dropout_rate=0.05)
        inj = FaultInjector(config)
        out = inj.corrupt_measurement(clean_measurement, "ctx")
        n_nan = int(np.isnan(out.data).sum())
        assert n_nan > 0
        assert n_nan == sum(1 for r in inj.records if r.kind == "dropout")
        # Records point at exactly the NaN cells.
        for record in inj.records[:20]:
            rep, thread, row = record.coords
            j = out.event_names.index(record.event)
            assert np.isnan(out.data[rep, thread, row, j])

    def test_dropout_value_zero(self, clean_measurement):
        config = FaultConfig(seed=5, dropout_rate=0.05, dropout_value=0.0)
        out = FaultInjector(config).corrupt_measurement(clean_measurement, "ctx")
        assert not np.isnan(out.data).any()

    def test_spikes_scale_cells(self, clean_measurement):
        config = FaultConfig(seed=5, spike_rate=0.02, spike_scale=100.0)
        inj = FaultInjector(config)
        out = inj.corrupt_measurement(clean_measurement, "ctx")
        assert inj.records
        for record in inj.records[:20]:
            rep, thread, row = record.coords
            j = out.event_names.index(record.event)
            original = clean_measurement.data[rep, thread, row, j]
            assert out.data[rep, thread, row, j] == pytest.approx(100.0 * original)

    def test_overflow_wraps_below_modulus(self, clean_measurement):
        # The modulus must sit below the benchmark's actual counts or no
        # cell can saturate (as on hardware: only big counts wrap).
        config = FaultConfig(seed=5, overflow_bits=7, overflow_rate=0.2)
        inj = FaultInjector(config)
        out = inj.corrupt_measurement(clean_measurement, "ctx")
        modulus = 2.0**7
        wraps = [r for r in inj.records if r.kind == "overflow"]
        assert wraps
        for record in wraps[:20]:
            rep, thread, row = record.coords
            j = out.event_names.index(record.event)
            assert clean_measurement.data[rep, thread, row, j] >= modulus
            assert out.data[rep, thread, row, j] < modulus

    def test_original_object_untouched(self, clean_measurement):
        before = clean_measurement.data.copy()
        FaultInjector(CONFIG).corrupt_measurement(clean_measurement, "ctx")
        np.testing.assert_array_equal(clean_measurement.data, before)


class TestTaskFaults:
    def test_transient_failure_clears_on_retry(self):
        inj = FaultInjector(FaultConfig(seed=1, run_failure_rate=1.0))
        with pytest.raises(TransientMeasurementError):
            inj.check_run_failure("ctx", attempt=0)
        inj.check_run_failure("ctx", attempt=1)  # no raise

    def test_persistent_failure_fires_every_attempt(self):
        inj = FaultInjector(
            FaultConfig(seed=1, run_failure_rate=1.0, transient=False)
        )
        for attempt in range(3):
            with pytest.raises(TransientMeasurementError):
                inj.check_run_failure("ctx", attempt=attempt)

    def test_crash_is_recorded_before_raising(self):
        inj = FaultInjector(FaultConfig(seed=1, crash_rate=1.0))
        with pytest.raises(InjectedWorkerCrash):
            inj.check_worker_crash("task")
        assert [r.kind for r in inj.records] == ["crash"]

    def test_hang_duration(self):
        inj = FaultInjector(FaultConfig(seed=1, hang_rate=1.0, hang_seconds=2.5))
        assert inj.hang_duration("task") == 2.5
        assert inj.hang_duration("task", attempt=1) == 0.0  # transient


class TestCacheCorruption:
    def test_truncates_existing_entries(self, tmp_path):
        blob = b"x" * 1000
        entry = tmp_path / "ab" / "abcd.npz"
        entry.parent.mkdir()
        entry.write_bytes(blob)
        inj = FaultInjector(FaultConfig(seed=1, cache_corruption_rate=1.0))
        assert inj.maybe_corrupt_cache(tmp_path, "ctx") == 1
        assert entry.stat().st_size == 500
        assert [r.kind for r in inj.records] == ["cache-corruption"]

    def test_skips_quarantine_dir(self, tmp_path):
        entry = tmp_path / "quarantine" / "abcd.npz"
        entry.parent.mkdir()
        entry.write_bytes(b"x" * 100)
        inj = FaultInjector(FaultConfig(seed=1, cache_corruption_rate=1.0))
        assert inj.maybe_corrupt_cache(tmp_path, "ctx") == 0
        assert entry.stat().st_size == 100

    def test_zero_rate_is_noop(self, tmp_path):
        inj = FaultInjector(FaultConfig(seed=1))
        assert inj.maybe_corrupt_cache(tmp_path, "ctx") == 0
