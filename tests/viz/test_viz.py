"""Tests for figure-series extraction and ASCII rendering."""

import numpy as np
import pytest

from repro.cat.measurement import MeasurementSet
from repro.core.basis import branch_basis
from repro.core.metrics import MetricDefinition
from repro.core.noise_filter import analyze_noise
from repro.core.signatures import branch_signatures
from repro.viz.ascii import grouped_series, log_scatter
from repro.viz.series import fig2_series, fig3_series


class TestLogScatter:
    def test_renders_threshold_line(self):
        plot = log_scatter([1e-12, 1e-6, 1e-2], threshold=1e-8, title="t")
        assert "tau = 1e-08" in plot
        assert plot.splitlines()[0] == "t"
        assert "*" in plot

    def test_zeros_plotted_at_floor(self):
        plot = log_scatter([0.0, 0.0, 1.0], threshold=None)
        # Zeros land on the 1e-16 axis row (formatted with a 3-digit
        # exponent), which must therefore exist and carry stars.
        bottom_rows = [l for l in plot.splitlines() if l.startswith("1e-016")]
        assert bottom_rows and "*" in bottom_rows[0]

    def test_empty(self):
        assert "(no data)" in log_scatter([], title="x")

    def test_monotone_layout(self):
        # Stars should trend upward left to right for sorted input.
        plot = log_scatter(np.logspace(-10, 0, 30))
        lines = [l for l in plot.splitlines() if "|" in l]
        first_star_rows = {}
        for row_idx, line in enumerate(lines):
            for col, ch in enumerate(line):
                if ch == "*":
                    first_star_rows.setdefault(col, row_idx)
        cols = sorted(first_star_rows)
        rows = [first_star_rows[c] for c in cols]
        # Lines render top-down, so larger values (later columns) appear on
        # earlier lines: row indices must be non-increasing left to right.
        assert rows == sorted(rows, reverse=True)


class TestGroupedSeries:
    def test_renders_legend_and_labels(self):
        plot = grouped_series(
            ["L1", "L2"],
            [("signature", [1.0, 0.0]), ("measured", [0.99, 0.01])],
            title="panel",
        )
        assert "o = signature" in plot
        assert "x = measured" in plot
        assert "L1" in plot and "L2" in plot

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            grouped_series(["a"], [("s", [1.0, 2.0])])


class TestFig2Series:
    def _report(self):
        data = np.zeros((2, 1, 2, 3))
        data[:, 0, :, 0] = 1.0  # exact
        data[0, 0, :, 1] = 1.0
        data[1, 0, :, 1] = 1.2  # noisy
        # event 2 all-zero -> discarded
        ms = MeasurementSet("b", ["r0", "r1"], ["e0", "e1", "e2"], data)
        return analyze_noise(ms, tau=1e-6)

    def test_extraction(self):
        series = fig2_series(self._report())
        assert series.n_zero_noise == 1
        assert series.n_above_tau == 1
        assert series.values.tolist() == sorted(series.values.tolist())

    def test_separation_gap(self):
        series = fig2_series(self._report())
        lo, hi = series.separation_gap()
        assert lo == 0.0
        assert hi > 1e-2


class TestFig3Series:
    def test_exact_combination_has_zero_deviation(self):
        basis = branch_basis()
        sig = {s.name: s for s in branch_signatures()}["Conditional Branches Retired."]
        metric = MetricDefinition(
            metric=sig.name,
            event_names=("COND",),
            coefficients=np.array([1.0]),
            error=0.0,
            signature=sig,
        )
        matrix = basis.expectation("CR").reshape(-1, 1)
        series = fig3_series(metric, sig, basis, matrix, ["COND"])
        assert series.max_abs_deviation == 0.0
        assert np.array_equal(series.measured, series.expected)

    def test_deviation_measures_noise(self):
        basis = branch_basis()
        sig = {s.name: s for s in branch_signatures()}["Conditional Branches Retired."]
        metric = MetricDefinition(
            metric=sig.name,
            event_names=("COND",),
            coefficients=np.array([1.0]),
            error=0.0,
            signature=sig,
        )
        matrix = (basis.expectation("CR") + 0.05).reshape(-1, 1)
        series = fig3_series(metric, sig, basis, matrix, ["COND"])
        assert series.max_abs_deviation == pytest.approx(0.05)

    def test_missing_event_in_matrix(self):
        basis = branch_basis()
        sig = branch_signatures()[0]
        metric = MetricDefinition(
            metric=sig.name,
            event_names=("GHOST",),
            coefficients=np.array([1.0]),
            error=0.0,
            signature=sig,
        )
        with pytest.raises(KeyError, match="GHOST"):
            fig3_series(metric, sig, basis, np.zeros((11, 1)), ["OTHER"])

    def test_zero_coefficients_do_not_require_columns(self):
        basis = branch_basis()
        sig = branch_signatures()[0]
        metric = MetricDefinition(
            metric=sig.name,
            event_names=("GHOST", "COND"),
            coefficients=np.array([0.0, 1.0]),
            error=0.0,
            signature=sig,
        )
        matrix = basis.expectation("CR").reshape(-1, 1)
        series = fig3_series(metric, sig, basis, matrix, ["COND"])
        assert series.measured.shape == (11,)
