"""Examples smoke test: every script in ``examples/`` must run headless.

Each example executes in a subprocess with ``REPRO_EXAMPLE_FAST=1`` (the
small-size override the slow examples honour), so example rot — an
import that moved, an API that changed shape, a metric name that no
longer exists — fails CI instead of the first user who copies the code.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs_headless(script: Path):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_FAST"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(script)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
