"""Unit tests for the tracing core: spans, counters, ids, JSONL, render."""

import threading

import pytest

from repro import obs
from repro.obs import NULL_TRACER, Span, Trace, Tracer, get_tracer, span_id
from repro.obs.trace import NULL_SPAN


class TestTracer:
    def test_disabled_tracer_is_all_noops(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        tracer.incr("c")
        tracer.gauge("g", 1.5)
        assert tracer.counters == {}
        assert tracer.gauges == {}
        assert tracer.spans == []

    def test_null_span_accepts_set_and_context(self):
        with NULL_TRACER.span("x") as span:
            assert span.set(a=1) is span

    def test_span_nesting_paths_and_depths(self):
        tracer = Tracer(seed=7)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        paths = [(s.path, s.depth) for s in tracer.spans]
        assert paths == [("outer", 0), ("outer/inner", 1), ("outer/inner", 1)]
        inner1, inner2 = tracer.spans[1], tracer.spans[2]
        assert inner1.parent == tracer.spans[0].id
        assert inner1.id != inner2.id  # occurrence disambiguates

    def test_span_ids_are_deterministic_functions_of_seed_and_path(self):
        a, b = Tracer(seed=7), Tracer(seed=7)
        for tracer in (a, b):
            with tracer.span("pipeline"):
                with tracer.span("measure"):
                    pass
        assert [s.id for s in a.spans] == [s.id for s in b.spans]
        assert a.spans[0].id == span_id(7, "pipeline", 0)
        c = Tracer(seed=8)
        with c.span("pipeline"):
            pass
        assert c.spans[0].id != a.spans[0].id

    def test_counters_accumulate_and_gauges_overwrite(self):
        tracer = Tracer()
        tracer.incr("n")
        tracer.incr("n", 4)
        tracer.gauge("g", 1)
        tracer.gauge("g", 2)
        assert tracer.counters == {"n": 5}
        assert tracer.gauges == {"g": 2}

    def test_non_scalar_attr_rejected(self):
        tracer = Tracer()
        with pytest.raises(TypeError, match="JSON scalar"):
            with tracer.span("s", bad=[1, 2]):
                pass
        with pytest.raises(TypeError):
            tracer.gauge("g", object())

    def test_slash_in_span_name_sanitized(self):
        tracer = Tracer()
        with tracer.span("a/b"):
            pass
        assert tracer.spans[0].name == "a-b"
        assert tracer.spans[0].path == "a-b"

    def test_durations_are_monotonic_nonnegative(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        assert tracer.spans[0].duration_ns >= 0


class TestAmbientStack:
    def test_default_is_null_tracer(self):
        assert get_tracer() is NULL_TRACER

    def test_tracing_scope_activates_and_restores(self):
        with obs.tracing(seed=1) as tracer:
            assert get_tracer() is tracer
            with obs.tracing(seed=2) as nested:
                assert get_tracer() is nested
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_stack_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with obs.tracing():
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_stack_is_thread_local(self):
        seen = {}

        def probe():
            seen["tracer"] = get_tracer()

        with obs.tracing():
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["tracer"] is NULL_TRACER


class TestTraceExport:
    def make_trace(self) -> Trace:
        tracer = Tracer(seed=11)
        with tracer.span("pipeline", domain="branch"):
            with tracer.span("measure") as span:
                span.set(events=3)
            with tracer.span("qrcp"):
                pass
        tracer.incr("qrcp.pivots", 4)
        tracer.gauge("alpha", 5e-4)
        return tracer.trace()

    def test_jsonl_round_trip_is_byte_equal(self):
        trace = self.make_trace()
        text = trace.to_jsonl()
        assert Trace.from_jsonl(text).to_jsonl() == text

    def test_header_counts_match_body(self):
        import json

        lines = self.make_trace().to_jsonl().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["spans"] == 3
        assert header["counters"] == 1
        assert header["gauges"] == 1
        assert len(lines) == 1 + 3 + 1 + 1

    def test_from_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError, match="not JSON"):
            Trace.from_jsonl("not json at all\n")
        with pytest.raises(ValueError, match="no header"):
            Trace.from_jsonl(
                '{"name":"c","type":"counter","value":1}\n'
            )
        with pytest.raises(ValueError, match="unknown record type"):
            Trace.from_jsonl(
                '{"counters":0,"gauges":0,"seed":0,"spans":0,'
                '"type":"header","version":1}\n{"type":"mystery"}\n'
            )
        with pytest.raises(ValueError, match="version"):
            Trace.from_jsonl(
                '{"counters":0,"gauges":0,"seed":0,"spans":0,'
                '"type":"header","version":99}\n'
            )

    def test_stage_timings_aggregate_depth_one(self):
        trace = self.make_trace()
        timings = trace.stage_timings()
        assert list(timings) == ["measure", "qrcp"]
        assert all(ns >= 0 for ns in timings.values())

    def test_footer_names_stages(self):
        footer = self.make_trace().footer()
        assert footer.startswith("trace: measure ")
        assert "qrcp" in footer
        assert "3 spans" in footer

    def test_render_tree_and_counters(self):
        text = self.make_trace().render()
        assert "pipeline" in text
        assert "|- measure" in text
        assert "`- qrcp" in text
        assert "qrcp.pivots" in text
        assert "domain=branch" in text

    def test_find_and_children(self):
        trace = self.make_trace()
        root = trace.find("pipeline")[0]
        assert [c.name for c in trace.children(root)] == ["measure", "qrcp"]
        assert trace.find("pipeline/measure")[0].attrs == {"events": 3}

    def test_counter_totals_sorted(self):
        tracer = Tracer()
        tracer.incr("z")
        tracer.incr("a")
        assert list(tracer.trace().counter_totals()) == ["a", "z"]


class TestSpanDataclass:
    def test_set_returns_self_for_chaining(self):
        span = Span(name="s", path="s", id="x", parent=None, index=0, depth=0)
        assert span.set(a=1).set(b="y") is span
        assert span.attrs == {"a": 1, "b": "y"}
