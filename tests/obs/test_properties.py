"""Property tests for the observability contract.

Two promises worth machine-checking:

1. Tracing is *observational*: a pipeline run inside an ``obs.tracing``
   scope is bit-identical — metrics, pivot order, guard stamps, raw
   coefficient bytes — to the same run with tracing disabled.
2. Trace export is *lossless*: ``Trace.from_jsonl(t.to_jsonl())``
   re-emits byte-equal JSONL, for arbitrary span trees and counter
   vocabularies (hypothesis-generated, not just the pipeline's).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import AnalysisPipeline
from repro.core.sweep import result_digest
from repro.guard import GuardConfig
from repro.hardware import aurora_node
from repro.linalg.lstsq import lstsq_qr
from repro.obs import Trace, Tracer


@pytest.fixture(scope="module")
def untraced():
    return AnalysisPipeline.for_domain("branch", aurora_node(seed=2024)).run()


@pytest.fixture(scope="module")
def traced():
    with obs.tracing(seed=2024):
        return AnalysisPipeline.for_domain("branch", aurora_node(seed=2024)).run()


class TestTracedBitIdentical:
    def test_result_digest_identical(self, traced, untraced):
        assert result_digest(traced) == result_digest(untraced)

    def test_qrcp_pivots_identical(self, traced, untraced):
        np.testing.assert_array_equal(
            traced.qrcp.permutation, untraced.qrcp.permutation
        )
        assert traced.selected_events == untraced.selected_events

    def test_coefficients_byte_identical(self, traced, untraced):
        assert set(traced.metrics) == set(untraced.metrics)
        for name in untraced.metrics:
            a = traced.metrics[name].coefficients
            b = untraced.metrics[name].coefficients
            assert np.asarray(a).tobytes() == np.asarray(b).tobytes()
            assert traced.metrics[name].error == untraced.metrics[name].error

    def test_guard_stamps_identical(self, traced, untraced):
        ha, hb = traced.qrcp.health, untraced.qrcp.health
        assert (ha is None) == (hb is None)
        if ha is not None:
            assert ha.guards_fired == hb.guards_fired
        for name in untraced.metrics:
            ta = traced.metrics[name].trust
            tb = untraced.metrics[name].trust
            assert (ta is None) == (tb is None)
            if ta is not None:
                assert ta.level == tb.level

    def test_trace_attached_only_when_tracing(self, traced, untraced):
        assert untraced.trace is None
        assert traced.trace is not None
        stages = {s.name for s in traced.trace.spans}
        for stage in (
            "pipeline",
            "measure",
            "noise-filter",
            "qrcp",
            "compose",
            "lstsq",
        ):
            assert stage in stages


class TestGuardLadderBitIdentical:
    """The fallback ladder fires guard.fired.* counters; the solution and
    the recorded guard stamps must not depend on whether anyone listens."""

    def make_system(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((24, 6))
        a[:, 5] = a[:, 0] + 1e-9 * rng.standard_normal(24)  # near-collinear
        b = rng.standard_normal(24)
        return a, b

    def test_solution_and_stamps_identical(self):
        a, b = self.make_system()
        guard = GuardConfig(condition_threshold=1e3)
        plain = lstsq_qr(a, b, guard=guard)
        with obs.tracing() as tracer:
            watched = lstsq_qr(a, b, guard=guard)
        assert plain.health is not None and plain.health.guards_fired
        assert watched.health.guards_fired == plain.health.guards_fired
        assert watched.x.tobytes() == plain.x.tobytes()
        assert watched.backward_error == plain.backward_error
        fired = {
            name: count
            for name, count in tracer.counters.items()
            if name.startswith("guard.fired.")
        }
        assert sum(fired.values()) == len(plain.health.guards_fired)


# --- hypothesis: JSONL round-trip over arbitrary traces -------------------

COUNTER_NAMES = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="._-"),
    min_size=1,
    max_size=24,
)
SPAN_NAMES = st.text(
    alphabet=st.sampled_from("abcdefghij-_"), min_size=1, max_size=12
)
SCALARS = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.text(max_size=20),
    st.none(),
)
ATTRS = st.dictionaries(
    st.text(alphabet=st.sampled_from("abcdexyz"), min_size=1, max_size=8),
    SCALARS,
    max_size=3,
)


@st.composite
def trace_programs(draw):
    """A random program: nested span opens/closes plus counters/gauges."""
    ops = []
    depth = 0
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        kind = draw(st.sampled_from(("open", "close", "incr", "gauge")))
        if kind == "open":
            ops.append(("open", draw(SPAN_NAMES), draw(ATTRS)))
            depth += 1
        elif kind == "close" and depth > 0:
            ops.append(("close",))
            depth -= 1
        elif kind == "incr":
            ops.append(
                ("incr", draw(COUNTER_NAMES), draw(st.integers(0, 10**6)))
            )
        elif kind == "gauge":
            ops.append(("gauge", draw(COUNTER_NAMES), draw(SCALARS)))
    ops.extend([("close",)] * depth)
    return ops


def run_program(ops, seed):
    tracer = Tracer(seed=seed)
    stack = []
    for op in ops:
        if op[0] == "open":
            ctx = tracer.span(op[1], **op[2])
            ctx.__enter__()
            stack.append(ctx)
        elif op[0] == "close":
            stack.pop().__exit__(None, None, None)
        elif op[0] == "incr":
            tracer.incr(op[1], op[2])
        elif op[0] == "gauge":
            tracer.gauge(op[1], op[2])
    return tracer.trace()


@given(ops=trace_programs(), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=150, deadline=None)
def test_jsonl_round_trip_byte_equal(ops, seed):
    trace = run_program(ops, seed)
    text = trace.to_jsonl()
    restored = Trace.from_jsonl(text)
    assert restored.to_jsonl() == text


@given(ops=trace_programs(), seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=50, deadline=None)
def test_round_trip_preserves_semantics(ops, seed):
    trace = run_program(ops, seed)
    restored = Trace.from_jsonl(trace.to_jsonl())
    assert restored.seed == trace.seed
    assert restored.counter_totals() == trace.counter_totals()
    assert restored.gauges == trace.gauges
    assert [(s.id, s.path, s.parent, s.depth, s.duration_ns) for s in restored.spans] \
        == [(s.id, s.path, s.parent, s.depth, s.duration_ns) for s in trace.spans]
