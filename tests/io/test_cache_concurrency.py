"""Concurrent-access regression tests for the measurement cache.

The serving layer points several worker threads at one shared cache; a
torn write or a reader observing a half-published entry would poison a
bit-deterministic pipeline silently.  These tests hammer one cache from
many threads and assert every observed measurement is intact.
"""

import threading

import numpy as np
import pytest

from repro.cat import BenchmarkRunner, BranchBenchmark
from repro.hardware import aurora_node
from repro.io.cache import MeasurementCache, measurement_cache_key


@pytest.fixture(scope="module")
def node():
    return aurora_node(seed=7)


@pytest.fixture(scope="module")
def bench():
    return BranchBenchmark()


@pytest.fixture(scope="module")
def registry(node, bench):
    return BenchmarkRunner(node, repetitions=2).select_events(bench)


@pytest.fixture(scope="module")
def measurement(node, bench, registry):
    return BenchmarkRunner(node, repetitions=2).run(bench, events=registry)


def _run_threads(workers):
    errors = []

    def wrap(fn):
        def body():
            try:
                fn()
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        return body

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestConcurrentAccess:
    def test_racing_writers_one_key(self, tmp_path, node, bench, registry, measurement):
        """N threads putting the same content address concurrently: the
        entry stays intact and every subsequent read verifies."""
        cache = MeasurementCache(root=tmp_path, max_memory_entries=1)
        key = measurement_cache_key(node, bench, registry, 2)
        barrier = threading.Barrier(8)

        def writer():
            barrier.wait()
            cache.put(key, measurement)

        _run_threads([writer] * 8)
        assert cache.verify_all() == []  # nothing quarantined
        fresh = MeasurementCache(root=tmp_path, max_memory_entries=1)
        got = fresh.get(key)
        assert got is not None
        np.testing.assert_array_equal(got.data, measurement.data)
        # No stray scratch files left behind by the racing publications.
        assert list((tmp_path / "tmp").glob("*/*")) == []

    def test_concurrent_get_or_measure_single_measurement_content(
        self, tmp_path, node, bench, registry, measurement
    ):
        """Racing get_or_measure callers all observe identical content;
        racing writers re-publish the same bytes, never torn ones."""
        cache = MeasurementCache(root=tmp_path, max_memory_entries=4)
        key = measurement_cache_key(node, bench, registry, 2)
        barrier = threading.Barrier(8)
        results = []
        lock = threading.Lock()

        def caller():
            barrier.wait()
            got = cache.get_or_measure(key, lambda: measurement)
            with lock:
                results.append(got)

        _run_threads([caller] * 8)
        assert len(results) == 8
        for got in results:
            np.testing.assert_array_equal(got.data, measurement.data)
        assert cache.verify_all() == []

    def test_reader_never_sees_partial_entry(
        self, tmp_path, node, bench, registry, measurement
    ):
        """Writers and cold readers race on one key: a reader gets either
        a clean miss or a fully verified measurement — never corruption
        (the .npz is published last, gating reads)."""
        writer_cache = MeasurementCache(root=tmp_path, max_memory_entries=1)
        key = measurement_cache_key(node, bench, registry, 2)
        stop = threading.Event()
        observed = []
        lock = threading.Lock()

        def writer():
            while not stop.is_set():
                writer_cache.put(key, measurement)

        def reader():
            # A fresh cache instance per read = no shared memory layer;
            # every get exercises the disk path incl. checksum verify.
            while not stop.is_set():
                got = MeasurementCache(root=tmp_path, max_memory_entries=1).get(key)
                if got is not None:
                    with lock:
                        observed.append(got)
                    if len(observed) >= 20:
                        stop.set()

        timer = threading.Timer(10.0, stop.set)
        timer.start()
        try:
            _run_threads([writer, writer, reader, reader])
        finally:
            timer.cancel()
        assert observed, "readers never saw the published entry"
        for got in observed:
            np.testing.assert_array_equal(got.data, measurement.data)
        # Nothing was quarantined: no reader ever saw a torn entry.
        assert not (tmp_path / "quarantine").exists()
