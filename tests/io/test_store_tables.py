"""Tests for persistence and tabular export."""

import numpy as np
import pytest

from repro.cat.measurement import MeasurementSet
from repro.io.store import (
    load_measurements,
    load_presets,
    save_measurements,
    save_presets,
)
from repro.io.tables import render_markdown_table, write_csv, write_markdown
from repro.papi.presets import PresetMetric, PresetTable


@pytest.fixture
def measurement():
    rng = np.random.default_rng(0)
    return MeasurementSet(
        benchmark="branch",
        row_labels=["k1", "k2", "k3"],
        event_names=["A", "B"],
        data=rng.random((2, 1, 3, 2)),
    )


class TestMeasurementStore:
    def test_roundtrip(self, measurement, tmp_path):
        path = save_measurements(measurement, tmp_path / "snap")
        assert path.suffix == ".npz"
        loaded = load_measurements(tmp_path / "snap")
        assert loaded.benchmark == measurement.benchmark
        assert loaded.row_labels == measurement.row_labels
        assert loaded.event_names == measurement.event_names
        assert np.array_equal(loaded.data, measurement.data)

    def test_roundtrip_with_npz_suffix(self, measurement, tmp_path):
        save_measurements(measurement, tmp_path / "snap.npz")
        loaded = load_measurements(tmp_path / "snap.npz")
        assert np.array_equal(loaded.data, measurement.data)

    def test_missing_sidecar(self, measurement, tmp_path):
        save_measurements(measurement, tmp_path / "snap")
        (tmp_path / "snap.json").unlink()
        with pytest.raises(FileNotFoundError):
            load_measurements(tmp_path / "snap")

    def test_corrupt_shape_detected(self, measurement, tmp_path):
        save_measurements(measurement, tmp_path / "snap")
        sidecar = tmp_path / "snap.json"
        text = sidecar.read_text().replace('"benchmark": "branch"', '"benchmark": "branch"')
        import json

        meta = json.loads(sidecar.read_text())
        meta["shape"][0] += 1
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="corrupt"):
            load_measurements(tmp_path / "snap")


class TestPresetStore:
    def test_roundtrip(self, tmp_path):
        table = PresetTable("spr")
        table.define(
            PresetMetric(
                name="PAPI_DP_OPS",
                terms={"FP_A": 2.0, "FP_B": 1.0},
                fitness=1e-16,
                description="DP FLOPs",
            )
        )
        path = save_presets(table, tmp_path / "presets.json")
        loaded = load_presets(path)
        assert loaded.architecture == "spr"
        preset = loaded.get("PAPI_DP_OPS")
        assert dict(preset.terms) == {"FP_A": 2.0, "FP_B": 1.0}
        assert preset.fitness == 1e-16
        assert preset.description == "DP FLOPs"


class TestTables:
    def test_markdown_alignment(self):
        text = render_markdown_table(["name", "v"], [["a", 1.5], ["bb", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(line.startswith("|") and line.endswith("|") for line in lines)
        assert "bb" in lines[3]

    def test_float_formatting(self):
        text = render_markdown_table(["v"], [[1.23e-17], [0.0], [12.5]])
        assert "1.230e-17" in text
        assert "| 0" in text
        assert "12.5" in text

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "out" / "t.csv", ["a", "b"], [[1, "x,y"]])
        content = path.read_text()
        assert content.splitlines()[0] == "a,b"
        assert "x;y" in content  # comma sanitized

    def test_write_markdown_with_title(self, tmp_path):
        path = write_markdown(tmp_path / "t.md", ["h"], [["v"]], title="Table")
        content = path.read_text()
        assert content.startswith("# Table")
        assert "| v" in content
