"""Integrity tests for the measurement cache: checksums, quarantine,
and graceful disk-layer degradation."""

import json
import logging

import numpy as np
import pytest

from repro.cat import BranchBenchmark
from repro.cat.runner import BenchmarkRunner
from repro.faults import FaultConfig, FaultInjector
from repro.io.cache import MeasurementCache, measurement_cache_key
from repro.hardware.systems import aurora_node


@pytest.fixture(scope="module")
def keyed_measurement():
    node = aurora_node()
    runner = BenchmarkRunner(node)
    bench = BranchBenchmark()
    registry = runner.select_events(bench)
    key = measurement_cache_key(node, bench, registry, 5)
    return key, runner.run(bench, events=registry)


class TestChecksums:
    def test_put_writes_checksum_sidecar(self, tmp_path, keyed_measurement):
        key, m = keyed_measurement
        cache = MeasurementCache(root=tmp_path)
        cache.put(key, m)
        sidecar = (tmp_path / key[:2] / key).with_suffix(".sha256")
        assert sidecar.exists()
        checksums = json.loads(sidecar.read_text())
        assert set(checksums) == {"npz", "json"}

    def test_verified_roundtrip(self, tmp_path, keyed_measurement):
        key, m = keyed_measurement
        cache = MeasurementCache(root=tmp_path)
        cache.put(key, m)
        cache.clear()
        loaded = cache.get(key)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.data, m.data)
        assert cache.stats.corrupt == 0

    def test_legacy_entry_without_checksum_still_loads(
        self, tmp_path, keyed_measurement
    ):
        key, m = keyed_measurement
        cache = MeasurementCache(root=tmp_path)
        cache.put(key, m)
        (tmp_path / key[:2] / key).with_suffix(".sha256").unlink()
        fresh = MeasurementCache(root=tmp_path)
        assert fresh.get(key) is not None


class TestQuarantine:
    def test_truncated_entry_is_quarantined_miss(
        self, tmp_path, keyed_measurement
    ):
        key, m = keyed_measurement
        cache = MeasurementCache(root=tmp_path)
        cache.put(key, m)
        injector = FaultInjector(FaultConfig(seed=1, cache_corruption_rate=1.0))
        assert injector.maybe_corrupt_cache(tmp_path, "test") == 1

        fresh = MeasurementCache(root=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.corrupt == 1
        assert fresh.quarantined == [key]
        # Evidence preserved, entry gone from the main tree.
        assert list((tmp_path / "quarantine").iterdir())
        assert not (tmp_path / key[:2] / key).with_suffix(".npz").exists()

    def test_sidecar_tamper_is_caught(self, tmp_path, keyed_measurement):
        """Corruption the npz decoder would happily accept (a tampered
        JSON sidecar) is still caught by the checksum."""
        key, m = keyed_measurement
        cache = MeasurementCache(root=tmp_path)
        cache.put(key, m)
        sidecar = (tmp_path / key[:2] / key).with_suffix(".json")
        meta = json.loads(sidecar.read_text())
        meta["benchmark"] = "tampered"
        sidecar.write_text(json.dumps(meta))
        fresh = MeasurementCache(root=tmp_path)
        assert fresh.get(key) is None
        assert fresh.quarantined == [key]

    def test_get_or_measure_transparently_remeasures(
        self, tmp_path, keyed_measurement
    ):
        key, m = keyed_measurement
        cache = MeasurementCache(root=tmp_path)
        cache.put(key, m)
        FaultInjector(
            FaultConfig(seed=1, cache_corruption_rate=1.0)
        ).maybe_corrupt_cache(tmp_path, "test")
        fresh = MeasurementCache(root=tmp_path)
        recovered = fresh.get_or_measure(key, lambda: m)
        np.testing.assert_array_equal(recovered.data, m.data)
        # The re-measured entry replaces the corrupt one and verifies.
        final = MeasurementCache(root=tmp_path)
        assert final.get(key) is not None

    def test_quarantine_logs_warning(self, tmp_path, keyed_measurement, caplog):
        key, m = keyed_measurement
        cache = MeasurementCache(root=tmp_path)
        cache.put(key, m)
        (tmp_path / key[:2] / key).with_suffix(".npz").write_bytes(b"junk")
        fresh = MeasurementCache(root=tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.io.cache"):
            fresh.get(key)
        assert any("quarantined" in r.message for r in caplog.records)


class TestFsck:
    def test_verify_all_quarantines_unread_corruption(
        self, tmp_path, keyed_measurement
    ):
        """Corruption nobody happens to read (e.g. injected after the
        owning task's read) is still caught by the directory fsck."""
        key, m = keyed_measurement
        cache = MeasurementCache(root=tmp_path)
        cache.put(key, m)
        (tmp_path / key[:2] / key).with_suffix(".npz").write_bytes(b"junk")
        fsck = MeasurementCache(root=tmp_path)
        assert fsck.verify_all() == [key]
        assert fsck.quarantined == [key]
        assert list((tmp_path / "quarantine").iterdir())
        # The directory is clean now: a second pass finds nothing.
        assert MeasurementCache(root=tmp_path).verify_all() == []

    def test_verify_all_passes_clean_directory(self, tmp_path, keyed_measurement):
        key, m = keyed_measurement
        cache = MeasurementCache(root=tmp_path)
        cache.put(key, m)
        assert cache.verify_all() == []
        assert cache.stats.corrupt == 0

    def test_verify_all_on_memory_only_cache(self):
        assert MeasurementCache().verify_all() == []


class TestDiskLayerDegradation:
    def test_unwritable_root_disables_disk_layer(
        self, tmp_path, keyed_measurement, caplog
    ):
        key, m = keyed_measurement
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        cache = MeasurementCache(root=blocker / "sub")
        with caplog.at_level(logging.WARNING, logger="repro.io.cache"):
            cache.put(key, m)
        assert cache.root is None  # disk layer off...
        assert cache.get(key) is not None  # ...memory layer still serves
        assert any("not writable" in r.message for r in caplog.records)
