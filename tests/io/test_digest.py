"""Tests for the shared SHA-256 digest helpers.

Every content address in the repo (measurement cache keys, sweep
fingerprints, trace span ids, catalog digests) routes through this one
module, so its invariants are load-bearing: chunking must not matter,
canonical JSON must be key-order independent, and truncation must be a
prefix.
"""

import hashlib

import pytest

from repro.io.digest import canonical_json, file_digest, json_digest, sha256_hex


class TestSha256Hex:
    def test_matches_hashlib(self):
        assert sha256_hex(b"abc") == hashlib.sha256(b"abc").hexdigest()

    def test_str_chunks_are_utf8(self):
        assert sha256_hex("abc") == sha256_hex(b"abc")
        assert sha256_hex("caché") == sha256_hex("caché".encode("utf-8"))

    def test_chunking_is_equivalent_to_concatenation(self):
        # h.update(a); h.update(b) == h.update(a+b) — chunk boundaries
        # must never change the address.
        assert sha256_hex("ab", "cd", b"ef") == sha256_hex(b"abcdef")

    def test_length_truncates_prefix(self):
        full = sha256_hex(b"payload")
        assert sha256_hex(b"payload", length=16) == full[:16]
        assert len(full) == 64

    def test_distinct_inputs_distinct_digests(self):
        assert sha256_hex(b"a") != sha256_hex(b"b")


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_round_trips_nested_payloads(self):
        payload = {"x": [1, 2.5, "s"], "y": {"nested": None}}
        import json

        assert json.loads(canonical_json(payload)) == payload

    def test_json_digest_is_digest_of_canonical_form(self):
        payload = {"b": 1, "a": [2, 3]}
        assert json_digest(payload) == sha256_hex(canonical_json(payload))

    def test_json_digest_length(self):
        assert len(json_digest({"k": "v"}, length=16)) == 16


class TestFileDigest:
    def test_matches_content_digest(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"\x00\x01" * 1000)
        assert file_digest(path) == sha256_hex(b"\x00\x01" * 1000)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            file_digest(tmp_path / "absent")
