"""Tests for the content-addressed measurement cache."""

import numpy as np
import pytest

from repro.cat import BenchmarkRunner, BranchBenchmark
from repro.hardware import aurora_node
from repro.io import load_measurements, save_measurements
from repro.io.cache import (
    MeasurementCache,
    event_set_digest,
    measurement_cache_key,
)


@pytest.fixture(scope="module")
def node():
    return aurora_node(seed=7)


@pytest.fixture(scope="module")
def bench():
    return BranchBenchmark()


@pytest.fixture(scope="module")
def registry(node, bench):
    return BenchmarkRunner(node, repetitions=2).select_events(bench)


@pytest.fixture(scope="module")
def measurement(node, bench, registry):
    return BenchmarkRunner(node, repetitions=2).run(bench, events=registry)


class TestCacheKey:
    def test_deterministic(self, node, bench, registry):
        a = measurement_cache_key(node, bench, registry, 2)
        b = measurement_cache_key(node, bench, registry, 2)
        assert a == b and len(a) == 64

    def test_sensitive_to_seed(self, bench, registry):
        a = measurement_cache_key(aurora_node(seed=1), bench, registry, 2)
        b = measurement_cache_key(aurora_node(seed=2), bench, registry, 2)
        assert a != b

    def test_sensitive_to_repetitions(self, node, bench, registry):
        assert measurement_cache_key(node, bench, registry, 2) != (
            measurement_cache_key(node, bench, registry, 3)
        )

    def test_sensitive_to_event_set(self, node, bench, registry):
        subset = list(registry)[:-1]
        assert measurement_cache_key(node, bench, registry, 2) != (
            measurement_cache_key(node, bench, subset, 2)
        )

    def test_digest_covers_event_content(self, registry):
        events = list(registry)
        full = event_set_digest(events)
        assert event_set_digest(events) == full
        assert event_set_digest(events[:-1]) != full


class TestMeasurementCache:
    def test_memory_hit(self, node, bench, registry, measurement):
        cache = MeasurementCache()
        key = measurement_cache_key(node, bench, registry, 2)
        assert cache.get(key) is None
        cache.put(key, measurement)
        assert cache.get(key) is measurement
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self, measurement):
        cache = MeasurementCache(max_memory_entries=2)
        cache.put("a" * 64, measurement)
        cache.put("b" * 64, measurement)
        cache.get("a" * 64)  # refresh "a": "b" becomes eviction victim
        cache.put("c" * 64, measurement)
        assert cache.get("b" * 64) is None
        assert cache.get("a" * 64) is not None
        assert cache.get("c" * 64) is not None

    def test_eviction_stats_and_counter(self, measurement):
        from repro.obs import tracing

        with tracing(seed=0) as tracer:
            cache = MeasurementCache(max_memory_entries=2)
            cache.put("a" * 64, measurement)
            cache.put("b" * 64, measurement)
            assert cache.stats.evictions == 0
            cache.put("c" * 64, measurement)  # displaces "a"
            cache.put("d" * 64, measurement)  # displaces "b"
            assert cache.stats.evictions == 2
            assert tracer.counters.get("cache.evictions") == 2
        # Memory-only hits/misses also flow through the obs counters.
        with tracing(seed=0) as tracer:
            cache = MeasurementCache()
            cache.get("e" * 64)
            cache.put("e" * 64, measurement)
            cache.get("e" * 64)
            assert cache.stats.memory_hits == 1
            assert cache.stats.misses == 1
            assert tracer.counters.get("cache.memory_hits") == 1
            assert tracer.counters.get("cache.misses") == 1

    def test_disk_round_trip(self, tmp_path, node, bench, registry, measurement):
        cache = MeasurementCache(root=tmp_path)
        key = measurement_cache_key(node, bench, registry, 2)
        cache.put(key, measurement)
        cache.clear()
        loaded = cache.get(key)
        assert cache.stats.disk_hits == 1
        assert np.array_equal(loaded.data, measurement.data)
        assert loaded.event_names == measurement.event_names
        assert loaded.pmu_runs == measurement.pmu_runs

    def test_get_or_measure_runs_once(self, measurement):
        cache = MeasurementCache()
        calls = []

        def produce():
            calls.append(1)
            return measurement

        assert cache.get_or_measure("k" * 64, produce) is measurement
        assert cache.get_or_measure("k" * 64, produce) is measurement
        assert len(calls) == 1

    def test_rejects_empty_capacity(self):
        with pytest.raises(ValueError):
            MeasurementCache(max_memory_entries=0)


class TestPmuRunsPersistence:
    def test_round_trip(self, tmp_path, measurement):
        assert measurement.pmu_runs is not None  # attached by the runner
        path = save_measurements(measurement, tmp_path / "snap")
        loaded = load_measurements(path)
        assert loaded.pmu_runs == measurement.pmu_runs

    def test_views_propagate_pmu_runs(self, measurement):
        assert measurement.thread_median().pmu_runs == measurement.pmu_runs
        subset = measurement.select_events(measurement.event_names[:3])
        assert subset.pmu_runs == measurement.pmu_runs

    def test_legacy_sidecar_without_pmu_runs(self, tmp_path, measurement):
        import json

        path = save_measurements(measurement, tmp_path / "legacy")
        sidecar = path.with_suffix(".json")
        meta = json.loads(sidecar.read_text())
        del meta["pmu_runs"]
        sidecar.write_text(json.dumps(meta))
        assert load_measurements(path).pmu_runs is None
