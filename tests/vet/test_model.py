"""Verdict taxonomy and validation-report serialization."""

import pytest

from repro.vet import (
    ACCURATE,
    MULTI_COUNTING,
    OVERCOUNTING,
    REFUTED_VERDICTS,
    UNDERCOUNTING,
    UNRELIABLE,
    UNVETTED,
    VERDICTS,
    EventVerdict,
    ValidationReport,
)


class TestTaxonomy:
    def test_refuted_set_matches_roehl(self):
        assert set(REFUTED_VERDICTS) == {
            OVERCOUNTING,
            UNDERCOUNTING,
            MULTI_COUNTING,
            UNRELIABLE,
        }
        assert ACCURATE not in REFUTED_VERDICTS
        assert UNVETTED not in REFUTED_VERDICTS

    def test_every_refuted_verdict_is_a_verdict(self):
        assert set(REFUTED_VERDICTS) < set(VERDICTS)

    def test_unknown_verdict_rejected(self):
        with pytest.raises(ValueError, match="unknown verdict"):
            EventVerdict(event="E", verdict="suspicious")

    def test_refuted_property(self):
        assert EventVerdict(event="E", verdict=OVERCOUNTING).refuted
        assert not EventVerdict(event="E", verdict=ACCURATE).refuted
        assert not EventVerdict(event="E", verdict=UNVETTED).refuted


class TestEventVerdict:
    def test_payload_round_trip(self):
        verdict = EventVerdict(
            event="PAPI_TOT_INS",
            verdict=MULTI_COUNTING,
            ratio_median=2.0,
            ratio_min=1.98,
            ratio_max=2.02,
            tolerance=0.03,
            n_observations=24,
            n_deviating=24,
            ghost_rows=1,
            reasons=("counts 2x per documented occurrence",),
        )
        assert EventVerdict.from_payload(verdict.to_payload()) == verdict

    def test_describe_names_event_and_verdict(self):
        verdict = EventVerdict(
            event="E", verdict=UNDERCOUNTING, ratio_median=0.5
        )
        text = verdict.describe()
        assert "E" in text and UNDERCOUNTING in text and "0.5" in text


def _report():
    return ValidationReport(
        arch="aurora-spr",
        system="aurora",
        seed=7,
        n_configs=2,
        domains=("cpu_flops",),
        probes=("cpu_flops",),
        verdicts={
            "GOOD": EventVerdict(event="GOOD", verdict=ACCURATE),
            "BAD": EventVerdict(
                event="BAD", verdict=OVERCOUNTING, ratio_median=1.5
            ),
        },
        unvetted=("NEVER_SEEN",),
    )


class TestValidationReport:
    def test_refuted_and_accurate_partitions(self):
        report = _report()
        assert report.refuted_events() == ["BAD"]
        assert report.accurate_events() == ["GOOD"]

    def test_verdict_counts_include_unvetted(self):
        counts = _report().verdict_counts()
        assert counts[ACCURATE] == 1
        assert counts[OVERCOUNTING] == 1
        assert counts[UNVETTED] == 1

    def test_source_is_reproducible_provenance(self):
        assert _report().source == "vet-campaign[aurora/aurora-spr seed=7 configs=2]"

    def test_summary_lists_refuted(self):
        summary = _report().summary()
        assert "refuted events:" in summary
        assert "BAD" in summary

    def test_save_load_round_trip(self, tmp_path):
        report = _report()
        path = report.save(tmp_path / "report.json")
        loaded = ValidationReport.load(path)
        assert loaded.to_payload() == report.to_payload()
        assert loaded.content_digest() == report.content_digest()

    def test_newer_format_rejected(self):
        payload = _report().to_payload()
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="newer"):
            ValidationReport.from_payload(payload)
