"""Drift detection over catalog version history, and staleness checks."""

import pytest

from repro.core.pipeline import AnalysisPipeline
from repro.events.registry import EventRegistry
from repro.hardware.systems import aurora_node
from repro.serve.catalog import MetricCatalogStore, entries_from_result
from repro.vet import (
    DriftAnomaly,
    DriftReport,
    TrustPriors,
    anomalies_from_diff,
    detect_drift,
    forge_registry,
    stale_entry_rows,
)
from tests.vet.conftest import FORGE_TARGET


def _anomaly(kind="error-shift"):
    return DriftAnomaly(
        kind=kind,
        arch="aurora-spr",
        metric="M",
        config_digest="abc",
        version_a=1,
        version_b=2,
        detail="d",
    )


class TestDriftAnomaly:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown anomaly kind"):
            _anomaly(kind="vibes")

    def test_describe_and_payload(self):
        anomaly = _anomaly()
        assert "v1->v2" in anomaly.describe()
        assert anomaly.to_payload()["kind"] == "error-shift"


class TestAnomaliesFromDiff:
    def test_identical_diff_is_clean(self):
        assert anomalies_from_diff({"identical": True}, "a", "d") == []

    def test_every_kind_extracted(self):
        payload = {
            "identical": False,
            "metric": "M",
            "version_a": 1,
            "version_b": 2,
            "added_terms": {"NEW": 1.0},
            "removed_terms": {"OLD": 1.0},
            "changed_terms": {"E": [1.0, 2.0]},
            "error_a": 0.1,
            "error_b": 0.2,
            "trust_a": "certified",
            "trust_b": "caution",
            "verdict_flips": {"E": [None, "accurate"]},
            "events_digest_changed": True,
            "guards_a": [],
            "guards_b": ["fallback"],
        }
        kinds = {a.kind for a in anomalies_from_diff(payload, "arch", "d")}
        assert kinds == {
            "term-change",
            "coefficient-drift",
            "error-shift",
            "trust-transition",
            "verdict-flip",
            "registry-change",
            "guard-change",
        }

    def test_worst_coefficient_named(self):
        payload = {
            "identical": False,
            "metric": "M",
            "version_a": 1,
            "version_b": 2,
            "changed_terms": {"SMALL": [1.0, 1.001], "BIG": [1.0, 3.0]},
        }
        (anomaly,) = anomalies_from_diff(payload, "arch", "d")
        assert anomaly.kind == "coefficient-drift"
        assert "BIG" in anomaly.detail


class TestDriftReport:
    def test_empty_report_not_flagged(self):
        report = DriftReport(keys_scanned=3, versions_scanned=3)
        assert not report.flagged
        assert "no anomalies" in report.summary()

    def test_by_kind_and_payload(self):
        report = DriftReport(anomalies=[_anomaly(), _anomaly()])
        assert report.by_kind() == {"error-shift": 2}
        payload = report.to_payload()
        assert payload["flagged"] is True
        assert len(payload["anomalies"]) == 2


@pytest.fixture(scope="module")
def transitioned_store(tmp_path_factory, forged_report):
    """A catalog holding a clean version and a vetted (prior-gated)
    version of the same cpu_flops keys."""
    node = aurora_node()
    clean = AnalysisPipeline.for_domain("cpu_flops", node).run()
    vetted_node = aurora_node()
    vetted_node.events = forge_registry(
        vetted_node.events, {FORGE_TARGET: ("overcount", 1.5)}
    )
    vetted = AnalysisPipeline.for_domain(
        "cpu_flops",
        vetted_node,
        priors=TrustPriors.from_report(forged_report),
    ).run()
    store = MetricCatalogStore(
        tmp_path_factory.mktemp("drift") / "catalog", durable=False
    )
    digest = node.events.content_digest()
    per_event = node.events.event_digests()
    for result in (clean, vetted):
        for entry in entries_from_result(
            result,
            arch=node.name,
            seed=2024,
            events_digest=digest,
            event_digests=per_event,
        ):
            store.put(entry)
    return store


class TestDetectDrift:
    def test_transition_is_flagged(self, transitioned_store):
        report = detect_drift(transitioned_store, arch="aurora-spr")
        assert report.flagged
        kinds = set(report.by_kind())
        # The refuted event left the composition, so the definition moved
        # and the vet verdicts flipped from absent to judged.
        assert {"term-change", "coefficient-drift"} & kinds
        assert "verdict-flip" in kinds

    def test_single_version_keys_are_stable(self, tmp_path):
        node = aurora_node()
        result = AnalysisPipeline.for_domain("cpu_flops", node).run()
        store = MetricCatalogStore(tmp_path / "catalog", durable=False)
        for entry in entries_from_result(
            result,
            arch=node.name,
            seed=2024,
            events_digest=node.events.content_digest(),
        ):
            store.put(entry)
        report = detect_drift(store)
        assert report.keys_scanned > 0
        assert not report.flagged


class TestStaleEntries:
    def test_live_registry_matches_nothing_stale(self, transitioned_store):
        live = {"aurora-spr": aurora_node(seed=0).events}
        assert stale_entry_rows(transitioned_store, live) == []

    def test_removed_event_marks_entries_stale(self, transitioned_store):
        row = transitioned_store.list_entries(None)[0]
        entry = transitioned_store.get(
            row["arch"], row["metric"], row["config_digest"]
        )
        dropped = sorted(entry.event_digests)[0]
        pruned = EventRegistry(name="pruned")
        for event in aurora_node(seed=0).events:
            if event.full_name != dropped:
                pruned.add(event)
        rows = stale_entry_rows(transitioned_store, {"aurora-spr": pruned})
        assert rows
        assert all("stale_reason" in row for row in rows)
        assert any(dropped in row["stale_reason"] for row in rows)

    def test_unknown_architecture_is_stale(self, transitioned_store):
        rows = stale_entry_rows(transitioned_store, {})
        assert rows
        assert all("no live registry" in row["stale_reason"] for row in rows)
