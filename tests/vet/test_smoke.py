"""The seeded end-to-end smoke scenario CI runs.

This is the acceptance criterion in executable form: a forged
overcounting event on SPR is refuted and excluded from composition while
the healthy path stays bit-identical, and the catalog transition is
flagged by drift detection.
"""

from repro.vet import run_vet_smoke
from tests.vet.conftest import FORGE_TARGET


def test_vet_smoke_passes(tmp_path):
    outcome = run_vet_smoke(seed=2024, root=tmp_path)
    assert outcome.passed, outcome.describe()
    # The scenario's pieces, individually visible:
    assert outcome.target_event == FORGE_TARGET
    assert outcome.healthy_refuted == ()
    assert outcome.forged_verdict == "overcounting"
    assert outcome.excluded_by_prior == (FORGE_TARGET,)
    assert outcome.bit_identical
    assert {"term-change", "coefficient-drift"} & set(
        outcome.drift_anomaly_kinds
    )
    assert outcome.describe().endswith("verdict: PASS")
