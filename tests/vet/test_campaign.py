"""Validation campaigns: healthy registries pass, forged ones are caught."""

import pytest

from repro.vet import (
    ACCURATE,
    MULTI_COUNTING,
    OVERCOUNTING,
    UNRELIABLE,
    CampaignConfig,
    run_campaign,
)
from tests.vet.conftest import FORGE_TARGET


class TestHealthyCampaign:
    def test_refutes_nothing(self, healthy_report):
        # The hard requirement behind the tolerance design: conservative
        # bands (no sqrt-repetitions gain, z=4) must never refute a
        # counter that honours its documentation, however noisy.
        assert healthy_report.refuted_events() == []

    def test_vets_a_substantial_set(self, healthy_report):
        assert len(healthy_report.accurate_events()) >= 50

    def test_unvetted_disjoint_from_verdicts(self, healthy_report):
        assert not set(healthy_report.unvetted) & set(healthy_report.verdicts)

    def test_verdicts_carry_observations(self, healthy_report):
        for verdict in healthy_report.verdicts.values():
            assert verdict.n_observations > 0 or verdict.ghost_rows > 0

    def test_provenance(self, healthy_report, campaign_config):
        assert healthy_report.system == "aurora"
        assert healthy_report.arch == "aurora-spr"
        assert healthy_report.seed == campaign_config.seed
        assert healthy_report.domains == ("cpu_flops",)
        assert "cpu_flops" in healthy_report.probes


class TestForgedCampaign:
    def test_overcount_refuted(self, forged_report):
        verdict = forged_report.verdicts[FORGE_TARGET]
        assert verdict.verdict == OVERCOUNTING
        assert verdict.refuted
        assert verdict.ratio_median == pytest.approx(1.5, rel=1e-6)

    def test_only_the_forged_event_refuted(self, forged_report):
        assert forged_report.refuted_events() == [FORGE_TARGET]

    def test_multicount_classified_by_integer_ratio(self, campaign_config):
        report = run_campaign(
            "aurora",
            campaign_config,
            forge={FORGE_TARGET: ("multicount", 3.0)},
        )
        verdict = report.verdicts[FORGE_TARGET]
        assert verdict.verdict == MULTI_COUNTING
        assert "3x" in "; ".join(verdict.reasons)

    def test_unreliable_wobble_classified(self, campaign_config):
        report = run_campaign(
            "aurora",
            campaign_config,
            forge={FORGE_TARGET: ("unreliable", 0.5)},
        )
        assert report.verdicts[FORGE_TARGET].verdict == UNRELIABLE


class TestDeterminism:
    def test_same_seed_same_verdicts(self, healthy_report, campaign_config):
        again = run_campaign("aurora", campaign_config)
        assert again.to_payload() == healthy_report.to_payload()
        assert again.content_digest() == healthy_report.content_digest()


class TestValidation:
    def test_unknown_system_raises(self, campaign_config):
        with pytest.raises(KeyError, match="unknown system"):
            run_campaign("cray", campaign_config)

    def test_unmeasurable_domain_raises(self):
        config = CampaignConfig(domains=("gpu_flops",))
        with pytest.raises(KeyError, match="not probed"):
            run_campaign("aurora", config)

    def test_config_bounds(self):
        with pytest.raises(ValueError):
            CampaignConfig(n_configs=0)
        with pytest.raises(ValueError):
            CampaignConfig(repetitions=1)
        with pytest.raises(ValueError):
            CampaignConfig(min_tolerance=0.0)
