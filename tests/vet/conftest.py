"""Shared campaign fixtures for the vet suite.

Campaigns are the expensive part (each runs every probe across perturbed
configs), so the healthy and the forged campaign run once per session
and every module asserts on the same reports.
"""

import pytest

from repro.vet import CampaignConfig, run_campaign

#: The deterministic event the cpu_flops QRCP selection depends on at
#: seed 2024 — verified by tests/vet/test_smoke.py against the live run.
FORGE_TARGET = "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE"


@pytest.fixture(scope="session")
def campaign_config():
    return CampaignConfig(
        seed=2024, n_configs=2, repetitions=3, domains=("cpu_flops",)
    )


@pytest.fixture(scope="session")
def healthy_report(campaign_config):
    return run_campaign("aurora", campaign_config)


@pytest.fixture(scope="session")
def forged_report(campaign_config):
    return run_campaign(
        "aurora",
        campaign_config,
        forge={FORGE_TARGET: ("overcount", 1.5)},
    )
