"""Trust priors in the pipeline: exclusion, stamping, and the
bit-identity property."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.pipeline import DOMAIN_CONFIGS, AnalysisPipeline
from repro.guard import GuardViolation
from repro.hardware.systems import aurora_node
from repro.vet import (
    ACCURATE,
    OVERCOUNTING,
    UNVETTED,
    TrustPriors,
    VetStamp,
    forge_registry,
)
from tests.vet.conftest import FORGE_TARGET


@pytest.fixture(scope="module")
def prior_free():
    return AnalysisPipeline.for_domain("cpu_flops", aurora_node()).run()


def _assert_bit_identical(a, b):
    assert a.selected_events == b.selected_events
    assert list(a.metrics) == list(b.metrics)
    for name in a.metrics:
        assert (
            a.metrics[name].coefficients.tobytes()
            == b.metrics[name].coefficients.tobytes()
        )
        assert a.metrics[name].error == b.metrics[name].error
    np.testing.assert_array_equal(a.qrcp.selected, b.qrcp.selected)


class TestBitIdentity:
    """The property the whole design hangs on: priors that refute
    nothing must change nothing."""

    def test_empty_priors_are_identity(self, prior_free):
        result = AnalysisPipeline.for_domain(
            "cpu_flops", aurora_node(), priors=TrustPriors()
        ).run()
        _assert_bit_identical(prior_free, result)

    def test_healthy_campaign_priors_are_identity(
        self, prior_free, healthy_report
    ):
        result = AnalysisPipeline.for_domain(
            "cpu_flops",
            aurora_node(),
            priors=TrustPriors.from_report(healthy_report),
        ).run()
        _assert_bit_identical(prior_free, result)


class TestExclusion:
    @pytest.fixture(scope="class")
    def vetted(self, forged_report):
        node = aurora_node()
        node.events = forge_registry(
            node.events, {FORGE_TARGET: ("overcount", 1.5)}
        )
        return AnalysisPipeline.for_domain(
            "cpu_flops", node, priors=TrustPriors.from_report(forged_report)
        ).run()

    def test_refuted_event_barred_from_selection(self, vetted):
        assert FORGE_TARGET not in vetted.selected_events

    def test_exclusion_recorded_in_noise_report(self, vetted):
        assert vetted.noise.excluded_by_prior == [FORGE_TARGET]
        assert FORGE_TARGET not in vetted.noise.kept

    def test_summary_reports_the_exclusion(self, vetted):
        assert "excluded by vet prior: 1" in vetted.summary()

    def test_metrics_carry_the_vet_stamp(self, vetted, forged_report):
        for metric in vetted.metrics.values():
            assert metric.vet is not None
            assert metric.vet.excluded == (FORGE_TARGET,)
            assert metric.vet.source == forged_report.source
            for event in metric.vet.verdicts:
                assert event in vetted.selected_events

    def test_rounded_metrics_inherit_the_stamp(self, vetted):
        for metric in vetted.rounded_metrics.values():
            assert metric.vet is not None


class TestStrictMode:
    def test_unvetted_dependencies_raise_in_strict_mode(self, healthy_report):
        # cpu_flops verdicts say nothing about branch events, so a strict
        # branch run under those priors depends on unvetted events.
        config = replace(DOMAIN_CONFIGS["branch"], strict=True)
        pipeline = AnalysisPipeline.for_domain(
            "branch",
            aurora_node(),
            config=config,
            priors=TrustPriors.from_report(healthy_report),
        )
        with pytest.raises(GuardViolation, match="unvetted or refuted"):
            pipeline.run()

    def test_strict_without_priors_unaffected(self):
        config = replace(DOMAIN_CONFIGS["branch"], strict=True)
        result = AnalysisPipeline.for_domain(
            "branch", aurora_node(), config=config
        ).run()
        assert result.metrics


class TestTrustPriors:
    def test_verdict_for_defaults_to_unvetted(self):
        priors = TrustPriors(verdicts={"E": ACCURATE})
        assert priors.verdict_for("E") == ACCURATE
        assert priors.verdict_for("UNKNOWN") == UNVETTED

    def test_excluded_events_filters_by_refuted(self):
        priors = TrustPriors(verdicts={"A": ACCURATE, "B": OVERCOUNTING})
        assert priors.excluded_events(["A", "B", "C"]) == ("B",)
        assert priors.n_refuted == 1

    def test_unknown_verdict_rejected(self):
        with pytest.raises(ValueError, match="unknown verdict"):
            TrustPriors(verdicts={"E": "bogus"})

    def test_load_from_report_json(self, tmp_path, forged_report):
        path = forged_report.save(tmp_path / "report.json")
        priors = TrustPriors.load(path)
        assert priors.excluded(FORGE_TARGET)
        assert priors.source == forged_report.source

    def test_load_from_raw_priors_json(self, tmp_path):
        path = tmp_path / "priors.json"
        path.write_text('{"verdicts": {"E": "overcounting"}, "source": "manual"}')
        priors = TrustPriors.load(path)
        assert priors.excluded("E")
        assert priors.source == "manual"


class TestVetStamp:
    def test_payload_round_trip(self):
        stamp = VetStamp(
            verdicts={"A": ACCURATE, "B": UNVETTED},
            excluded=("C",),
            source="vet-campaign[test]",
        )
        assert VetStamp.from_payload(stamp.to_payload()) == stamp

    def test_from_falsy_payload_is_none(self):
        assert VetStamp.from_payload(None) is None
        assert VetStamp.from_payload({}) is None

    def test_clean_and_describe(self):
        clean = VetStamp(verdicts={"A": ACCURATE})
        assert clean.clean
        assert "vetted clean" in clean.describe()
        dirty = VetStamp(verdicts={"A": UNVETTED}, excluded=("B",))
        assert not dirty.clean
        assert "suspect" in dirty.describe()
        assert "B" in dirty.describe()
