"""Forged counters: metadata-invisible, measurement-visible."""

import pytest

from repro.activity import Activity
from repro.hardware.systems import aurora_node
from repro.vet import ForgedEvent, forge_registry, parse_forge_spec
from tests.vet.conftest import FORGE_TARGET


@pytest.fixture(scope="module")
def registry():
    return aurora_node(seed=0).events


class TestDigestIdentity:
    def test_forged_registry_digests_match_clean(self, registry):
        forged = forge_registry(registry, {FORGE_TARGET: ("overcount", 1.5)})
        # The forgery must be invisible to every digest the catalog and
        # cache layers key on: only measurement can expose it.
        assert forged.content_digest() == registry.content_digest()
        assert forged.event_digests() == registry.event_digests()

    def test_forged_count_deviates_from_documentation(self, registry):
        clean = registry.get(FORGE_TARGET)
        forged = forge_registry(registry, {FORGE_TARGET: ("overcount", 1.5)})
        activity = Activity({key: 100.0 for key in clean.response})
        assert forged.get(FORGE_TARGET).true_count(activity) == pytest.approx(
            1.5 * clean.true_count(activity)
        )

    def test_unforged_events_untouched(self, registry):
        forged = forge_registry(registry, {FORGE_TARGET: ("overcount", 1.5)})
        others = [e for e in forged if e.full_name != FORGE_TARGET]
        assert not any(isinstance(e, ForgedEvent) for e in others)


class TestForgeRegistry:
    def test_unknown_event_raises(self, registry):
        with pytest.raises(KeyError, match="NO_SUCH_EVENT"):
            forge_registry(registry, {"NO_SUCH_EVENT": ("overcount", 1.5)})

    def test_unknown_kind_rejected(self, registry):
        with pytest.raises(ValueError, match="forge kind"):
            forge_registry(registry, {FORGE_TARGET: ("teleport", 1.5)})

    def test_nonpositive_factor_rejected(self, registry):
        with pytest.raises(ValueError, match="positive"):
            forge_registry(registry, {FORGE_TARGET: ("overcount", 0.0)})


class TestUnreliableWobble:
    def test_wobble_varies_with_workload(self, registry):
        clean = registry.get(FORGE_TARGET)
        forged = forge_registry(
            registry, {FORGE_TARGET: ("unreliable", 0.5)}
        ).get(FORGE_TARGET)
        ratios = set()
        for scale in (10.0, 100.0, 1000.0, 12345.0):
            activity = Activity({key: scale for key in clean.response})
            base = clean.true_count(activity)
            ratios.add(round(forged.true_count(activity) / base, 6))
        # No single correction factor explains an unreliable counter.
        assert len(ratios) > 1


class TestParseForgeSpec:
    def test_explicit_factor(self):
        assert parse_forge_spec(["E=overcount:1.5"]) == {
            "E": ("overcount", 1.5)
        }

    def test_kind_defaults(self):
        parsed = parse_forge_spec(
            ["A=overcount", "B=undercount", "C=multicount", "D=unreliable"]
        )
        assert parsed["A"] == ("overcount", 1.5)
        assert parsed["B"] == ("undercount", 0.5)
        assert parsed["C"] == ("multicount", 2.0)
        assert parsed["D"] == ("unreliable", 0.5)

    def test_malformed_spec_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_forge_spec(["no-equals-sign"])

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown forge kind"):
            parse_forge_spec(["E=teleport:2"])
