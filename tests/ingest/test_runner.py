"""Runner tests: identical-pipeline reuse, degraded-flag accountability,
ingestion provenance on catalog entries, and bit-identical re-ingest
dedup — the ISSUE's acceptance surface."""

from pathlib import Path

import pytest

from repro.ingest import (
    INGEST_SEED,
    assemble,
    load_manifest,
    run_ingest,
)
from repro.serve.catalog import MetricCatalogStore

DATA = Path(__file__).parent.parent / "data" / "ingest"
SPR = DATA / "spr_branch" / "manifest.json"
ZEN3 = DATA / "zen3_branch" / "manifest.json"


@pytest.fixture(scope="module")
def spr_outcome():
    return run_ingest(assemble(load_manifest(SPR)))


@pytest.fixture(scope="module")
def zen3_outcome():
    return run_ingest(assemble(load_manifest(ZEN3)))


class TestIdenticalPipeline:
    def test_spr_pipeline_stages_ran(self, spr_outcome):
        result = spr_outcome.result
        # The injected matrix went through the standard stages: the
        # all-zero discard drops FAR_BRANCH (true zeros) and the
        # <not supported> typed-zero column; the tau filter drops the
        # noisy BACLEARS:ANY column.
        assert "BR_INST_RETIRED:FAR_BRANCH" in result.noise.discarded_zero
        assert "INT_MISC:CLEAR_RESTEER_CYCLES" in result.noise.discarded_zero
        assert "BACLEARS:ANY" in result.noise.noisy
        assert result.selected_events  # QRCP ran and picked a basis
        assert result.metrics  # composition produced metric definitions

    def test_measurement_is_the_ingested_one(self, spr_outcome):
        assert spr_outcome.result.measurement is (
            spr_outcome.bundle.measurement
        )

    def test_zen3_runs_same_path(self, zen3_outcome):
        result = zen3_outcome.result
        assert result.selected_events
        assert result.metrics


class TestDegradedAccountability:
    """A quality-flagged column must never compose into a metric without
    the metric carrying ``degraded=True`` — checked exhaustively over
    every composed metric, not just the fixture's known-degraded two."""

    @pytest.mark.parametrize("which", ["spr", "zen3"])
    def test_no_flagged_column_composes_unflagged(
        self, which, spr_outcome, zen3_outcome
    ):
        outcome = spr_outcome if which == "spr" else zen3_outcome
        flagged = set(outcome.bundle.flagged_columns)
        assert flagged  # the corpus guarantees flagged columns exist
        for name, definition in outcome.result.metrics.items():
            judged = outcome.result.rounded_metrics.get(name, definition)
            composes_flagged = any(
                coeff != 0.0 and event in flagged
                for event, coeff in zip(
                    judged.event_names, judged.coefficients
                )
            )
            if composes_flagged:
                assert definition.degraded, name
                rounded = outcome.result.rounded_metrics.get(name)
                if rounded is not None:
                    assert rounded.degraded, name
            assert (name in outcome.degraded_metrics) == composes_flagged

    def test_fixture_degrades_exactly_the_misprediction_metrics(
        self, spr_outcome, zen3_outcome
    ):
        # Both corpora flag their misprediction counter (multiplexed on
        # SPR, <not counted> on zen3), which QRCP selects — so exactly
        # the two metrics composing it come out degraded.
        expected = {
            "Mispredicted Branches.",
            "Correctly Predicted Branches.",
        }
        assert set(spr_outcome.degraded_metrics) == expected
        assert set(zen3_outcome.degraded_metrics) == expected

    def test_flag_without_composition_degrades_nothing(self, spr_outcome):
        # NEAR_TAKEN is multiplexed but QRCP does not select it: the
        # flag is recorded in the bundle yet no metric composes the
        # column, so it must not contribute a degraded stamp.
        assert "BR_INST_RETIRED:NEAR_TAKEN" in (
            spr_outcome.bundle.flagged_columns
        )
        assert "BR_INST_RETIRED:NEAR_TAKEN" not in (
            spr_outcome.result.selected_events
        )

    def test_clean_metrics_stay_undegraded(self, spr_outcome):
        clean = [
            name
            for name, definition in spr_outcome.result.metrics.items()
            if name not in spr_outcome.degraded_metrics
        ]
        assert clean  # not everything degrades
        for name in clean:
            assert not spr_outcome.result.metrics[name].degraded, name


class TestPublication:
    def test_entries_carry_ingest_provenance(self, tmp_path):
        store = MetricCatalogStore(tmp_path / "catalog")
        bundle = assemble(load_manifest(SPR))
        outcome = run_ingest(bundle, store=store)
        assert outcome.published
        assert outcome.deduped == 0
        for entry in outcome.published:
            assert entry.arch == "spr-ingest"
            assert entry.seed == INGEST_SEED
            prov = entry.provenance
            assert prov["kind"] == "ingest"
            assert prov["collector"] == "perf"
            assert prov["uarch"] == "sapphire_rapids"
            assert prov["sources"] == bundle.provenance()["sources"]
            assert prov["unmapped"] == ["cpu_custom.unknown_event"]
        degraded_published = {
            e.metric for e in outcome.published if e.degraded
        }
        assert degraded_published == set(outcome.degraded_metrics)

    def test_reingest_is_bit_identical_and_dedupes(self, tmp_path):
        store = MetricCatalogStore(tmp_path / "catalog")
        first = run_ingest(assemble(load_manifest(SPR)), store=store)
        second = run_ingest(assemble(load_manifest(SPR)), store=store)
        assert len(second.published) == len(first.published)
        assert second.deduped == len(second.published)
        by_metric = {e.metric: e for e in first.published}
        for entry in second.published:
            original = by_metric[entry.metric]
            assert entry.version == original.version
            assert entry.content_digest() == original.content_digest()

    def test_simulated_entries_unaffected_by_provenance_field(self, tmp_path):
        # The provenance field is pop-when-empty in the content digest:
        # entries published without provenance hash exactly as before
        # the field existed (catalog back-compat).
        store = MetricCatalogStore(tmp_path / "catalog")
        outcome = run_ingest(assemble(load_manifest(ZEN3)), store=store)
        entry = outcome.published[0]
        stripped = entry.to_payload()
        assert stripped["provenance"]  # ingested entries carry it
        bare = store.get(entry.arch, entry.metric, entry.config_digest)
        assert bare.provenance == entry.provenance

    def test_without_store_nothing_publishes(self, spr_outcome):
        assert spr_outcome.published == []
        assert spr_outcome.deduped == 0

    def test_summary_mentions_publication(self, tmp_path):
        store = MetricCatalogStore(tmp_path / "catalog")
        outcome = run_ingest(assemble(load_manifest(ZEN3)), store=store)
        text = outcome.summary()
        assert "catalog:" in text
        assert "zen3-ingest@seed0" in text
        assert "degraded (composes a quality-flagged column)" in text
