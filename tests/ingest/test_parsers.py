"""Parser tests: grammar, error positions, and canonical round-trips.

The round-trip property is the ingestion layer's bit-stability
guarantee: for every format, ``serialize ∘ parse`` is the identity on
canonical text (parse → serialize → parse is byte-stable), so a
re-serialized fixture can never drift from what was parsed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ingest import (
    QUALITY_MULTIPLEXED,
    QUALITY_NOT_COUNTED,
    QUALITY_NOT_SUPPORTED,
    QUALITY_OK,
    CounterReading,
    CounterSample,
    IngestParseError,
    detect_format,
    parse_papi_csv,
    parse_perf,
    serialize_papi_csv,
    serialize_samples,
)
from repro.ingest.papi import PapiMatrix, PapiRecord

HUMAN = """\
 Performance counter stats for './bench':

     2,145,437,570      branches                         #  1.2 G/sec
        12,493,111      branch-misses                    (75.00%)
     <not counted>      br_inst_retired.cond_ntaken
   <not supported>      int_misc.clear_resteer_cycles

       1.001242650 seconds time elapsed
"""


class TestHumanFormat:
    def test_parses_values_and_qualities(self):
        fmt, samples = parse_perf(HUMAN, source="bench.txt")
        assert fmt == "perf-human"
        (sample,) = samples
        assert sample.reading("branches").value == 2145437570.0
        assert sample.reading("branches").quality == QUALITY_OK
        misses = sample.reading("branch-misses")
        assert misses.quality == QUALITY_MULTIPLEXED
        assert misses.scale_pct == 75.0
        assert misses.value == 12493111.0  # perf's scaled value, untouched
        nc = sample.reading("br_inst_retired.cond_ntaken")
        assert (nc.value, nc.quality) == (0.0, QUALITY_NOT_COUNTED)
        ns = sample.reading("int_misc.clear_resteer_cycles")
        assert (ns.value, ns.quality) == (0.0, QUALITY_NOT_SUPPORTED)

    def test_garbage_line_names_position(self):
        bad = HUMAN.replace(
            "        12,493,111      branch-misses                    (75.00%)",
            "        ?!bogus line",
        )
        with pytest.raises(IngestParseError) as err:
            parse_perf(bad, source="bench.txt")
        assert err.value.source == "bench.txt"
        assert err.value.line == 4
        assert err.value.column == 9
        assert "bench.txt:4:9" in str(err.value)

    def test_empty_input_rejected(self):
        with pytest.raises(IngestParseError):
            parse_perf("", source="empty.txt")


class TestCsvFormat:
    def test_parses_fields(self):
        text = "1200.5,,cycles,800000,100.00\n<not counted>,,slots,0,\n"
        fmt, samples = parse_perf(text, source="x.csv")
        assert fmt == "perf-csv"
        (sample,) = samples
        assert sample.reading("cycles").value == 1200.5
        assert sample.reading("slots").quality == QUALITY_NOT_COUNTED

    def test_multiplex_pct_flags(self):
        fmt, samples = parse_perf("10.0,,ev,0,62.50\n", source="x.csv")
        assert samples[0].readings[0].quality == QUALITY_MULTIPLEXED
        assert samples[0].readings[0].scale_pct == 62.5

    def test_bad_value_names_line_and_column(self):
        with pytest.raises(IngestParseError) as err:
            parse_perf("1.0,,ok_event,0,100\nwat,,ev,0,100\n", format="perf-csv")
        assert err.value.line == 2
        assert err.value.column == 1

    def test_bad_pct_names_column(self):
        with pytest.raises(IngestParseError) as err:
            parse_perf("1.0,,ev,0,notapct\n", format="perf-csv")
        assert err.value.line == 1
        assert err.value.column == 11


class TestIntervalFormat:
    TEXT = (
        "1.0,5.0,,branches,0,100.00\n"
        "1.0,2.0,,branch-misses,0,100.00\n"
        "2.0,5.0,,branches,0,100.00\n"
        "2.0,3.0,,branch-misses,0,100.00\n"
    )

    def test_one_sample_per_timestamp(self):
        fmt, samples = parse_perf(self.TEXT, source="i.csv")
        assert fmt == "perf-interval"
        assert [s.interval for s in samples] == [1.0, 2.0]
        assert samples[1].reading("branch-misses").value == 3.0

    def test_timestamps_must_increase(self):
        backwards = self.TEXT + "1.5,1.0,,branches,0,100.00\n"
        with pytest.raises(IngestParseError) as err:
            parse_perf(backwards, format="perf-interval")
        assert err.value.line == 5

    def test_bad_timestamp_positioned(self):
        with pytest.raises(IngestParseError) as err:
            parse_perf("zap,1.0,,ev,0,100\n", format="perf-interval")
        assert (err.value.line, err.value.column) == (1, 1)


class TestDetectFormat:
    def test_sniffs_all_three(self):
        assert detect_format(HUMAN) == "perf-human"
        assert detect_format("1.0,,ev,0,100.00\n") == "perf-csv"
        assert detect_format("1.0,2.0,,ev,0,100.00\n") == "perf-interval"

    def test_unrecognizable_raises(self):
        with pytest.raises(IngestParseError):
            detect_format("!! not perf output !!")


class TestPapiFormat:
    TEXT = (
        "row,repetition,PAPI_BR_INS,PAPI_BR_MSP\n"
        "k01,0,2.0,0.5\n"
        "k01,1,2.0,<not counted>\n"
    )

    def test_parses_matrix(self):
        matrix = parse_papi_csv(self.TEXT, source="m.csv")
        assert matrix.event_names == ("PAPI_BR_INS", "PAPI_BR_MSP")
        assert matrix.row_labels == ("k01",)
        assert matrix.records[1].sample.reading("PAPI_BR_MSP").quality == (
            QUALITY_NOT_COUNTED
        )

    def test_header_required(self):
        with pytest.raises(IngestParseError) as err:
            parse_papi_csv("kernel,rep,EV\nk,0,1.0\n", source="m.csv")
        assert err.value.line == 1

    def test_field_count_enforced(self):
        with pytest.raises(IngestParseError) as err:
            parse_papi_csv(self.TEXT + "k01,2,9.0\n")
        assert err.value.line == 4

    def test_duplicate_cell_rejected(self):
        with pytest.raises(IngestParseError) as err:
            parse_papi_csv(self.TEXT + "k01,1,3.0,4.0\n")
        assert "duplicate" in err.value.reason

    def test_bad_cell_names_column(self):
        with pytest.raises(IngestParseError) as err:
            parse_papi_csv("row,repetition,EV\nk01,0,oops\n")
        assert (err.value.line, err.value.column) == (2, 7)


# -- property tests: canonical round-trips ------------------------------
_EVENT = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.:]{0,24}", fullmatch=True)
_VALUE = st.floats(
    min_value=0.0, max_value=1e15, allow_nan=False, allow_infinity=False
)
#: Multiplex percentages quantized to perf's two decimals so the
#: canonical "%.2f" rendering is lossless.
_PCT = st.integers(min_value=1, max_value=10000).map(lambda n: n / 100.0)


@st.composite
def _readings(draw, min_size=1, max_size=8):
    names = draw(
        st.lists(_EVENT, min_size=min_size, max_size=max_size, unique=True)
    )
    readings = []
    for name in names:
        marker = draw(
            st.sampled_from(["value", "not_counted", "not_supported"])
        )
        pct = draw(st.none() | _PCT)
        if marker == "not_counted":
            readings.append(
                CounterReading(name, 0.0, QUALITY_NOT_COUNTED, scale_pct=pct)
            )
        elif marker == "not_supported":
            readings.append(
                CounterReading(name, 0.0, QUALITY_NOT_SUPPORTED, scale_pct=pct)
            )
        else:
            value = draw(_VALUE)
            quality = (
                QUALITY_MULTIPLEXED
                if pct is not None and pct < 100.0
                else QUALITY_OK
            )
            readings.append(CounterReading(name, value, quality, scale_pct=pct))
    return readings


@st.composite
def _single_sample(draw, format):
    sample = CounterSample(source="<prop>", format=format)
    sample.readings.extend(draw(_readings()))
    return [sample]


@st.composite
def _interval_samples(draw):
    names = draw(st.lists(_EVENT, min_size=1, max_size=5, unique=True))
    ticks = draw(
        st.lists(
            st.integers(min_value=1, max_value=10**6),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    samples = []
    for tick in sorted(ticks):
        sample = CounterSample(
            source="<prop>", format="perf-interval", interval=tick / 100.0
        )
        for name in names:
            pct = draw(st.none() | _PCT)
            value = draw(_VALUE)
            quality = (
                QUALITY_MULTIPLEXED
                if pct is not None and pct < 100.0
                else QUALITY_OK
            )
            sample.readings.append(
                CounterReading(name, value, quality, scale_pct=pct)
            )
        samples.append(sample)
    return samples


def _assert_fixpoint(format, samples):
    canonical = serialize_samples(format, samples)
    fmt, reparsed = parse_perf(canonical, format="auto")
    assert fmt == format
    assert serialize_samples(fmt, reparsed) == canonical  # byte-stable
    again_fmt, again = parse_perf(serialize_samples(fmt, reparsed))
    assert [s.readings for s in again] == [s.readings for s in reparsed]


class TestRoundTripProperties:
    @given(samples=_single_sample("perf-csv"))
    @settings(max_examples=100, deadline=None)
    def test_csv_round_trip(self, samples):
        _assert_fixpoint("perf-csv", samples)

    @given(samples=_interval_samples())
    @settings(max_examples=100, deadline=None)
    def test_interval_round_trip(self, samples):
        _assert_fixpoint("perf-interval", samples)

    @given(samples=_single_sample("perf-human"))
    @settings(max_examples=100, deadline=None)
    def test_human_round_trip(self, samples):
        canonical = serialize_samples("perf-human", samples)
        fmt, reparsed = parse_perf(canonical, format="auto")
        assert fmt == "perf-human"
        assert serialize_samples(fmt, reparsed) == canonical

    @given(
        rows=st.lists(
            st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,16}", fullmatch=True),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        names=st.lists(_EVENT, min_size=1, max_size=5, unique=True),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_papi_round_trip(self, rows, names, data):
        records = []
        for row in rows:
            for rep in range(data.draw(st.integers(1, 3))):
                sample = CounterSample(source="<prop>", format="papi-csv")
                for name in names:
                    kind = data.draw(
                        st.sampled_from(["value", "not_counted", "not_supported"])
                    )
                    if kind == "value":
                        sample.readings.append(
                            CounterReading(name, data.draw(_VALUE))
                        )
                    elif kind == "not_counted":
                        sample.readings.append(
                            CounterReading(name, 0.0, QUALITY_NOT_COUNTED)
                        )
                    else:
                        sample.readings.append(
                            CounterReading(name, 0.0, QUALITY_NOT_SUPPORTED)
                        )
                records.append(
                    PapiRecord(row=row, repetition=rep, sample=sample)
                )
        matrix = PapiMatrix(
            source="<prop>", event_names=tuple(names), records=records
        )
        canonical = serialize_papi_csv(matrix)
        reparsed = parse_papi_csv(canonical)
        assert serialize_papi_csv(reparsed) == canonical  # byte-stable
        assert reparsed.event_names == matrix.event_names
        assert [
            (r.row, r.repetition, r.sample.readings) for r in reparsed.records
        ] == [(r.row, r.repetition, r.sample.readings) for r in matrix.records]
