"""Alias-layer tests: family detection, resolution order, unmapped report."""

import pytest

from repro.events.catalogs import sapphire_rapids_events, zen3_events
from repro.ingest import (
    KEY_EVENT_MAPPINGS,
    IngestError,
    normalize_event_name,
    registry_for_family,
    resolve_events,
    resolve_uarch,
)


class TestFamilyDetection:
    @pytest.mark.parametrize(
        "uarch, family",
        [
            ("Sapphire Rapids", "sapphire"),
            ("Intel(R) Xeon SPR", "sapphire"),
            ("EMR / Emerald Rapids", "sapphire"),
            ("icelake-server", "icelake"),
            ("ICX", "icelake"),
            ("Skylake-X", "skylake"),
            ("cascadelake", "skylake"),
            ("AMD Zen3 (Milan)", "zen3"),
            ("vermeer", "zen3"),
        ],
    )
    def test_substring_patterns(self, uarch, family):
        assert resolve_uarch(uarch) == family

    def test_unknown_uarch_rejected(self):
        with pytest.raises(IngestError, match="unknown uarch"):
            resolve_uarch("itanium2")

    def test_empty_uarch_rejected(self):
        with pytest.raises(IngestError, match="empty"):
            resolve_uarch("   ")

    def test_family_registries(self):
        spr = sapphire_rapids_events()
        assert registry_for_family("sapphire").full_names == spr.full_names
        assert registry_for_family("skylake").full_names == spr.full_names
        assert (
            registry_for_family("zen3").full_names == zen3_events().full_names
        )
        with pytest.raises(IngestError, match="unknown uarch family"):
            registry_for_family("alpha21264")

    def test_alias_tables_target_real_registry_events(self):
        # Every alias table row must point at an event the family's
        # registry actually carries — a dangling alias would assemble a
        # column the pipeline's basis cannot account for.
        for family, table in KEY_EVENT_MAPPINGS.items():
            registry = registry_for_family(family)
            for collector, target in table.items():
                assert target in registry, (family, collector, target)


class TestResolutionOrder:
    def test_exact_name_wins(self):
        res = resolve_events(["BR_INST_RETIRED:COND"], "sapphire")
        assert res.mapped == {"BR_INST_RETIRED:COND": "BR_INST_RETIRED:COND"}

    def test_alias_table_consulted_second(self):
        res = resolve_events(["branch-misses"], "spr")
        assert res.mapped["branch-misses"] == "BR_MISP_RETIRED"

    def test_normalization_fallback(self):
        # Not in the registry verbatim, not in any alias table — but the
        # mechanical upper + "." -> ":" respelling is a registry member.
        res = resolve_events(["br_inst_retired.cond_taken"], "sapphire")
        assert (
            res.mapped["br_inst_retired.cond_taken"]
            == "BR_INST_RETIRED:COND_TAKEN"
        )
        assert (
            normalize_event_name("br_inst_retired.cond_taken")
            == "BR_INST_RETIRED:COND_TAKEN"
        )

    def test_family_specific_respelling(self):
        # Pre-SPR Intel spells the conditional events differently; the
        # skylake/icelake tables carry the respelling, sapphire does not.
        res = resolve_events(["br_inst_retired.conditional"], "skylake")
        assert res.mapped["br_inst_retired.conditional"] == (
            "BR_INST_RETIRED:COND"
        )
        res = resolve_events(["br_inst_retired.conditional"], "sapphire")
        assert res.unmapped == ("br_inst_retired.conditional",)

    def test_unmapped_reported_in_order(self):
        res = resolve_events(
            ["mystery.event_a", "branches", "mystery.event_b"], "sapphire"
        )
        assert res.unmapped == ("mystery.event_a", "mystery.event_b")
        assert list(res.mapped) == ["branches"]

    def test_duplicate_collector_name_rejected(self):
        with pytest.raises(IngestError, match="duplicate collector event"):
            resolve_events(["branches", "branches"], "sapphire")

    def test_two_spellings_of_one_event_rejected(self):
        # "branches" (alias) and the PAPI preset both resolve onto
        # BR_INST_RETIRED:ALL_BRANCHES; merging would average one counter
        # against itself.
        with pytest.raises(IngestError, match="both"):
            resolve_events(["branches", "PAPI_BR_INS"], "sapphire")

    def test_zen3_presets(self):
        res = resolve_events(
            ["PAPI_BR_INS", "PAPI_BR_MSP", "ex_ret_brn_tkn"], "milan"
        )
        assert res.mapped == {
            "PAPI_BR_INS": "EX_RET_BRN",
            "PAPI_BR_MSP": "EX_RET_BRN_MISP",
            "ex_ret_brn_tkn": "EX_RET_BRN_TKN",
        }


class TestRegistryOrder:
    def test_registry_names_follow_catalog_order(self):
        # Input order deliberately scrambled; column order must come out
        # in registry catalog order regardless (QRCP tie-break
        # determinism depends on it).
        res = resolve_events(
            ["branch-misses", "br_inst_retired.cond", "branches"], "sapphire"
        )
        names = res.registry_names()
        catalog = [n for n in res.registry.full_names if n in set(names)]
        assert names == catalog
        assert set(names) == {
            "BR_MISP_RETIRED",
            "BR_INST_RETIRED:COND",
            "BR_INST_RETIRED:ALL_BRANCHES",
        }

    def test_collector_name_reverse_lookup(self):
        res = resolve_events(["branch-misses"], "sapphire")
        assert res.collector_name("BR_MISP_RETIRED") == "branch-misses"
        with pytest.raises(KeyError):
            res.collector_name("CPU_CLK_UNHALTED:THREAD")
