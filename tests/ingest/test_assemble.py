"""Assembly tests: manifest validation, group merging, baseline
calibration, quality aggregation, and ingested-vs-simulated equivalence
on the checked-in fixture corpus."""

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.cat import BenchmarkRunner, BranchBenchmark
from repro.hardware.systems import aurora_node, frontier_cpu_node
from repro.ingest import (
    IngestError,
    assemble,
    ingest_basis,
    load_manifest,
)

DATA = Path(__file__).parent.parent / "data" / "ingest"
SPR = DATA / "spr_branch" / "manifest.json"
ZEN3 = DATA / "zen3_branch" / "manifest.json"
FIXTURE_SEED = 2024
FIXTURE_REPS = 3


@pytest.fixture(scope="module")
def spr_bundle():
    return assemble(load_manifest(SPR))


@pytest.fixture(scope="module")
def zen3_bundle():
    return assemble(load_manifest(ZEN3))


def _reference(node, names):
    """The simulator measurement the fixture corpus was derived from."""
    registry = node.events.select(
        predicate=lambda e: e.full_name in set(names)
    )
    runner = BenchmarkRunner(node, repetitions=FIXTURE_REPS)
    return runner.run(BranchBenchmark(), events=registry)


class TestLoadManifest:
    def _write(self, tmp_path, payload) -> Path:
        path = tmp_path / "manifest.json"
        path.write_text(
            payload if isinstance(payload, str) else json.dumps(payload)
        )
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(IngestError, match="cannot read manifest"):
            load_manifest(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        with pytest.raises(IngestError, match="not valid JSON"):
            load_manifest(self._write(tmp_path, "{broken"))

    def test_missing_collector(self, tmp_path):
        with pytest.raises(IngestError, match="missing 'collector'"):
            load_manifest(
                self._write(tmp_path, {"uarch": "spr", "domain": "branch"})
            )

    def test_unknown_collector(self, tmp_path):
        with pytest.raises(IngestError, match="unknown collector"):
            load_manifest(
                self._write(
                    tmp_path,
                    {"collector": "vtune", "uarch": "spr", "domain": "branch"},
                )
            )

    def test_non_ingestable_domain(self, tmp_path):
        with pytest.raises(IngestError, match="not ingestable"):
            load_manifest(
                self._write(
                    tmp_path,
                    {
                        "collector": "perf",
                        "uarch": "spr",
                        "domain": "l1_cache",
                        "rows": {"k": ["f.csv"]},
                    },
                )
            )
        with pytest.raises(IngestError, match="not ingestable"):
            ingest_basis("l1_cache")

    def test_papi_rejects_rows_and_baseline(self, tmp_path):
        base = {"collector": "papi", "uarch": "zen3", "domain": "branch"}
        with pytest.raises(IngestError, match="missing 'matrix'"):
            load_manifest(self._write(tmp_path, base))
        with pytest.raises(IngestError, match="'matrix', not 'rows'"):
            load_manifest(
                self._write(
                    tmp_path, {**base, "matrix": "m.csv", "rows": {"k": ["f"]}}
                )
            )
        with pytest.raises(IngestError, match="baseline calibration"):
            load_manifest(
                self._write(
                    tmp_path, {**base, "matrix": "m.csv", "baseline": ["b"]}
                )
            )

    def test_flat_file_list_is_one_group(self, tmp_path):
        manifest = load_manifest(
            self._write(
                tmp_path,
                {
                    "collector": "perf",
                    "uarch": "spr",
                    "domain": "branch",
                    "rows": {"k01": ["a.csv", "b.csv"]},
                },
            )
        )
        assert manifest.rows["k01"] == [["a.csv", "b.csv"]]

    def test_arch_defaults_to_uarch_ingest(self, tmp_path):
        manifest = load_manifest(
            self._write(
                tmp_path,
                {
                    "collector": "perf",
                    "uarch": "icelake",
                    "domain": "branch",
                    "rows": {"k01": ["a.csv"]},
                },
            )
        )
        assert manifest.arch == "icelake-ingest"


class TestSprAssembly:
    def test_matrix_shape_and_order(self, spr_bundle):
        m = spr_bundle.measurement
        basis = ingest_basis("branch")
        assert m.row_labels == list(basis.row_labels)
        assert m.data.shape == (FIXTURE_REPS, 1, len(m.row_labels), 10)
        # Column order is registry catalog order.
        registry = spr_bundle.resolution.registry
        catalog = [
            n for n in registry.full_names if n in set(m.event_names)
        ]
        assert m.event_names == catalog

    def test_sources_digested(self, spr_bundle):
        # 11 groupA files + (3 k01 single-shots + 10 interval) groupB
        # files + 1 baseline = 25, every one with a full SHA-256.
        assert len(spr_bundle.sources) == 25
        assert "baseline.txt" in spr_bundle.sources
        for digest in spr_bundle.sources.values():
            assert len(digest) == 64 and int(digest, 16) >= 0

    def test_unmapped_reported(self, spr_bundle):
        assert spr_bundle.resolution.unmapped == ("cpu_custom.unknown_event",)

    def test_column_quality(self, spr_bundle):
        flags = {
            name: q
            for name, q in spr_bundle.column_quality.items()
            if q
        }
        assert flags == {
            "BR_INST_RETIRED:COND_NTAKEN": ("not_counted",),
            "BR_INST_RETIRED:NEAR_TAKEN": ("multiplexed",),
            "BR_MISP_RETIRED": ("multiplexed",),
            "BACLEARS:ANY": ("multiplexed",),
            "INT_MISC:CLEAR_RESTEER_CYCLES": ("not_supported",),
        }
        assert spr_bundle.flagged_columns == tuple(
            n
            for n in spr_bundle.measurement.event_names
            if n in flags
        )

    def test_baseline_subtracted(self, spr_bundle):
        # The calibration run reports a flat +0.25 harness overhead on
        # five fully-ok events.
        assert len(spr_bundle.baseline) == 5
        assert set(spr_bundle.baseline.values()) == {0.25}

    def test_equivalence_with_simulator(self, spr_bundle):
        # The corpus is derived from the simulator; after baseline
        # subtraction every column must match bit-for-bit — except the
        # <not supported> column, whose typed zeros replace the
        # simulator's values.
        m = spr_bundle.measurement
        ref = _reference(aurora_node(seed=FIXTURE_SEED), m.event_names)
        assert ref.row_labels == m.row_labels
        mismatched = []
        for e_idx, name in enumerate(m.event_names):
            sim = ref.data[:, :, :, ref.event_names.index(name)]
            ing = m.data[:, :, :, e_idx]
            if not np.array_equal(ing, sim):
                mismatched.append(name)
        assert mismatched == ["INT_MISC:CLEAR_RESTEER_CYCLES"]
        e_ns = m.event_names.index("INT_MISC:CLEAR_RESTEER_CYCLES")
        assert np.all(m.data[:, :, :, e_ns] == 0.0)

    def test_assembly_is_bit_stable(self, spr_bundle):
        again = assemble(load_manifest(SPR))
        assert np.array_equal(
            again.measurement.data, spr_bundle.measurement.data
        )
        assert again.provenance() == spr_bundle.provenance()

    def test_report_and_provenance_surface(self, spr_bundle):
        report = spr_bundle.report()
        assert "unmapped events: 1" in report
        assert "cpu_custom.unknown_event" in report
        assert "[multiplexed]" in report
        assert "baseline: subtracted from 5 event(s)" in report
        prov = spr_bundle.provenance()
        assert prov["kind"] == "ingest"
        assert prov["collector"] == "perf"
        assert prov["uarch"] == "sapphire_rapids"
        assert prov["family"] == "sapphire"
        assert len(prov["sources"]) == 25
        assert prov["unmapped"] == ["cpu_custom.unknown_event"]
        assert "BR_MISP_RETIRED" in prov["quality"]


class TestZen3Assembly:
    def test_papi_matrix_assembles(self, zen3_bundle):
        m = zen3_bundle.measurement
        assert m.data.shape[0] == FIXTURE_REPS
        assert m.data.shape[3] == 4
        assert zen3_bundle.resolution.unmapped == (
            "amd_custom.unknown_event",
        )
        flags = {
            n: q for n, q in zen3_bundle.column_quality.items() if q
        }
        assert flags == {"EX_RET_BRN_MISP": ("not_counted",)}
        assert zen3_bundle.baseline == {}

    def test_equivalence_with_simulator(self, zen3_bundle):
        # The zen3 <not counted> cell sits on a true-zero count, so the
        # typed zero equals the simulator value and *every* column
        # matches bit-for-bit.
        m = zen3_bundle.measurement
        ref = _reference(frontier_cpu_node(seed=FIXTURE_SEED), m.event_names)
        assert ref.row_labels == m.row_labels
        for e_idx, name in enumerate(m.event_names):
            sim = ref.data[:, :, :, ref.event_names.index(name)]
            assert np.array_equal(m.data[:, :, :, e_idx], sim), name


class TestAssemblyErrors:
    @pytest.fixture()
    def spr_copy(self, tmp_path):
        dest = tmp_path / "spr"
        shutil.copytree(SPR.parent, dest)
        return dest

    @pytest.fixture()
    def zen3_copy(self, tmp_path):
        dest = tmp_path / "zen3"
        shutil.copytree(ZEN3.parent, dest)
        return dest

    def _edit_manifest(self, corpus, mutate):
        path = corpus / "manifest.json"
        payload = json.loads(path.read_text())
        mutate(payload)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    def test_missing_row_rejected(self, spr_copy):
        path = self._edit_manifest(
            spr_copy, lambda p: p["rows"].pop("k01_alternating")
        )
        with pytest.raises(IngestError, match="missing kernel rows"):
            assemble(load_manifest(path))

    def test_unknown_row_rejected(self, spr_copy):
        path = self._edit_manifest(
            spr_copy,
            lambda p: p["rows"].__setitem__(
                "k99_mystery", [["groupA/k01_alternating.csv"]]
            ),
        )
        with pytest.raises(IngestError, match="unknown kernel rows"):
            assemble(load_manifest(path))

    def test_group_repetition_mismatch(self, spr_copy):
        # k01's group B is three single-shot files; dropping one leaves
        # its groups at 3 vs 2 repetitions.
        def mutate(p):
            p["rows"]["k01_alternating"][1].pop()

        path = self._edit_manifest(spr_copy, mutate)
        with pytest.raises(IngestError, match="disagree on repetition count"):
            assemble(load_manifest(path))

    def test_duplicate_event_across_groups(self, spr_copy):
        # The same file as both groups of a row: every event appears
        # twice, which is two readings of one counter.
        def mutate(p):
            p["rows"]["k02_never_taken"] = [
                ["groupA/k02_never_taken.csv"],
                ["groupA/k02_never_taken.csv"],
            ]

        path = self._edit_manifest(spr_copy, mutate)
        with pytest.raises(IngestError, match="appears in groups"):
            assemble(load_manifest(path))

    def test_inconsistent_event_set(self, spr_copy):
        # Drop one reading line from one repetition of one row.
        target = spr_copy / "groupA" / "k02_never_taken.csv"
        lines = target.read_text().splitlines()
        assert lines[0].startswith("1.0,")
        target.write_text("\n".join(lines[1:]) + "\n")
        with pytest.raises(IngestError, match="different event set"):
            assemble(load_manifest(spr_copy / "manifest.json"))

    def test_missing_source_file(self, spr_copy):
        (spr_copy / "baseline.txt").unlink()
        with pytest.raises(IngestError, match="cannot read 'baseline.txt'"):
            assemble(load_manifest(spr_copy / "manifest.json"))

    def _filter_matrix(self, corpus, keep):
        path = corpus / "matrix.csv"
        lines = path.read_text().splitlines()
        kept = [lines[0]] + [
            line for line in lines[1:] if keep(line.split(","))
        ]
        path.write_text("\n".join(kept) + "\n")

    def test_papi_too_few_repetitions(self, zen3_copy):
        self._filter_matrix(zen3_copy, lambda f: f[1] == "0")
        with pytest.raises(IngestError, match="at least 2 repetitions"):
            assemble(load_manifest(zen3_copy / "manifest.json"))

    def test_papi_rows_disagree_on_repetitions(self, zen3_copy):
        self._filter_matrix(
            zen3_copy,
            lambda f: not (f[0] == "k05_unpred_guard_nt" and f[1] == "2"),
        )
        with pytest.raises(IngestError, match="has repetitions"):
            assemble(load_manifest(zen3_copy / "manifest.json"))

    def test_papi_repetitions_must_start_at_zero(self, zen3_copy):
        path = zen3_copy / "matrix.csv"
        lines = path.read_text().splitlines()
        shifted = [lines[0]]
        for line in lines[1:]:
            fields = line.split(",")
            fields[1] = str(int(fields[1]) + 1)
            shifted.append(",".join(fields))
        path.write_text("\n".join(shifted) + "\n")
        with pytest.raises(IngestError, match="contiguous from 0"):
            assemble(load_manifest(zen3_copy / "manifest.json"))

    def test_nothing_mapped_rejected(self, tmp_path):
        lines = ["row,repetition,totally.unknown_event"]
        for row in ingest_basis("branch").row_labels:
            for rep in (0, 1):
                lines.append(f"{row},{rep},1.0")
        (tmp_path / "matrix.csv").write_text("\n".join(lines) + "\n")
        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps(
                {
                    "collector": "papi",
                    "uarch": "zen3",
                    "domain": "branch",
                    "matrix": "matrix.csv",
                }
            )
        )
        with pytest.raises(IngestError, match="no collector event maps"):
            assemble(load_manifest(manifest))
