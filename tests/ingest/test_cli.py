"""CLI tests for the ``repro-cat ingest`` family.

Exit-code discipline (the repository-wide convention): 0 success,
1 analysis failure, 2 usage/validation — and a malformed input file
exits 2 with the offending file, line, and column named on stderr.
"""

import json
import shutil
from pathlib import Path

import pytest

from tests.test_cli import exit_code

DATA = Path(__file__).parent.parent / "data" / "ingest"
SPR = DATA / "spr_branch"
ZEN3 = DATA / "zen3_branch"


class TestParse:
    def test_parse_human_sample(self, capsys):
        sample = SPR / "sample_human.txt"
        assert exit_code(["ingest", "parse", str(sample)]) == 0
        out = capsys.readouterr().out
        # Canonical output re-parses byte-identically: parsing a file the
        # serializer wrote echoes it exactly.
        assert out == sample.read_text()

    def test_parse_summary(self, capsys):
        assert (
            exit_code(
                ["ingest", "parse", str(SPR / "sample_human.txt"), "--summary"]
            )
            == 0
        )
        assert "perf-human: 1 sample(s), 11 reading(s)" in (
            capsys.readouterr().out
        )

    def test_parse_papi_sniffed(self, capsys):
        assert (
            exit_code(
                ["ingest", "parse", str(ZEN3 / "matrix.csv"), "--summary"]
            )
            == 0
        )
        assert "papi-csv: 33 record(s), 11 row(s), 5 event(s)" in (
            capsys.readouterr().out
        )

    def test_missing_file_is_two(self, capsys):
        assert exit_code(["ingest", "parse", "/nonexistent/perf.txt"]) == 2

    def test_malformed_input_is_two_and_names_position(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("1.0,,ok_event,0,100\nwat,,ev,0,100\n")
        assert (
            exit_code(
                ["ingest", "parse", str(bad), "--format", "perf-csv"]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert f"{bad}:2:1" in err
        assert "unreadable counter value" in err

    def test_malformed_papi_is_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("row,repetition,EV\nk01,0,oops\n")
        assert exit_code(["ingest", "parse", str(bad)]) == 2
        assert f"{bad}:2:7" in capsys.readouterr().err


class TestReport:
    def test_report_surfaces_quality_and_unmapped(self, capsys):
        assert (
            exit_code(["ingest", "report", str(SPR / "manifest.json")]) == 0
        )
        out = capsys.readouterr().out
        assert "unmapped events: 1" in out
        assert "cpu_custom.unknown_event" in out
        assert "[multiplexed]" in out
        assert "[not_counted]" in out

    def test_report_json_is_the_provenance_payload(self, capsys):
        assert (
            exit_code(
                ["ingest", "report", str(ZEN3 / "manifest.json"), "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "ingest"
        assert payload["collector"] == "papi"
        assert payload["unmapped"] == ["amd_custom.unknown_event"]
        assert payload["quality"] == {"EX_RET_BRN_MISP": ["not_counted"]}

    def test_bad_manifest_is_two(self, tmp_path, capsys):
        bad = tmp_path / "manifest.json"
        bad.write_text(json.dumps({"collector": "vtune"}))
        assert exit_code(["ingest", "report", str(bad)]) == 2
        assert "unknown collector" in capsys.readouterr().err

    def test_broken_corpus_is_two(self, tmp_path, capsys):
        corpus = tmp_path / "spr"
        shutil.copytree(SPR, corpus)
        target = corpus / "groupA" / "k02_never_taken.csv"
        target.write_text("garbage that is not perf output\n")
        assert (
            exit_code(["ingest", "report", str(corpus / "manifest.json")])
            == 2
        )
        assert "unrecognized perf stat" in capsys.readouterr().err


class TestRun:
    def test_run_publishes_with_provenance(self, tmp_path, capsys):
        catalog = tmp_path / "catalog"
        assert (
            exit_code(
                [
                    "ingest",
                    "run",
                    str(SPR / "manifest.json"),
                    "--catalog",
                    str(catalog),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "degraded (composes a quality-flagged column)" in out
        assert "spr-ingest@seed0" in out
        # The published entry surfaces its ingestion provenance through
        # the ordinary catalog CLI — the ISSUE's acceptance check.
        assert (
            exit_code(
                [
                    "catalog",
                    "show",
                    "--root",
                    str(catalog),
                    "--arch",
                    "spr-ingest",
                    "Mispredicted Branches.",
                ]
            )
            == 0
        )
        shown = capsys.readouterr().out
        assert "provenance   : perf ingest, uarch sapphire_rapids" in shown
        assert "baseline.txt" in shown
        assert "[DEGRADED]" in shown

    def test_rerun_dedupes(self, tmp_path, capsys):
        catalog = tmp_path / "catalog"
        argv = [
            "ingest",
            "run",
            str(ZEN3 / "manifest.json"),
            "--catalog",
            str(catalog),
        ]
        assert exit_code(argv) == 0
        first = capsys.readouterr().out
        assert "0 deduped" in first
        assert exit_code(argv) == 0
        second = capsys.readouterr().out
        assert "(0 new," in second  # every entry collapsed onto v1

    def test_run_without_catalog_only_analyzes(self, capsys):
        assert exit_code(["ingest", "run", str(ZEN3 / "manifest.json")]) == 0
        assert "catalog:" not in capsys.readouterr().out

    def test_missing_manifest_is_two(self, capsys):
        assert exit_code(["ingest", "run", "/nonexistent/manifest.json"]) == 2

    def test_unknown_subcommand_is_two(self, capsys):
        assert exit_code(["ingest", "frobnicate"]) == 2
