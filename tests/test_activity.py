"""Tests for the shared activity record and key schema."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity import (
    Activity,
    CPU_ACTIVITY_KEYS,
    GPU_ACTIVITY_KEYS,
    flops_per_instruction,
    fp_instr_key,
    valu_instr_key,
)


class TestKeySchema:
    def test_fp_key_format(self):
        assert fp_instr_key("256", "dp", "fma") == "instr.fp.256.dp.fma"
        assert fp_instr_key("scalar", "sp", "nonfma") == "instr.fp.scalar.sp.nonfma"

    def test_fp_key_validation(self):
        with pytest.raises(ValueError):
            fp_instr_key("1024", "dp", "fma")
        with pytest.raises(ValueError):
            fp_instr_key("256", "hp", "fma")
        with pytest.raises(ValueError):
            fp_instr_key("256", "dp", "maybe")

    def test_valu_key_format(self):
        assert valu_instr_key("trans", "f64") == "gpu.valu.trans.f64"

    def test_valu_key_validation(self):
        with pytest.raises(ValueError):
            valu_instr_key("div", "f64")
        with pytest.raises(ValueError):
            valu_instr_key("add", "f128")

    def test_schemas_are_distinct_and_complete(self):
        assert len(set(CPU_ACTIVITY_KEYS)) == len(CPU_ACTIVITY_KEYS)
        assert len(set(GPU_ACTIVITY_KEYS)) == len(GPU_ACTIVITY_KEYS)
        assert not set(CPU_ACTIVITY_KEYS) & set(GPU_ACTIVITY_KEYS)
        assert "instr.fp.512.dp.fma" in CPU_ACTIVITY_KEYS
        assert "gpu.valu.fma.f64" in GPU_ACTIVITY_KEYS


class TestFlopsPerInstruction:
    @pytest.mark.parametrize(
        "width,prec,fma,expected",
        [
            ("scalar", "sp", False, 1),
            ("scalar", "dp", True, 2),
            ("128", "sp", False, 4),
            ("128", "dp", False, 2),
            ("256", "sp", True, 16),
            ("512", "dp", False, 8),
            ("512", "sp", True, 32),
        ],
    )
    def test_table(self, width, prec, fma, expected):
        assert flops_per_instruction(width, prec, fma) == expected

    def test_fma_always_doubles(self):
        for width in ("scalar", "128", "256", "512"):
            for prec in ("sp", "dp"):
                assert flops_per_instruction(width, prec, True) == 2 * flops_per_instruction(
                    width, prec, False
                )


class TestActivityRecord:
    def test_mapping_protocol(self):
        act = Activity({"a": 1.0, "b": 2.0})
        assert act["a"] == 1.0
        assert len(act) == 2
        assert set(act) == {"a", "b"}
        assert "Activity(2 keys, 2 nonzero)" == repr(act)

    def test_unknown_keys_read_zero(self):
        assert Activity({}).get("whatever") == 0.0

    def test_scaled(self):
        act = Activity({"a": 2.0}).scaled(3.0)
        assert act["a"] == 6.0

    def test_merged(self):
        merged = Activity({"a": 1.0}).merged(Activity({"a": 2.0, "b": 5.0}))
        assert merged["a"] == 3.0
        assert merged["b"] == 5.0

    def test_accumulate(self):
        total = Activity.accumulate([Activity({"a": 1.0}), Activity({"a": 4.0})])
        assert total["a"] == 5.0

    def test_with_counts_overwrites(self):
        act = Activity({"a": 1.0}).with_counts(a=9.0, b=1.0)
        assert act["a"] == 9.0 and act["b"] == 1.0

    def test_as_dict_is_a_copy(self):
        act = Activity({"a": 1.0})
        d = act.as_dict()
        d["a"] = 99.0
        assert act["a"] == 1.0

    @settings(max_examples=30)
    @given(st.dictionaries(st.sampled_from("abcde"), st.floats(-1e6, 1e6), max_size=5))
    def test_property_merge_commutes(self, counts):
        a = Activity(counts)
        b = Activity({"x": 1.0, "a": 2.0})
        ab = a.merged(b).as_dict()
        ba = b.merged(a).as_dict()
        assert set(ab) == set(ba)
        for key in ab:
            assert ab[key] == pytest.approx(ba[key])

    @settings(max_examples=30)
    @given(st.floats(0.1, 100.0))
    def test_property_scaling_linear(self, factor):
        act = Activity({"a": 3.0, "b": -1.0})
        scaled = act.scaled(factor)
        assert scaled["a"] == pytest.approx(3.0 * factor)
        assert scaled["b"] == pytest.approx(-1.0 * factor)
