"""Golden end-to-end regression suite: full pipeline on every catalog.

Each case runs the complete measure -> de-noise -> represent -> QRCP ->
compose chain on one (catalog, domain) pair at the pinned seed, inside a
tracing scope, and compares a stable projection of the result — the
selected-event list, the metric table (errors and coefficient terms
through :func:`repro.io.tables.format_float`, so the text is
BLAS/platform stable), the rounded terms, the preset names, and the
trace counter totals — against the committed fixture under
``tests/golden/``.

Span *timings* are deliberately absent: they are the only
non-deterministic part of a trace.  Counter totals, selections and
formatted coefficients must not move at all; any drift fails with a
line-level diff naming exactly what changed.

Regenerating after an intentional analysis change::

    PYTHONPATH=src python -m pytest tests/test_golden_e2e.py --update-golden

then review the fixture diff like any other code change (the diff *is*
the reviewable summary of what the change did to the analysis).
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

from repro import obs
from repro.core.pipeline import AnalysisPipeline
from repro.hardware.systems import aurora_node, frontier_cpu_node, frontier_node
from repro.io.tables import format_float

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SEED = 2024

#: (fixture name, catalog, node factory, domain)
CASES = [
    ("sapphire_rapids-cpu_flops", "sapphire_rapids", aurora_node, "cpu_flops"),
    ("sapphire_rapids-branch", "sapphire_rapids", aurora_node, "branch"),
    ("sapphire_rapids-dcache", "sapphire_rapids", aurora_node, "dcache"),
    ("zen3-cpu_flops", "zen3", frontier_cpu_node, "cpu_flops"),
    ("zen3-branch", "zen3", frontier_cpu_node, "branch"),
    ("mi250x-gpu_flops", "mi250x", frontier_node, "gpu_flops"),
]


def golden_payload(result, catalog: str) -> dict:
    """The stable projection of a pipeline result a golden fixture pins."""

    def metric_entry(metric) -> dict:
        # Coefficients and errors below 1e-12 are accumulation residue
        # whose exact value depends on the BLAS summation order; pinning
        # them would make the fixtures platform-sensitive for no signal.
        entry = {
            "error": (
                "<1e-12" if 0 < metric.error < 1e-12
                else format_float(metric.error)
            ),
            "composable": metric.composable,
            "terms": {
                event: format_float(coeff)
                for event, coeff in sorted(metric.terms().items())
                if abs(coeff) >= 1e-12
            },
        }
        if metric.trust is not None:
            entry["trust"] = metric.trust.level
        return entry

    assert result.trace is not None, "golden runs must execute traced"
    return {
        "catalog": catalog,
        "domain": result.domain,
        "seed": SEED,
        "events_measured": result.noise.n_measured,
        "discarded_zero": sorted(result.noise.discarded_zero),
        "noisy": sorted(result.noise.noisy),
        "representation_rejected": sorted(result.representation.rejected),
        "selected_events": list(result.selected_events),
        "metrics": {
            name: metric_entry(metric)
            for name, metric in sorted(result.metrics.items())
        },
        "rounded_terms": {
            name: {
                event: format_float(coeff)
                for event, coeff in sorted(metric.terms().items())
            }
            for name, metric in sorted(result.rounded_metrics.items())
        },
        "presets": sorted(p.name for p in result.presets),
        "trace_counters": result.trace.counter_totals(),
    }


def run_case(node_factory, domain: str):
    node = node_factory(seed=SEED)
    with obs.tracing(seed=SEED):
        return AnalysisPipeline.for_domain(domain, node).run()


def dumps(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize(
    "name,catalog,node_factory,domain",
    CASES,
    ids=[case[0] for case in CASES],
)
def test_golden_e2e(name, catalog, node_factory, domain, update_golden):
    path = GOLDEN_DIR / f"{name}.json"
    result = run_case(node_factory, domain)
    actual = dumps(golden_payload(result, catalog))

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"golden fixture regenerated: {path.name}")

    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"pytest {__file__} --update-golden"
    )
    expected = path.read_text()
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"golden/{path.name} (committed)",
                tofile=f"golden/{path.name} (this run)",
                lineterm="",
            )
        )
        pytest.fail(
            f"golden drift on {name}:\n{diff}\n\n"
            "If this change is intentional, regenerate with "
            "--update-golden and commit the fixture diff.",
            pytrace=False,
        )


def test_golden_dir_has_no_strays():
    """Every committed fixture corresponds to a live case (a renamed or
    removed case must take its fixture with it)."""
    committed = {p.name for p in GOLDEN_DIR.glob("*.json")}
    expected = {f"{case[0]}.json" for case in CASES}
    assert committed == expected
