"""Tests for RawEvent and the registry."""

import numpy as np
import pytest

from repro.events import EventDomain, EventRegistry, RawEvent, relative_gaussian
from repro.activity import Activity


def _event(name="E", qualifier="", domain=EventDomain.OTHER, response=None, **kw):
    return RawEvent(
        name=name, qualifier=qualifier, domain=domain, response=response or {}, **kw
    )


class TestRawEvent:
    def test_full_name_with_qualifier(self):
        e = _event("BR_INST_RETIRED", "COND", EventDomain.BRANCH)
        assert e.full_name == "BR_INST_RETIRED:COND"

    def test_full_name_unqualified(self):
        assert _event("BR_MISP_RETIRED").full_name == "BR_MISP_RETIRED"

    def test_full_name_gpu_device(self):
        e = _event("SQ_INSTS_VALU_ADD_F16", device=3)
        assert e.full_name == "rocm:::SQ_INSTS_VALU_ADD_F16:device=3"

    def test_true_count_is_linear_functional(self):
        e = _event(response={"a": 2.0, "b": -1.0})
        act = Activity({"a": 10.0, "b": 4.0, "c": 99.0})
        assert e.true_count(act) == 16.0

    def test_unknown_activity_keys_read_zero(self):
        e = _event(response={"missing": 5.0})
        assert e.true_count(Activity({})) == 0.0

    def test_read_applies_noise_deterministically(self):
        e = _event(response={"a": 1.0}, noise=relative_gaussian(1e-2))
        act = Activity({"a": 1000.0})
        r1 = e.read(act, np.random.default_rng(1))
        r2 = e.read(act, np.random.default_rng(1))
        assert r1 == r2
        assert r1 != e.true_count(act)

    def test_fma_double_count_semantics(self):
        # The catalog convention the paper's Table V depends on.
        e = _event(
            "FP_ARITH_INST_RETIRED",
            "SCALAR_DOUBLE",
            EventDomain.FLOPS,
            response={"instr.fp.scalar.dp.nonfma": 1.0, "instr.fp.scalar.dp.fma": 2.0},
        )
        nonfma = Activity({"instr.fp.scalar.dp.nonfma": 24.0})
        fma = Activity({"instr.fp.scalar.dp.fma": 12.0})
        assert e.true_count(nonfma) == 24.0
        assert e.true_count(fma) == 24.0  # 12 FMA instructions count twice

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            _event(name="")

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            RawEvent(name="X", domain="bogus")

    def test_responds_to(self):
        e = _event(response={"cache.l1d.demand_hit": 1.0})
        assert e.responds_to("cache.l1d")
        assert not e.responds_to("branch")


class TestEventRegistry:
    def test_add_and_get(self):
        reg = EventRegistry(name="t")
        e = _event("A", "X")
        reg.add(e)
        assert reg.get("A:X") is e
        assert "A:X" in reg
        assert len(reg) == 1

    def test_duplicate_rejected(self):
        reg = EventRegistry([_event("A")])
        with pytest.raises(ValueError):
            reg.add(_event("A"))

    def test_missing_lookup_raises_with_context(self):
        reg = EventRegistry(name="spr")
        with pytest.raises(KeyError, match="spr"):
            reg.get("NOPE")

    def test_preserves_insertion_order(self):
        events = [_event(f"E{i}") for i in range(5)]
        reg = EventRegistry(events)
        assert reg.full_names == [f"E{i}" for i in range(5)]

    def test_select_by_domain(self):
        reg = EventRegistry(
            [
                _event("A", domain=EventDomain.BRANCH),
                _event("B", domain=EventDomain.CACHE),
                _event("C", domain=EventDomain.BRANCH),
            ]
        )
        sel = reg.select(domains=[EventDomain.BRANCH])
        assert sel.full_names == ["A", "C"]

    def test_select_by_prefix_and_predicate(self):
        reg = EventRegistry([_event("BR_A"), _event("BR_B"), _event("FP_A")])
        assert reg.select(prefix="BR_").full_names == ["BR_A", "BR_B"]
        sel = reg.select(predicate=lambda e: e.name.endswith("A"))
        assert sel.full_names == ["BR_A", "FP_A"]

    def test_select_by_device(self):
        reg = EventRegistry([_event("X", device=0), _event("X2", device=1)])
        assert reg.select(device=1).full_names == ["rocm:::X2:device=1"]

    def test_domains_histogram(self):
        reg = EventRegistry(
            [_event("A", domain=EventDomain.BRANCH), _event("B", domain=EventDomain.BRANCH)]
        )
        assert reg.domains() == {EventDomain.BRANCH: 2}
