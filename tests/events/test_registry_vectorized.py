"""The packed weight matrix: vectorized true counts vs the scalar reference.

The reproducibility contract requires the two paths to agree *exactly* —
not approximately — on every catalog event: the packed product is
evaluated term-ordered so each event's response sum happens in the same
order as ``RawEvent.true_count``'s scalar loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity import Activity
from repro.events import EventRegistry, PackedWeights, RawEvent
from repro.events.catalogs import mi250x_events, sapphire_rapids_events, zen3_events

CATALOGS = {
    "sapphire_rapids": sapphire_rapids_events,
    "zen3": zen3_events,
    "mi250x": mi250x_events,
}


def _random_activities(keys, seed, n=4):
    rng = np.random.default_rng(seed)
    activities = []
    for _ in range(n):
        # Integer occurrence counts plus a few fractional/negative values:
        # exactness must not rely on friendly inputs.
        values = rng.integers(0, 10**9, size=len(keys)).astype(float)
        values[rng.random(len(keys)) < 0.1] = rng.standard_normal() * 1e6
        activities.append(Activity(dict(zip(keys, values))))
    return activities


class TestPackedWeights:
    @pytest.mark.parametrize("name", sorted(CATALOGS))
    def test_vectorized_matches_scalar_exactly(self, name):
        registry = CATALOGS[name]()
        packed = registry.weight_matrix()
        events = list(registry)
        activities = _random_activities(packed.keys, seed=sum(map(ord, name)))
        matrix = packed.pack_activities(activities)
        vectorized = packed.true_counts(matrix)
        for i, activity in enumerate(activities):
            for j, event in enumerate(events):
                assert vectorized[i, j] == event.true_count(activity), (
                    f"{name}: {event.full_name} diverges from scalar path"
                )

    @pytest.mark.parametrize("name", sorted(CATALOGS))
    def test_matrix_matches_responses(self, name):
        registry = CATALOGS[name]()
        packed = registry.weight_matrix()
        for j, event in enumerate(packed.events):
            column = {
                packed.keys[k]: packed.matrix[k, j]
                for k in np.nonzero(packed.matrix[:, j])[0]
            }
            nonzero_response = {k: w for k, w in event.response.items() if w != 0.0}
            assert column == nonzero_response

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_exact_on_random_activities(self, seed):
        registry = sapphire_rapids_events()
        packed = registry.weight_matrix()
        rng = np.random.default_rng(seed)
        values = rng.uniform(-1e12, 1e12, size=len(packed.keys))
        activity = Activity(dict(zip(packed.keys, values)))
        row = packed.true_counts(activity.to_vector(packed.keys)[None, :])[0]
        scalar = np.array([e.true_count(activity) for e in packed.events])
        assert np.array_equal(row, scalar)

    def test_cache_built_once_and_invalidated_on_add(self):
        registry = EventRegistry(
            [RawEvent(name="E0", response={"instr.total": 1.0})], name="t"
        )
        first = registry.weight_matrix()
        assert registry.weight_matrix() is first
        registry.add(RawEvent(name="E1", response={"instr.int": 2.0}))
        second = registry.weight_matrix()
        assert second is not first
        assert second.n_events == 2
        assert "instr.int" in second.keys

    def test_fallback_for_overridden_true_count(self):
        class SquaredEvent(RawEvent):
            def true_count(self, activity):
                return float(activity.get("instr.total")) ** 2

        linear = RawEvent(name="LIN", response={"instr.total": 3.0})
        weird = SquaredEvent(name="SQ", response={"instr.total": 1.0})
        packed = PackedWeights([linear, weird])
        assert [j for j, _ in packed.fallback] == [1]
        activity = Activity({"instr.total": 7.0})
        counts = packed.true_counts(activity.to_vector(packed.keys)[None, :])[0]
        assert counts[0] == 21.0
        assert counts[1] == 0.0  # fallback column left for scalar evaluation

    def test_shape_validation(self):
        packed = PackedWeights([RawEvent(name="E", response={"a": 1.0})])
        with pytest.raises(ValueError, match="activity matrix"):
            packed.true_counts(np.zeros((2, 5)))


class TestActivityToVector:
    def test_dense_projection(self):
        activity = Activity({"a": 1.0, "b": 2.0})
        assert activity.to_vector(("b", "c", "a")).tolist() == [2.0, 0.0, 1.0]

    def test_shared_key_index(self):
        activity = Activity({"x": 5.0})
        keys = ("x", "y")
        index = {k: i for i, k in enumerate(keys)}
        assert activity.to_vector(keys, key_index=index).tolist() == [5.0, 0.0]
