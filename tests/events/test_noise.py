"""Tests for the measurement-noise models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.noise import (
    NoiseModel,
    no_noise,
    quantized,
    relative_gaussian,
    spiky,
)


class TestNoiseModelValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(kind="pink")

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(kind="relative_gaussian", sigma=-0.1)

    def test_deterministic_flag(self):
        assert no_noise().is_deterministic
        assert not relative_gaussian(1e-3).is_deterministic
        assert not spiky(1e-3, 0.1, 1.0).is_deterministic


class TestNoNoise:
    def test_identity_without_rng(self):
        assert no_noise().apply(42.0, None) == 42.0

    @given(st.floats(-1e9, 1e9, allow_nan=False))
    def test_identity_any_value(self, v):
        assert no_noise().apply(v, None) == v


class TestRelativeGaussian:
    def test_requires_rng(self):
        with pytest.raises(ValueError):
            relative_gaussian(1e-3).apply(1.0, None)

    def test_same_seed_same_reading(self):
        model = relative_gaussian(1e-2)
        r1 = model.apply(100.0, np.random.default_rng(5))
        r2 = model.apply(100.0, np.random.default_rng(5))
        assert r1 == r2

    def test_different_seeds_differ(self):
        model = relative_gaussian(1e-2)
        r1 = model.apply(100.0, np.random.default_rng(5))
        r2 = model.apply(100.0, np.random.default_rng(6))
        assert r1 != r2

    def test_relative_magnitude(self):
        model = relative_gaussian(1e-3)
        readings = np.array(
            [model.apply(1e6, np.random.default_rng(s)) for s in range(200)]
        )
        rel = np.std(readings) / 1e6
        assert 3e-4 < rel < 3e-3  # close to the configured sigma

    def test_zero_count_with_floor_reads_positive_sometimes(self):
        model = relative_gaussian(0.0, floor=5.0)
        readings = [model.apply(0.0, np.random.default_rng(s)) for s in range(50)]
        assert all(r >= 0.0 for r in readings)
        assert any(r > 0.0 for r in readings)

    def test_never_negative(self):
        model = relative_gaussian(2.0)  # huge sigma to force negatives pre-clamp
        readings = [model.apply(1.0, np.random.default_rng(s)) for s in range(100)]
        assert min(readings) >= 0.0


class TestSpiky:
    def test_spikes_occur_at_configured_rate(self):
        model = spiky(sigma=0.0, spike_rate=0.5, spike_scale=10.0)
        readings = np.array(
            [model.apply(100.0, np.random.default_rng(s)) for s in range(400)]
        )
        spiked = np.count_nonzero(readings > 150.0)
        assert 50 < spiked < 350  # roughly half spike, loose bounds

    def test_spikes_are_positive_inflations(self):
        model = spiky(sigma=0.0, spike_rate=1.0, spike_scale=1.0)
        reading = model.apply(100.0, np.random.default_rng(0))
        assert reading > 100.0


class TestApplyBatch:
    """The vectorized hot path used by the measurement runner."""

    def test_none_is_identity_copy(self):
        values = np.array([1.0, 2.0, 0.0])
        out = no_noise().apply_batch(values, None)
        assert np.array_equal(out, values)
        out[0] = 99.0
        assert values[0] == 1.0  # a copy, not a view

    def test_requires_rng_for_noisy_models(self):
        with pytest.raises(ValueError):
            relative_gaussian(1e-3).apply_batch(np.ones(3), None)

    def test_deterministic_per_stream(self):
        model = relative_gaussian(1e-2, floor=0.1)
        values = np.linspace(1, 10, 7)
        a = model.apply_batch(values, np.random.default_rng(3))
        b = model.apply_batch(values, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_statistics_match_scalar_semantics(self):
        # Same distribution as element-wise apply: compare moments.
        model = relative_gaussian(5e-2)
        values = np.full(20_000, 100.0)
        batch = model.apply_batch(values, np.random.default_rng(0))
        scalar = np.array(
            [model.apply(100.0, np.random.default_rng(i)) for i in range(2_000)]
        )
        assert np.mean(batch) == pytest.approx(np.mean(scalar), rel=2e-3)
        assert np.std(batch) == pytest.approx(np.std(scalar), rel=0.1)

    def test_never_negative(self):
        model = relative_gaussian(3.0)
        out = model.apply_batch(np.full(500, 1.0), np.random.default_rng(1))
        assert (out >= 0.0).all()

    def test_spiky_rate(self):
        model = spiky(sigma=0.0, spike_rate=0.25, spike_scale=10.0)
        out = model.apply_batch(np.full(4_000, 100.0), np.random.default_rng(2))
        spiked = np.count_nonzero(out > 150.0)
        assert 500 < spiked < 1500

    def test_quantized_grid(self):
        model = quantized(quantum=16.0, sigma=1e-3)
        out = model.apply_batch(np.linspace(0, 100, 50), np.random.default_rng(4))
        assert np.allclose(out % 16.0, 0.0, atol=1e-9)

    def test_zero_values_jitter_around_floor_scale(self):
        model = relative_gaussian(1e-2)
        out = model.apply_batch(np.zeros(100), np.random.default_rng(5))
        # Zero counts use unit scale, like the scalar path.
        assert out.max() < 0.1

    def test_shape_preserved(self):
        model = relative_gaussian(1e-3)
        out = model.apply_batch(np.ones((3, 4, 5)), np.random.default_rng(6))
        assert out.shape == (3, 4, 5)


class TestQuantized:
    def test_snaps_to_quantum(self):
        model = quantized(quantum=64.0)
        assert model.apply(100.0, np.random.default_rng(0)) % 64.0 == 0.0

    def test_exact_multiple_unchanged(self):
        model = quantized(quantum=64.0)
        assert model.apply(128.0, np.random.default_rng(0)) == 128.0

    @settings(max_examples=40)
    @given(st.floats(0, 1e6, allow_nan=False), st.integers(0, 1000))
    def test_property_always_on_grid(self, value, seed):
        model = quantized(quantum=16.0, sigma=1e-3)
        reading = model.apply(value, np.random.default_rng(seed))
        assert reading % 16.0 == pytest.approx(0.0, abs=1e-9)
