"""Tests for cached registry/config digests (the catalog-read hot path)."""

from dataclasses import replace

from repro.core.pipeline import DOMAIN_CONFIGS, PipelineConfig
from repro.events.model import RawEvent
from repro.events.registry import EventRegistry
from repro.hardware import aurora_node
from repro.io.cache import event_set_digest


def _tiny_registry():
    return EventRegistry(
        [
            RawEvent(name="A", domain="branch", response={"k": 1.0}),
            RawEvent(name="B", domain="branch", response={"k": 2.0}),
        ],
        name="tiny",
    )


class TestRegistryContentDigest:
    def test_matches_event_set_digest(self):
        registry = _tiny_registry()
        assert registry.content_digest() == event_set_digest(list(registry))

    def test_cached_across_calls(self):
        registry = _tiny_registry()
        first = registry.content_digest()
        assert registry.content_digest() is first  # memoized string

    def test_add_invalidates(self):
        registry = _tiny_registry()
        before = registry.content_digest()
        deps_before = registry.event_digests()
        registry.add(RawEvent(name="C", domain="branch", response={"k": 3.0}))
        assert registry.content_digest() != before
        deps_after = registry.event_digests()
        assert set(deps_after) == set(deps_before) | {"C"}
        for name in deps_before:
            assert deps_after[name] == deps_before[name]

    def test_event_digests_returns_copy(self):
        registry = _tiny_registry()
        deps = registry.event_digests()
        deps["A"] = "tampered"
        assert registry.event_digests()["A"] != "tampered"

    def test_node_registry_digest_is_stable(self):
        node = aurora_node(seed=7)
        assert node.events.content_digest() == node.events.content_digest()
        assert node.events.content_digest() == event_set_digest(
            list(node.events)
        )


class TestConfigDigestMemo:
    def test_repeated_calls_return_cached_value(self):
        config = replace(DOMAIN_CONFIGS["branch"])  # fresh instance
        first = config.digest()
        assert config.digest() is first

    def test_distinct_configs_distinct_digests(self):
        base = DOMAIN_CONFIGS["branch"]
        other = replace(base, tau=base.tau * 2)
        assert base.digest() != other.digest()

    def test_cache_flag_still_normalized(self):
        base = replace(DOMAIN_CONFIGS["branch"], use_measurement_cache=False)
        cached = replace(base, use_measurement_cache=True)
        assert base.digest() == cached.digest()
