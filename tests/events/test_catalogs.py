"""Tests for the SPR and MI250X event catalogs."""

import numpy as np
import pytest

from repro.events import EventDomain
from repro.events.catalogs import (
    MI250X_DEVICE_COUNT,
    mi250x_events,
    sapphire_rapids_events,
)
from repro.activity import Activity, fp_instr_key, valu_instr_key


@pytest.fixture(scope="module")
def spr():
    return sapphire_rapids_events()


@pytest.fixture(scope="module")
def gpu():
    return mi250x_events()


class TestSapphireRapidsCatalog:
    def test_catalog_size_is_substantial(self, spr):
        assert len(spr) > 200

    def test_deterministic_rebuild(self, spr):
        other = sapphire_rapids_events()
        assert other.full_names == spr.full_names
        for name in spr.full_names:
            assert spr.get(name).noise == other.get(name).noise

    def test_key_fp_events_present(self, spr):
        for width in ("128B", "256B", "512B"):
            for prec in ("SINGLE", "DOUBLE"):
                assert f"FP_ARITH_INST_RETIRED:{width}_PACKED_{prec}" in spr
        assert "FP_ARITH_INST_RETIRED:SCALAR_SINGLE" in spr
        assert "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE" in spr

    def test_fp_events_count_fma_twice(self, spr):
        e = spr.get("FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE")
        act = Activity(
            {
                fp_instr_key("256", "dp", "nonfma"): 10.0,
                fp_instr_key("256", "dp", "fma"): 5.0,
            }
        )
        assert e.true_count(act) == 20.0

    def test_fp_events_are_noise_free(self, spr):
        for name in (
            "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE",
            "BR_INST_RETIRED:COND",
            "BR_MISP_RETIRED",
            "INST_RETIRED:ANY",
        ):
            assert spr.get(name).noise.is_deterministic, name

    def test_cache_events_are_noisy(self, spr):
        for name in (
            "MEM_LOAD_RETIRED:L1_HIT",
            "L2_RQSTS:DEMAND_DATA_RD_HIT",
            "MEM_LOAD_RETIRED:L3_HIT",
        ):
            assert not spr.get(name).noise.is_deterministic, name

    def test_mem_load_l2_attribution_is_offcore_noisy(self, spr):
        # Modelled flakiness that pushes the pipeline toward L2_RQSTS for
        # the L2DH dimension, as in the paper's selection.
        e = spr.get("MEM_LOAD_RETIRED:L2_HIT")
        assert e.noise.kind == "spiky"

    def test_no_speculative_branch_event(self, spr):
        # SPR dropped BR_INST_EXEC; its absence is what makes the paper's
        # "Conditional Branches Executed" metric uncomposable.
        assert not any(n.startswith("BR_INST_EXEC") for n in spr.full_names)
        for name in spr.full_names:
            assert not spr.get(name).responds_to("branch.cond_executed"), name

    def test_misp_alias_precedes_qualified_family(self, spr):
        names = spr.full_names
        assert names.index("BR_MISP_RETIRED") < names.index(
            "BR_MISP_RETIRED:ALL_BRANCHES"
        )

    def test_aggregate_fp_events_are_linear_combinations(self, spr):
        vec = spr.get("FP_ARITH_INST_RETIRED:VECTOR")
        parts = [
            spr.get(f"FP_ARITH_INST_RETIRED:{w}B_PACKED_{p}")
            for w in (128, 256, 512)
            for p in ("SINGLE", "DOUBLE")
        ]
        act = Activity(
            {
                fp_instr_key(w, p, k): float(i + 1)
                for i, (w, p, k) in enumerate(
                    (w, p, k)
                    for w in ("scalar", "128", "256", "512")
                    for p in ("sp", "dp")
                    for k in ("nonfma", "fma")
                )
            }
        )
        assert vec.true_count(act) == pytest.approx(
            sum(p.true_count(act) for p in parts)
        )

    def test_some_events_are_completely_dead(self, spr):
        dead = [
            n
            for n in spr.full_names
            if not spr.get(n).response and spr.get(n).noise.is_deterministic
        ]
        # AMX/TSX etc: the all-zero columns footnote 1 of the paper discards.
        assert len(dead) >= 5

    def test_every_domain_is_populated(self, spr):
        hist = spr.domains()
        for domain in (
            EventDomain.FLOPS,
            EventDomain.BRANCH,
            EventDomain.CACHE,
            EventDomain.TLB,
            EventDomain.PIPELINE,
            EventDomain.FRONTEND,
        ):
            assert hist.get(domain, 0) >= 5, domain


class TestMI250XCatalog:
    def test_catalog_covers_eight_devices(self, gpu):
        assert len(gpu) > 1000
        devices = {e.device for e in gpu}
        assert devices == set(range(MI250X_DEVICE_COUNT))

    def test_key_valu_events_present_per_device(self, gpu):
        for dev in range(MI250X_DEVICE_COUNT):
            for op in ("ADD", "MUL", "TRANS", "FMA"):
                for prec in ("F16", "F32", "F64"):
                    assert f"rocm:::SQ_INSTS_VALU_{op}_{prec}:device={dev}" in gpu

    def test_add_event_counts_subtractions_too(self, gpu):
        e = gpu.get("rocm:::SQ_INSTS_VALU_ADD_F32:device=0")
        act = Activity(
            {valu_instr_key("add", "f32"): 7.0, valu_instr_key("sub", "f32"): 3.0}
        )
        assert e.true_count(act) == 10.0

    def test_fma_counts_instructions_not_operations(self, gpu):
        # Unlike Intel's FP_ARITH double count: one increment per FMA.
        e = gpu.get("rocm:::SQ_INSTS_VALU_FMA_F64:device=0")
        act = Activity({valu_instr_key("fma", "f64"): 12.0})
        assert e.true_count(act) == 12.0

    def test_inactive_devices_have_no_response(self, gpu):
        for dev in range(1, MI250X_DEVICE_COUNT):
            e = gpu.get(f"rocm:::SQ_INSTS_VALU_ADD_F16:device={dev}")
            assert not e.response

    def test_active_device_aggregate_depends_on_parts(self, gpu):
        agg = gpu.get("rocm:::SQ_INSTS_VALU:device=0")
        act = Activity({valu_instr_key("mul", "f32"): 4.0})
        assert agg.true_count(act) == 4.0

    def test_deterministic_rebuild(self, gpu):
        assert mi250x_events().full_names == gpu.full_names
