"""Tests for declarative registry edits (``repro.incr.registry_edit``)."""

import json
import os

import pytest

from repro.events.model import RawEvent
from repro.hardware import aurora_node
from repro.incr import RegistryEdit, apply_edits, load_edits, parse_edits


@pytest.fixture(scope="module")
def registry():
    return aurora_node(seed=7).events


class TestRegistryEdit:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            RegistryEdit(action="rename", event="X")

    def test_missing_target_rejected(self):
        with pytest.raises(ValueError):
            RegistryEdit(action="remove")

    def test_scale_needs_factor(self):
        with pytest.raises(ValueError):
            RegistryEdit(action="scale-response", event="X")

    def test_set_weight_needs_key_and_weight(self):
        with pytest.raises(ValueError):
            RegistryEdit(action="set-weight", event="X", key="k")

    def test_add_needs_event(self):
        with pytest.raises(ValueError):
            RegistryEdit(action="add")

    def test_describe(self):
        edit = RegistryEdit(action="scale-response", event="E", factor=2.0)
        assert "E" in edit.describe() and "2" in edit.describe()


class TestApplyEdits:
    def test_pure_and_order_preserving(self, registry):
        target = list(registry)[3].full_name
        before = [e.full_name for e in registry]
        edited = apply_edits(
            registry,
            [RegistryEdit(action="scale-response", event=target, factor=2.0)],
        )
        assert [e.full_name for e in edited] == before
        assert [e.full_name for e in registry] == before  # input untouched
        original = next(e for e in registry if e.full_name == target)
        changed = next(e for e in edited if e.full_name == target)
        assert dict(changed.response) == {
            k: 2.0 * w for k, w in original.response.items()
        }

    def test_remove(self, registry):
        target = list(registry)[0].full_name
        edited = apply_edits(
            registry, [RegistryEdit(action="remove", event=target)]
        )
        assert target not in {e.full_name for e in edited}
        assert len(list(edited)) == len(list(registry)) - 1

    def test_set_weight_adds_and_deletes(self, registry):
        target = list(registry)[0].full_name
        edited = apply_edits(
            registry,
            [
                RegistryEdit(
                    action="set-weight", event=target, key="extra", weight=3.0
                )
            ],
        )
        changed = next(e for e in edited if e.full_name == target)
        assert changed.response["extra"] == 3.0
        cleared = apply_edits(
            edited,
            [
                RegistryEdit(
                    action="set-weight", event=target, key="extra", weight=0.0
                )
            ],
        )
        assert "extra" not in next(
            e for e in cleared if e.full_name == target
        ).response

    def test_add_appends(self, registry):
        new = RawEvent(
            name="SYNTHETIC_EVENT", domain="branch", response={"k": 1.0}
        )
        edited = apply_edits(
            registry, [RegistryEdit(action="add", new_event=new)]
        )
        assert list(edited)[-1].full_name == "SYNTHETIC_EVENT"

    def test_add_duplicate_rejected(self, registry):
        existing = list(registry)[0]
        with pytest.raises(ValueError):
            apply_edits(
                registry, [RegistryEdit(action="add", new_event=existing)]
            )

    def test_missing_target_raises(self, registry):
        with pytest.raises(KeyError):
            apply_edits(
                registry,
                [RegistryEdit(action="remove", event="NO_SUCH_EVENT")],
            )

    def test_edited_label(self, registry):
        target = list(registry)[0].full_name
        edited = apply_edits(
            registry, [RegistryEdit(action="remove", event=target)]
        )
        assert edited.name.endswith("[edited]")

    def test_digest_changes_only_for_edited_event(self, registry):
        target = list(registry)[2].full_name
        edited = apply_edits(
            registry,
            [RegistryEdit(action="scale-response", event=target, factor=1.1)],
        )
        before = registry.event_digests()
        after = edited.event_digests()
        assert before[target] != after[target]
        for name in before:
            if name != target:
                assert before[name] == after[name]
        assert registry.content_digest() != edited.content_digest()


class TestParseAndLoad:
    def test_parse_round_trip(self):
        payload = [
            {"action": "remove", "event": "A"},
            {"action": "scale-response", "event": "B", "factor": 2.0},
            {"action": "set-weight", "event": "C", "key": "k", "weight": 1.5},
            {
                "action": "add",
                "name": "NEW_EVT",
                "domain": "branch",
                "response": {"r": 1.0},
            },
        ]
        edits = parse_edits(payload)
        assert [e.action for e in edits] == [
            "remove",
            "scale-response",
            "set-weight",
            "add",
        ]
        assert edits[3].new_event.full_name == "NEW_EVT"

    def test_parse_rejects_non_list(self):
        with pytest.raises(ValueError):
            parse_edits({"action": "remove"})

    def test_parse_rejects_actionless_item(self):
        with pytest.raises(ValueError):
            parse_edits([{"event": "A"}])

    def test_load_edits_mtime_cache(self, tmp_path):
        path = tmp_path / "edits.json"
        path.write_text(json.dumps([{"action": "remove", "event": "A"}]))
        first = load_edits(path)
        assert first is load_edits(path)  # same mtime: cached tuple
        # A rewrite with a different mtime re-parses.
        path.write_text(json.dumps([{"action": "remove", "event": "B"}]))
        os.utime(path, (1, 1))
        second = load_edits(path)
        assert second is not first
        assert second[0].event == "B"

    def test_load_edits_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            load_edits(tmp_path / "nope.json")
