"""Tests for delta-keyed measurement reuse (``repro.incr.delta``)."""

import numpy as np
import pytest

from repro.cat import BenchmarkRunner, BranchBenchmark
from repro.hardware import aurora_node
from repro.incr import column_key, measure_with_deltas
from repro.incr.registry_edit import RegistryEdit, apply_edits
from repro.io.cache import MeasurementCache
from repro.obs import tracing

REPS = 3


@pytest.fixture(scope="module")
def node():
    return aurora_node(seed=7)


@pytest.fixture(scope="module")
def bench():
    return BranchBenchmark()


@pytest.fixture(scope="module")
def registry(node, bench):
    return BenchmarkRunner(node, repetitions=REPS).select_events(bench)


@pytest.fixture(scope="module")
def full_run(node, bench, registry):
    return BenchmarkRunner(node, repetitions=REPS).run(bench, events=registry)


class TestColumnKey:
    def test_deterministic(self, node, bench, registry):
        event = list(registry)[0]
        assert column_key(node, bench, event, REPS) == column_key(
            node, bench, event, REPS
        )

    def test_sensitive_to_event_content(self, node, bench, registry):
        event = list(registry)[0]
        edited = apply_edits(
            registry,
            [
                RegistryEdit(
                    action="scale-response", event=event.full_name, factor=2.0
                )
            ],
        )
        edited_event = next(
            e for e in edited if e.full_name == event.full_name
        )
        assert column_key(node, bench, event, REPS) != column_key(
            node, bench, edited_event, REPS
        )

    def test_sensitive_to_repetitions_and_seed(self, node, bench, registry):
        event = list(registry)[0]
        assert column_key(node, bench, event, REPS) != column_key(
            node, bench, event, REPS + 1
        )
        assert column_key(node, bench, event, REPS) != column_key(
            aurora_node(seed=8), bench, event, REPS
        )


class TestMeasureWithDeltas:
    def test_cold_assembly_bit_identical(self, node, bench, registry, full_run):
        cache = MeasurementCache(max_memory_entries=2048)
        assembled, report = measure_with_deltas(
            node, bench, events=registry, repetitions=REPS, cache=cache
        )
        assert report.full_run and report.reused == 0
        assert report.measured == len(list(registry))
        assert assembled.event_names == full_run.event_names
        assert assembled.data.tobytes() == full_run.data.tobytes()
        assert assembled.pmu_runs == full_run.pmu_runs
        assert assembled.row_labels == full_run.row_labels

    def test_warm_assembly_reuses_every_column(self, node, bench, registry, full_run):
        cache = MeasurementCache(max_memory_entries=2048)
        measure_with_deltas(
            node, bench, events=registry, repetitions=REPS, cache=cache
        )
        with tracing(seed=0) as tracer:
            assembled, report = measure_with_deltas(
                node, bench, events=registry, repetitions=REPS, cache=cache
            )
            assert tracer.counters.get("incr.columns_reused") == report.reused
            assert "incr.columns_measured" not in tracer.counters
        assert report.measured == 0
        assert report.reused == len(list(registry))
        assert assembled.data.tobytes() == full_run.data.tobytes()
        assert assembled.pmu_runs == full_run.pmu_runs

    def test_single_edit_remeasures_one_column(self, node, bench, registry):
        cache = MeasurementCache(max_memory_entries=2048)
        measure_with_deltas(
            node, bench, events=registry, repetitions=REPS, cache=cache
        )
        target = list(registry)[1].full_name
        edited = apply_edits(
            registry,
            [RegistryEdit(action="scale-response", event=target, factor=1.5)],
        )
        assembled, report = measure_with_deltas(
            node, bench, events=edited, repetitions=REPS, cache=cache
        )
        assert report.measured == 1
        assert report.measured_events == (target,)
        assert report.reused == len(list(registry)) - 1
        # The delta-assembled set equals a from-scratch run on the
        # edited registry, bit for bit.
        scratch = BenchmarkRunner(node, repetitions=REPS).run(
            bench, events=edited
        )
        assert assembled.data.tobytes() == scratch.data.tobytes()
        assert assembled.event_names == scratch.event_names
        assert assembled.pmu_runs == scratch.pmu_runs

    def test_removal_needs_no_measurement(self, node, bench, registry):
        cache = MeasurementCache(max_memory_entries=2048)
        measure_with_deltas(
            node, bench, events=registry, repetitions=REPS, cache=cache
        )
        target = list(registry)[0].full_name
        edited = apply_edits(
            registry, [RegistryEdit(action="remove", event=target)]
        )
        assembled, report = measure_with_deltas(
            node, bench, events=edited, repetitions=REPS, cache=cache
        )
        assert report.measured == 0
        assert report.reused == len(list(registry)) - 1
        scratch = BenchmarkRunner(node, repetitions=REPS).run(
            bench, events=edited
        )
        assert assembled.data.tobytes() == scratch.data.tobytes()
