"""Tests for dependency-tracked catalog refresh (``repro.incr.engine``)."""

import dataclasses

import pytest

from repro.hardware import aurora_node
from repro.incr import (
    RegistryEdit,
    apply_edits,
    domain_event_digests,
    measured_event_domains,
    refresh_catalog,
)
from repro.io.cache import MeasurementCache
from repro.obs import tracing
from repro.serve.catalog import MetricCatalogStore

DOMAINS = ("cpu_flops", "branch")


@pytest.fixture(scope="module")
def node():
    return aurora_node(seed=7)


@pytest.fixture(scope="module")
def cache():
    return MeasurementCache(max_memory_entries=4096)


@pytest.fixture()
def built(tmp_path, node, cache):
    store = MetricCatalogStore(tmp_path / "catalog")
    report = refresh_catalog(store, node, DOMAINS, cache=cache)
    return store, report


def _event_of_domain(node, domain):
    return next(e.full_name for e in node.events if e.domain == domain)


class TestDependencySlices:
    def test_measured_event_domains(self):
        assert "flops" in measured_event_domains("cpu_flops")
        assert "branch" in measured_event_domains("cpu_flops")
        assert "branch" in measured_event_domains("branch")
        assert "flops" not in measured_event_domains("branch")
        with pytest.raises(KeyError):
            measured_event_domains("nope")

    def test_domain_event_digests_cover_the_slice(self, node):
        deps = domain_event_digests(node.events, "branch")
        sliced = {
            e.full_name
            for e in node.events
            if e.domain in measured_event_domains("branch")
        }
        assert set(deps) == sliced


class TestRefresh:
    def test_empty_store_builds_everything(self, built, node):
        store, report = built
        assert not report.unchanged
        assert {d for d, _ in report.refreshed} == set(DOMAINS)
        assert len(store.list_entries(node.name)) == len(report.refreshed)

    def test_noop_refresh_proves_freshness(self, built, node, cache):
        store, report = built
        with tracing(seed=0) as tracer:
            again = refresh_catalog(store, node, DOMAINS, cache=cache)
            assert tracer.counters.get("incr.entries_unchanged") == len(
                report.refreshed
            )
            assert "incr.entries_refreshed" not in tracer.counters
        assert not again.refreshed
        assert set(again.unchanged) == {
            (d, m) for d, m in report.refreshed
        }

    def test_flops_edit_stales_only_cpu_flops(self, built, node, cache):
        store, _ = built
        target = _event_of_domain(node, "flops")
        edited = apply_edits(
            node.events,
            [RegistryEdit(action="scale-response", event=target, factor=1.2)],
        )
        report = refresh_catalog(
            store, node, DOMAINS, registry=edited, cache=cache
        )
        assert report.stale_domains == ["cpu_flops"]
        assert all(d == "branch" for d, _ in report.unchanged)
        # Only the edited column was re-measured.
        delta = report.deltas["cpu_flops"]
        assert delta.measured_events == (target,)
        assert delta.reused == delta.total - 1

    def test_branch_edit_stales_both_domains(self, built, node, cache):
        # cpu_flops' blind sweep measures branch events too, so a branch
        # edit legitimately invalidates both domains.
        store, _ = built
        target = _event_of_domain(node, "branch")
        edited = apply_edits(
            node.events,
            [RegistryEdit(action="scale-response", event=target, factor=1.2)],
        )
        report = refresh_catalog(
            store, node, DOMAINS, registry=edited, cache=cache
        )
        assert report.stale_domains == ["branch", "cpu_flops"]
        assert not report.unchanged

    def test_refresh_equals_from_scratch(self, built, node, cache, tmp_path):
        """Refreshed entries are content-identical to a from-scratch
        build on the edited registry; untouched entries answer with
        bit-identical coefficients."""
        store, _ = built
        target = _event_of_domain(node, "flops")
        edited = apply_edits(
            node.events,
            [RegistryEdit(action="scale-response", event=target, factor=1.2)],
        )
        report = refresh_catalog(
            store, node, DOMAINS, registry=edited, cache=cache
        )
        scratch_store = MetricCatalogStore(tmp_path / "scratch")
        scratch = refresh_catalog(
            scratch_store, node, DOMAINS, registry=edited, cache=cache
        )
        assert set(report.entries) == set(scratch.entries)
        refreshed = set(report.refreshed)
        for key, scratch_entry in scratch.entries.items():
            entry = report.entries[key]
            if key in refreshed:
                assert entry.content_digest() == scratch_entry.content_digest()
            else:
                assert tuple(entry.coefficients) == tuple(
                    scratch_entry.coefficients
                )
                assert entry.error == scratch_entry.error

    def test_legacy_entries_migrate_on_first_refresh(
        self, built, node, cache, tmp_path
    ):
        """Entries stored before dependency tracking (empty map) fall
        back to the coarse whole-registry check: any edit stales them
        once, and the recompute stamps the fine-grained map."""
        store, report = built
        legacy_store = MetricCatalogStore(tmp_path / "legacy")
        for entry in report.entries.values():
            legacy_store.put(dataclasses.replace(entry, event_digests={}))

        # Same registry: the coarse digest matches, nothing recomputes.
        same = refresh_catalog(legacy_store, node, DOMAINS, cache=cache)
        assert not same.refreshed

        # An added (GPU-domain) event neither CPU benchmark measures still
        # changes the whole-registry digest, so every legacy entry goes
        # stale...
        from repro.events.model import RawEvent

        edited = apply_edits(
            node.events,
            [
                RegistryEdit(
                    action="add",
                    new_event=RawEvent(
                        name="UNCORE_SYNTH_A",
                        domain="gpu_valu",
                        response={"k": 1.0},
                    ),
                )
            ],
        )
        migrated = refresh_catalog(
            legacy_store, node, DOMAINS, registry=edited, cache=cache
        )
        assert set(migrated.refreshed) == set(report.refreshed)
        assert all(
            entry.event_digests for entry in migrated.entries.values()
        )

        # ...but with the map stamped, the next unmeasured edit is a no-op.
        edited2 = apply_edits(
            edited,
            [
                RegistryEdit(
                    action="add",
                    new_event=RawEvent(
                        name="UNCORE_SYNTH_B",
                        domain="gpu_valu",
                        response={"k": 1.0},
                    ),
                )
            ],
        )
        after = refresh_catalog(
            legacy_store, node, DOMAINS, registry=edited2, cache=cache
        )
        assert not after.refreshed
