"""Tests for in-memory incremental analysis (``repro.incr.session``)."""

import numpy as np
import pytest

from repro.core.metrics import compose_metric
from repro.core.pipeline import AnalysisPipeline
from repro.core.qrcp import qrcp_specialized
from repro.hardware import aurora_node
from repro.incr.session import IncrementalAnalysis
from repro.obs import tracing


@pytest.fixture(scope="module")
def result():
    return AnalysisPipeline.for_domain("branch", aurora_node(seed=7)).run()


@pytest.fixture()
def session(result):
    return IncrementalAnalysis(result)


def _scratch_metrics(session, x_new):
    """Oracle: from-scratch selection + composition on the edited matrix."""
    qrcp = qrcp_specialized(x_new, alpha=session.config.alpha)
    selected_names = [session.event_names[i] for i in qrcp.selected]
    x_hat = x_new[:, qrcp.selected]
    return {
        s.name: compose_metric(
            s.name,
            x_hat,
            selected_names,
            s,
            rcond=session.config.lstsq_rcond,
            guard=session.config.guard,
        )
        for s in session.signatures
    }, selected_names


def test_seeded_from_pipeline_result(result, session):
    assert session.metrics == result.metrics
    assert session.selected_events == list(result.selected_events)
    assert session.x_matrix.shape == result.representation.x_matrix.shape


def test_unselected_edit_is_untouched(result, session):
    unselected = next(
        j
        for j in range(len(session.event_names))
        if j not in set(session.qrcp.selected)
    )
    name = session.event_names[unselected]
    before = dict(session.metrics)
    column = session.x_matrix[:, unselected] * 1.000001
    with tracing(seed=0) as tracer:
        update = session.update_column(name, column)
        assert tracer.counters.get("incr.session_untouched") == 1
    assert update.path == "untouched"
    assert update.metrics == before  # bit-for-bit: same objects stand
    assert session.x_matrix[:, unselected] is not None
    np.testing.assert_array_equal(session.x_matrix[:, unselected], column)


def test_selected_edit_takes_rank_one_path(session):
    # A tiny perturbation of a *selected* column whose selection survives
    # replay: find one by probing with the oracle first.
    chosen = None
    for j in session.qrcp.selected:
        x_try = session.x_matrix.copy()
        x_try[:, j] = x_try[:, j] * (1.0 + 1e-9)
        probe = qrcp_specialized(x_try, alpha=session.config.alpha)
        if list(probe.selected) == list(session.qrcp.selected):
            chosen = j
            break
    if chosen is None:
        pytest.skip("no selected column keeps the selection stable")
    name = session.event_names[chosen]
    x_new = session.x_matrix.copy()
    x_new[:, chosen] = x_new[:, chosen] * (1.0 + 1e-9)

    oracle, oracle_names = _scratch_metrics(session, x_new)
    with tracing(seed=0) as tracer:
        update = session.update_column(name, x_new[:, chosen])
        assert tracer.counters.get("incr.session_rank_one") == 1
    assert update.path == "rank-one"
    assert update.selected_events == oracle_names
    for metric_name, definition in update.metrics.items():
        ref = oracle[metric_name]
        np.testing.assert_allclose(
            definition.coefficients, ref.coefficients, rtol=1e-7, atol=1e-10
        )
        assert "incr-rank-one-update" in definition.health.guards_fired


def test_selection_change_recomposes(session):
    # Wiping a selected column out forces a different selection.
    j = session.qrcp.selected[0]
    name = session.event_names[j]
    x_new = session.x_matrix.copy()
    x_new[:, j] = 0.0

    oracle, oracle_names = _scratch_metrics(session, x_new)
    with tracing(seed=0) as tracer:
        update = session.update_column(name, np.zeros(x_new.shape[0]))
        assert tracer.counters.get("incr.session_recomposed") == 1
    assert update.path == "recomposed"
    assert update.selected_events == oracle_names
    for metric_name, definition in update.metrics.items():
        ref = oracle[metric_name]
        assert definition.coefficients.tobytes() == ref.coefficients.tobytes()
        assert definition.error == ref.error


def test_sequential_edits_stay_correct(session):
    """State advances across edits: a second edit answers against the
    already-edited matrix, matching the oracle on the final matrix."""
    n = len(session.event_names)
    unselected = [
        j for j in range(n) if j not in set(session.qrcp.selected)
    ][:2]
    x_final = session.x_matrix.copy()
    for j in unselected:
        x_final[:, j] = x_final[:, j] * 1.001
        session.update_column(session.event_names[j], x_final[:, j])
    oracle, oracle_names = _scratch_metrics(session, x_final)
    current, current_names = (
        dict(session.metrics),
        list(session.selected_events),
    )
    assert current_names == oracle_names
    for metric_name, ref in oracle.items():
        assert (
            current[metric_name].coefficients.tobytes()
            == ref.coefficients.tobytes()
        )


def test_unknown_event_rejected(session):
    with pytest.raises(KeyError):
        session.update_column("NO_SUCH_EVENT", np.zeros(session.x_matrix.shape[0]))


def test_wrong_shape_rejected(session):
    name = session.event_names[0]
    with pytest.raises(ValueError):
        session.update_column(name, np.zeros(3))
