"""Tests for the PAPI-like middleware layer."""

import numpy as np
import pytest

from repro.activity import Activity
from repro.events import EventDomain, EventRegistry, RawEvent
from repro.hardware import PMU
from repro.papi import (
    Component,
    ComponentTable,
    EventSet,
    EventSetState,
    PAPIError,
    PresetMetric,
    PresetTable,
)


def _registry(n=5):
    return EventRegistry(
        [
            RawEvent(name=f"EV{i}", domain=EventDomain.OTHER, response={"a": float(i)})
            for i in range(n)
        ],
        name="test",
    )


@pytest.fixture
def component():
    return Component(name="cpu", events=_registry())


@pytest.fixture
def pmu():
    return PMU(programmable_counters=3, fixed_counters=0)


class TestComponent:
    def test_contains(self, component):
        assert "EV1" in component
        assert "NOPE" not in component

    def test_native_avail(self, component):
        assert component.native_avail() == [f"EV{i}" for i in range(5)]
        assert component.native_avail(prefix="EV4") == ["EV4"]


class TestComponentTable:
    def test_register_and_get(self, component):
        table = ComponentTable([component])
        assert table.get("cpu") is component
        assert len(table) == 1

    def test_duplicate_rejected(self, component):
        table = ComponentTable([component])
        with pytest.raises(ValueError):
            table.register(component)

    def test_missing_component(self):
        with pytest.raises(KeyError, match="available"):
            ComponentTable().get("rocm")

    def test_resolve_event(self, component):
        other = Component(name="rocm", events=_registry(2))
        # Names collide across registries in this synthetic setup; resolve
        # returns the first registering component.
        table = ComponentTable([component])
        assert table.resolve_event("EV3") is component
        with pytest.raises(KeyError):
            table.resolve_event("MISSING")


class TestEventSetLifecycle:
    def test_add_start_stop_read(self, component, pmu):
        es = EventSet(component, pmu)
        es.add_event("EV1")
        es.add_event("EV2")
        es.start()
        assert es.state is EventSetState.RUNNING
        readings = es.stop(Activity({"a": 10.0}))
        assert readings == {"EV1": 10.0, "EV2": 20.0}
        assert es.read() == readings
        assert es.state is EventSetState.STOPPED

    def test_counter_budget_enforced(self, component, pmu):
        es = EventSet(component, pmu)
        for i in range(3):
            es.add_event(f"EV{i}")
        with pytest.raises(PAPIError, match="counter budget"):
            es.add_event("EV3")

    def test_unknown_event_rejected(self, component, pmu):
        es = EventSet(component, pmu)
        with pytest.raises(PAPIError, match="not exposed"):
            es.add_event("NOPE")

    def test_duplicate_event_rejected(self, component, pmu):
        es = EventSet(component, pmu)
        es.add_event("EV1")
        with pytest.raises(PAPIError, match="already"):
            es.add_event("EV1")

    def test_cannot_start_empty(self, component, pmu):
        with pytest.raises(PAPIError, match="empty"):
            EventSet(component, pmu).start()

    def test_cannot_start_twice(self, component, pmu):
        es = EventSet(component, pmu)
        es.add_event("EV1")
        es.start()
        with pytest.raises(PAPIError):
            es.start()

    def test_cannot_stop_when_not_running(self, component, pmu):
        es = EventSet(component, pmu)
        es.add_event("EV1")
        with pytest.raises(PAPIError):
            es.stop(Activity({}))

    def test_cannot_add_while_running(self, component, pmu):
        es = EventSet(component, pmu)
        es.add_event("EV1")
        es.start()
        with pytest.raises(PAPIError):
            es.add_event("EV2")

    def test_read_before_measurement(self, component, pmu):
        es = EventSet(component, pmu)
        with pytest.raises(PAPIError):
            es.read()

    def test_cleanup(self, component, pmu):
        es = EventSet(component, pmu)
        es.add_event("EV1")
        es.cleanup()
        assert es.events == []
        with pytest.raises(PAPIError):
            es.read()


class TestPresets:
    def test_evaluate(self):
        p = PresetMetric(name="PAPI_X", terms={"A": 2.0, "B": -1.0})
        assert p.evaluate({"A": 5.0, "B": 3.0}) == 7.0

    def test_evaluate_missing_event(self):
        p = PresetMetric(name="PAPI_X", terms={"A": 1.0})
        with pytest.raises(KeyError, match="missing"):
            p.evaluate({"B": 1.0})

    def test_pretty_renders_signs(self):
        p = PresetMetric(name="PAPI_X", terms={"A": 1.0, "B": -2.0}, fitness=1e-16)
        text = p.pretty()
        assert "1 x A" in text and "- 2 x B" in text

    def test_table_lifecycle(self):
        table = PresetTable("spr")
        table.define(PresetMetric(name="PAPI_A", terms={"E": 1.0}, fitness=1e-16))
        table.define(PresetMetric(name="PAPI_B", terms={"E": 1.0}, fitness=0.9))
        assert "PAPI_A" in table
        assert len(table) == 2
        assert [p.name for p in table.composable()] == ["PAPI_A"]
        with pytest.raises(KeyError, match="available"):
            table.get("PAPI_C")
