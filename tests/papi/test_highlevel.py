"""Tests for the PAPI high-level region API."""

import pytest

from repro.activity import fp_instr_key
from repro.core import AnalysisPipeline
from repro.hardware import ComputeKernel, aurora_node
from repro.papi import HighLevelMonitor, PAPIError, PresetMetric, PresetTable


@pytest.fixture(scope="module")
def node():
    return aurora_node()


@pytest.fixture(scope="module")
def presets(node):
    result = AnalysisPipeline.for_domain("cpu_flops", node).run()
    return result.presets


@pytest.fixture(scope="module")
def monitor(node, presets):
    return HighLevelMonitor(node, presets)


def _app_activity(node, scalar_dp=10.0, fma512_dp=7.0, sp256=3.0):
    kernel = ComputeKernel(
        name="region",
        fp_ops={
            fp_instr_key("scalar", "dp", "nonfma"): scalar_dp,
            fp_instr_key("512", "dp", "fma"): fma512_dp,
            fp_instr_key("256", "sp", "nonfma"): sp256,
        },
    )
    return node.machine.run_compute(kernel)


class TestHighLevelMonitor:
    def test_measures_dp_ops_ground_truth(self, node, monitor):
        reading = monitor.measure_region("hot", _app_activity(node))
        # 10 scalar DP FLOPs + 7 FMA x 8 lanes x 2 ops = 122.
        assert reading.metric("PAPI_DP_OPS") == pytest.approx(122.0)

    def test_measures_sp_ops(self, node, monitor):
        reading = monitor.measure_region("hot", _app_activity(node))
        # 3 AVX2 SP instructions x 8 FLOPs each = 24.
        assert reading.metric("PAPI_SP_OPS") == pytest.approx(24.0)

    def test_instruction_presets_count_fma_twice(self, node, monitor):
        reading = monitor.measure_region("hot", _app_activity(node))
        # DP instrs (FP_ARITH convention): 10 scalar + 2x7 FMA = 24.
        assert reading.metric("PAPI_DP_INS") == pytest.approx(24.0)

    def test_selected_metrics_subset(self, node, monitor):
        reading = monitor.measure_region(
            "hot", _app_activity(node), metrics=["PAPI_DP_OPS"]
        )
        assert set(reading.metrics) == {"PAPI_DP_OPS"}
        with pytest.raises(KeyError, match="not monitored"):
            reading.metric("PAPI_SP_OPS")

    def test_counter_budget_forces_multiple_runs(self, node, presets):
        from repro.hardware import PMU

        tight_node = aurora_node()
        tight_node.pmu = PMU(programmable_counters=2, fixed_counters=0)
        monitor = HighLevelMonitor(tight_node, presets)
        reading = monitor.measure_region("hot", _app_activity(tight_node))
        assert reading.runs > 1
        # Readings remain coherent across the scheduled runs.
        assert reading.metric("PAPI_DP_OPS") == pytest.approx(122.0)

    def test_raw_readings_exposed(self, node, monitor):
        reading = monitor.measure_region("hot", _app_activity(node))
        assert reading.raw["FP_ARITH_INST_RETIRED:SCALAR_DOUBLE"] == pytest.approx(10.0)

    def test_missing_preset_event_rejected_at_construction(self, node):
        bad = PresetTable("x")
        bad.define(PresetMetric(name="PAPI_BAD", terms={"NO_SUCH_EVENT": 1.0}))
        with pytest.raises(PAPIError, match="absent"):
            HighLevelMonitor(node, bad)

    def test_zero_region(self, node, monitor):
        idle = node.machine.run_compute(ComputeKernel(name="idle"))
        reading = monitor.measure_region("idle", idle)
        assert reading.metric("PAPI_DP_OPS") == 0.0
