"""Tests for the command-line driver."""

import json

import pytest

from repro.cli import main


class TestListEvents:
    def test_lists_with_prefix(self, capsys):
        assert main(["list-events", "--system", "aurora", "--prefix", "BR_MISP"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "BR_MISP_RETIRED" in out
        assert all(line.startswith("BR_MISP") for line in out)

    def test_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["list-events", "--system", "cray"])


class TestRun:
    def test_branch_run_prints_metrics(self, capsys):
        assert main(["run", "--domain", "branch", "--repetitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "BR_MISP_RETIRED" in out
        assert "Mispredicted Branches." in out
        assert "NOT COMPOSABLE" in out  # Conditional Branches Executed

    def test_save_presets(self, capsys, tmp_path):
        path = tmp_path / "presets.json"
        assert (
            main(
                [
                    "run",
                    "--domain",
                    "branch",
                    "--repetitions",
                    "2",
                    "--save-presets",
                    str(path),
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        names = {p["name"] for p in payload["presets"]}
        assert "PAPI_BR_MSP" in names

    def test_threshold_overrides(self, capsys):
        # A huge tau keeps noisy events; the run must still complete.
        assert (
            main(
                [
                    "run",
                    "--domain",
                    "branch",
                    "--repetitions",
                    "2",
                    "--tau",
                    "1e-3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "noisy (> tau=0.001)" in out

    def test_rounded_flag(self, capsys):
        assert main(["run", "--domain", "branch", "--repetitions", "2", "--rounded"]) == 0

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--domain", "nope"])


class TestPresets:
    def test_derive_presets_for_frontier(self, capsys, tmp_path):
        path = tmp_path / "frontier.json"
        assert main(["presets", "--system", "frontier", "--output", str(path)]) == 0
        out = capsys.readouterr().out
        assert "derived 4 presets" in out
        assert "not composable" in out
        payload = json.loads(path.read_text())
        assert payload["architecture"] == "frontier-mi250x"
        assert len(payload["presets"]) == 4


class TestReport:
    def test_report_to_file(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert main(["report", "--domain", "branch", "--output", str(path)]) == 0
        text = path.read_text()
        assert "## Selected events (Section V)" in text
        assert "BR_MISP_RETIRED" in text


class TestNoise:
    def test_noise_plot(self, capsys):
        assert main(["noise", "--domain", "branch"]) == 0
        out = capsys.readouterr().out
        assert "tau = 1e-10" in out
        assert "Sorted event variabilities" in out
