"""Tests for the command-line driver."""

import json

import pytest

from repro.cli import main


def exit_code(argv):
    """Run the CLI, normalizing SystemExit into its integer status
    (argparse raises; handlers return)."""
    try:
        return main(argv)
    except SystemExit as exc:
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 1


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        assert exit_code(["--version"]) == 0
        assert __version__ in capsys.readouterr().out


class TestExitCodes:
    """One convention everywhere: 0 ok, 1 analysis failure, 2 usage."""

    def test_ok_is_zero(self, capsys):
        assert exit_code(["list-events", "--system", "aurora", "--prefix", "BR_MISP"]) == 0

    def test_bad_flag_is_two(self, capsys):
        assert exit_code(["run", "--not-a-flag"]) == 2

    def test_validation_error_is_two(self, capsys):
        assert exit_code(["run", "--domain", "branch", "--seed", "-3"]) == 2

    def test_unknown_system_is_two(self, capsys):
        assert exit_code(["list-events", "--system", "cray"]) == 2

    def test_bad_fault_spec_is_two(self, capsys):
        assert (
            exit_code(["sweep", "--systems", "aurora", "--domains", "branch",
                       "--faults", "bogus~"]) == 2
        )

    def test_empty_grid_is_two(self, capsys):
        # gpu_flops is not measurable on aurora: nothing to sweep.
        assert (
            exit_code(["sweep", "--systems", "aurora", "--domains", "gpu_flops"]) == 2
        )

    def test_missing_trace_file_is_two(self, capsys):
        assert exit_code(["trace", "/nonexistent/trace.jsonl"]) == 2

    def test_analysis_failure_is_one(self, capsys):
        # A guaranteed worker crash with no retries: the sweep itself
        # fails, which is an analysis failure (1), not a usage error (2).
        assert (
            exit_code(
                [
                    "sweep",
                    "--systems",
                    "aurora",
                    "--domains",
                    "branch",
                    "--executor",
                    "serial",
                    "--retries",
                    "0",
                    "--faults",
                    "crash=1.0",
                ]
            )
            == 1
        )
        assert "FAILED" in capsys.readouterr().out


class TestCatalogVerbs:
    @pytest.fixture()
    def catalog_root(self, tmp_path):
        """A catalog populated by one stored analysis."""
        import asyncio

        from repro.serve import MetricCatalogStore, MetricService

        root = tmp_path / "catalog"

        async def populate():
            service = MetricService(
                MetricCatalogStore(root), cache_dir=str(tmp_path / "cache")
            )
            await service.start()
            try:
                await service.analyze("aurora", "branch", seed=7)
            finally:
                await service.stop()

        asyncio.run(populate())
        return root

    def test_list(self, capsys, catalog_root):
        assert exit_code(["catalog", "list", "--root", str(catalog_root)]) == 0
        out = capsys.readouterr().out
        assert "Mispredicted Branches." in out
        assert "v1" in out

    def test_list_empty(self, capsys, tmp_path):
        assert exit_code(["catalog", "list", "--root", str(tmp_path / "empty")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_show(self, capsys, catalog_root):
        assert (
            exit_code(
                [
                    "catalog",
                    "show",
                    "--root",
                    str(catalog_root),
                    "--arch",
                    "aurora-spr",
                    "Mispredicted Branches.",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "BR_MISP_RETIRED" in out
        assert "version      : 1" in out

    def test_show_unknown_metric_is_two(self, capsys, catalog_root):
        assert (
            exit_code(
                [
                    "catalog",
                    "show",
                    "--root",
                    str(catalog_root),
                    "--arch",
                    "aurora-spr",
                    "No Such Metric",
                ]
            )
            == 2
        )

    def test_diff_identical_version(self, capsys, catalog_root):
        assert (
            exit_code(
                [
                    "catalog",
                    "diff",
                    "--root",
                    str(catalog_root),
                    "--arch",
                    "aurora-spr",
                    "Mispredicted Branches.",
                    "1",
                    "1",
                ]
            )
            == 0
        )
        assert "identical" in capsys.readouterr().out

    def test_diff_missing_version_is_two(self, capsys, catalog_root):
        assert (
            exit_code(
                [
                    "catalog",
                    "diff",
                    "--root",
                    str(catalog_root),
                    "--arch",
                    "aurora-spr",
                    "Mispredicted Branches.",
                    "1",
                    "9",
                ]
            )
            == 2
        )


class TestCatalogRefresh:
    def test_build_edit_refresh_cycle(self, capsys, tmp_path):
        root = str(tmp_path / "catalog")
        cache = str(tmp_path / "cache")
        base = [
            "catalog",
            "refresh",
            "--root",
            root,
            "--system",
            "aurora",
            "--seed",
            "7",
            "--domains",
            "branch",
            "--cache-dir",
            cache,
        ]
        # Empty catalog: a full build through the refresh path.
        assert exit_code(base) == 0
        out = capsys.readouterr().out
        assert "refreshed" in out and "0 unchanged" in out

        # Same registry again: everything proven fresh.
        assert exit_code(base) == 0
        assert "0 refreshed" in capsys.readouterr().out

        # One edited event: recompute with near-total column reuse.
        from repro.hardware import aurora_node

        target = next(
            e.full_name
            for e in aurora_node(seed=7).events
            if e.domain == "branch"
        )
        edits = tmp_path / "edits.json"
        edits.write_text(
            json.dumps(
                [
                    {
                        "action": "scale-response",
                        "event": target,
                        "factor": 1.25,
                    }
                ]
            )
        )
        assert exit_code(base + ["--edits", str(edits)]) == 0
        out = capsys.readouterr().out
        assert "columns reused" in out

    def test_bad_domain_is_two(self, tmp_path):
        assert (
            exit_code(
                [
                    "catalog",
                    "refresh",
                    "--root",
                    str(tmp_path / "c"),
                    "--system",
                    "frontier",
                    "--domains",
                    "branch",
                ]
            )
            == 2
        )

    def test_bad_edits_file_is_two(self, tmp_path):
        assert (
            exit_code(
                [
                    "catalog",
                    "refresh",
                    "--root",
                    str(tmp_path / "c"),
                    "--system",
                    "aurora",
                    "--domains",
                    "branch",
                    "--edits",
                    str(tmp_path / "missing.json"),
                ]
            )
            == 2
        )

    def test_edit_targeting_unknown_event_is_two(self, tmp_path):
        edits = tmp_path / "edits.json"
        edits.write_text(
            json.dumps([{"action": "remove", "event": "NO_SUCH_EVENT"}])
        )
        assert (
            exit_code(
                [
                    "catalog",
                    "refresh",
                    "--root",
                    str(tmp_path / "c"),
                    "--system",
                    "aurora",
                    "--domains",
                    "branch",
                    "--edits",
                    str(edits),
                ]
            )
            == 2
        )


class TestListEvents:
    def test_lists_with_prefix(self, capsys):
        assert main(["list-events", "--system", "aurora", "--prefix", "BR_MISP"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert "BR_MISP_RETIRED" in out
        assert all(line.startswith("BR_MISP") for line in out)

    def test_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["list-events", "--system", "cray"])


class TestRun:
    def test_branch_run_prints_metrics(self, capsys):
        assert main(["run", "--domain", "branch", "--repetitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "BR_MISP_RETIRED" in out
        assert "Mispredicted Branches." in out
        assert "NOT COMPOSABLE" in out  # Conditional Branches Executed

    def test_save_presets(self, capsys, tmp_path):
        path = tmp_path / "presets.json"
        assert (
            main(
                [
                    "run",
                    "--domain",
                    "branch",
                    "--repetitions",
                    "2",
                    "--save-presets",
                    str(path),
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        names = {p["name"] for p in payload["presets"]}
        assert "PAPI_BR_MSP" in names

    def test_threshold_overrides(self, capsys):
        # A huge tau keeps noisy events; the run must still complete.
        assert (
            main(
                [
                    "run",
                    "--domain",
                    "branch",
                    "--repetitions",
                    "2",
                    "--tau",
                    "1e-3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "noisy (> tau=0.001)" in out

    def test_rounded_flag(self, capsys):
        assert main(["run", "--domain", "branch", "--repetitions", "2", "--rounded"]) == 0

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--domain", "nope"])


class TestPresets:
    def test_derive_presets_for_frontier(self, capsys, tmp_path):
        path = tmp_path / "frontier.json"
        assert main(["presets", "--system", "frontier", "--output", str(path)]) == 0
        out = capsys.readouterr().out
        assert "derived 4 presets" in out
        assert "not composable" in out
        payload = json.loads(path.read_text())
        assert payload["architecture"] == "frontier-mi250x"
        assert len(payload["presets"]) == 4


class TestReport:
    def test_report_to_file(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert main(["report", "--domain", "branch", "--output", str(path)]) == 0
        text = path.read_text()
        assert "## Selected events (Section V)" in text
        assert "BR_MISP_RETIRED" in text


class TestNoise:
    def test_noise_plot(self, capsys):
        assert main(["noise", "--domain", "branch"]) == 0
        out = capsys.readouterr().out
        assert "tau = 1e-10" in out
        assert "Sorted event variabilities" in out


class TestVet:
    @pytest.fixture(scope="class")
    def report_path(self, tmp_path_factory):
        from repro.vet import EventVerdict, ValidationReport

        report = ValidationReport(
            arch="aurora-spr",
            system="aurora",
            seed=7,
            n_configs=2,
            domains=("cpu_flops",),
            probes=("cpu_flops",),
            verdicts={
                "GOOD": EventVerdict(event="GOOD", verdict="accurate"),
                "BAD": EventVerdict(
                    event="BAD", verdict="overcounting", ratio_median=1.5
                ),
            },
        )
        return str(report.save(tmp_path_factory.mktemp("vet") / "report.json"))

    def test_report_renders_summary(self, capsys, report_path):
        assert exit_code(["vet", "report", report_path]) == 0
        out = capsys.readouterr().out
        assert "refuted events:" in out
        assert "BAD" in out

    def test_report_json_round_trips(self, capsys, report_path):
        assert exit_code(["vet", "report", report_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "validation-report"
        assert payload["verdicts"]["BAD"]["verdict"] == "overcounting"

    def test_report_missing_file_is_two(self, capsys):
        assert exit_code(["vet", "report", "/nonexistent/report.json"]) == 2

    def test_run_bad_forge_spec_is_two(self, capsys):
        assert (
            exit_code(
                ["vet", "run", "--system", "aurora", "--forge", "E=teleport"]
            )
            == 2
        )

    def test_run_unmeasurable_domain_is_two(self, capsys):
        assert (
            exit_code(
                ["vet", "run", "--system", "aurora", "--domains", "gpu_flops"]
            )
            == 2
        )

    def test_run_zero_configs_is_two(self, capsys):
        assert (
            exit_code(["vet", "run", "--system", "aurora", "--configs", "0"])
            == 2
        )

    def test_drift_on_empty_catalog_is_clean(self, capsys, tmp_path):
        assert (
            exit_code(["vet", "drift", "--root", str(tmp_path / "empty")]) == 0
        )
        assert "0 key(s)" in capsys.readouterr().out

    def test_run_with_priors_reports_exclusions(self, capsys, tmp_path):
        # Refute one event the branch pipeline would otherwise keep; the
        # run must print the exclusion and still produce metrics.
        from repro.vet import EventVerdict, ValidationReport

        report = ValidationReport(
            arch="aurora-spr",
            system="aurora",
            seed=2024,
            n_configs=1,
            domains=("branch",),
            probes=("branch",),
            verdicts={
                "BR_INST_RETIRED:COND_NTAKEN": EventVerdict(
                    event="BR_INST_RETIRED:COND_NTAKEN",
                    verdict="overcounting",
                    ratio_median=1.5,
                )
            },
        )
        path = report.save(tmp_path / "priors.json")
        assert (
            exit_code(
                ["run", "--domain", "branch", "--repetitions", "2",
                 "--priors", str(path)]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "excluded by vet prior: 1" in captured.out
        assert "1 refuted event(s)" in captured.err

    def test_run_with_bad_priors_file_is_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"verdicts": {"E": "bogus"}}')
        assert (
            exit_code(["run", "--domain", "branch", "--priors", str(bad)]) == 2
        )


class TestCatalogVetFlags:
    @pytest.fixture(scope="class")
    def vetcat_root(self, tmp_path_factory):
        from repro.core.pipeline import AnalysisPipeline
        from repro.hardware.systems import aurora_node
        from repro.serve.catalog import MetricCatalogStore, entries_from_result
        from repro.vet import TrustPriors

        node = aurora_node(seed=7)
        clean = AnalysisPipeline.for_domain("branch", node).run()
        vetted = AnalysisPipeline.for_domain(
            "branch",
            aurora_node(seed=7),
            priors=TrustPriors(
                verdicts={"BR_INST_RETIRED:ALL_BRANCHES": "accurate"},
                source="vet-campaign[test]",
            ),
        ).run()
        root = tmp_path_factory.mktemp("vetcat") / "catalog"
        store = MetricCatalogStore(root, durable=False)
        digest = node.events.content_digest()
        for result in (clean, vetted):
            for entry in entries_from_result(
                result, arch=node.name, seed=7, events_digest=digest
            ):
                store.put(entry)
        return str(root)

    def test_diff_json_is_machine_readable(self, capsys, vetcat_root):
        assert (
            exit_code(
                ["catalog", "diff", "--root", vetcat_root, "--arch",
                 "aurora-spr", "Mispredicted Branches.", "1", "2", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "Mispredicted Branches."
        assert payload["identical"] is False
        assert payload["verdict_flips"]

    def test_drift_flags_the_transition(self, capsys, vetcat_root):
        assert exit_code(["vet", "drift", "--root", vetcat_root]) == 1
        assert "verdict-flip" in capsys.readouterr().out

    def test_stale_only_empty_when_registry_matches(self, capsys, vetcat_root):
        assert (
            exit_code(
                ["catalog", "list", "--root", vetcat_root, "--stale-only"]
            )
            == 0
        )
        assert "no stale entries" in capsys.readouterr().out
