"""Tests for the branch predictor and branch unit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.branch import (
    BranchSpec,
    BranchUnit,
    LocalHistoryPredictor,
    de_bruijn_sequence,
)


class TestDeBruijn:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5, 6])
    def test_length_and_balance(self, order):
        seq = de_bruijn_sequence(order)
        assert seq.size == 2**order
        assert seq.sum() == 2 ** (order - 1)

    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_every_window_appears_once(self, order):
        seq = de_bruijn_sequence(order)
        doubled = np.concatenate([seq, seq[: order - 1]])
        windows = {
            tuple(doubled[i : i + order].tolist()) for i in range(seq.size)
        }
        assert len(windows) == 2**order

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            de_bruijn_sequence(0)


class TestLocalHistoryPredictor:
    def test_learns_constant_pattern(self):
        p = LocalHistoryPredictor(history_bits=4)
        outcomes = np.ones(64, dtype=bool)
        misses = p.simulate(0, outcomes)
        assert not misses[16:].any()  # perfect after warmup

    def test_learns_alternating_pattern(self):
        p = LocalHistoryPredictor(history_bits=4)
        outcomes = (np.arange(128) % 2).astype(bool)
        misses = p.simulate(0, outcomes)
        assert not misses[40:].any()

    def test_learns_period_four_pattern(self):
        p = LocalHistoryPredictor(history_bits=4)
        outcomes = np.tile([True, True, False, False], 32)
        misses = p.simulate(0, outcomes)
        assert not misses[40:].any()

    def test_de_bruijn_defeats_predictor_exactly_half(self):
        # The exactness property the benchmark's M = 0.5 rows rely on.
        h = 4
        p = LocalHistoryPredictor(history_bits=h)
        period = de_bruijn_sequence(h + 1)
        outcomes = np.tile(period, 6)
        misses = p.simulate(0, outcomes)
        steady = misses[2 * period.size :]
        assert steady.sum() == steady.size // 2

    def test_separate_branches_have_separate_state(self):
        p = LocalHistoryPredictor(history_bits=2)
        p.simulate(0, np.ones(32, dtype=bool))
        # Branch 1 is untrained: first not-taken is predicted correctly
        # (counters initialize to strongly-not-taken).
        assert not p.simulate(1, np.zeros(1, dtype=bool))[0]

    def test_reset_clears_training(self):
        p = LocalHistoryPredictor(history_bits=2)
        p.simulate(0, np.ones(64, dtype=bool))
        p.reset()
        misses = p.simulate(0, np.ones(4, dtype=bool))
        assert misses[0]  # cold again

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_bits=0)
        with pytest.raises(ValueError):
            LocalHistoryPredictor(init_state=7)

    @settings(max_examples=30)
    @given(st.integers(1, 3), st.integers(0, 1000))
    def test_property_short_periodic_patterns_learned(self, period_log, seed):
        # Any pattern whose period fits inside the history window is
        # eventually perfect: an H-window with H >= period uniquely
        # identifies the phase, so every context has a single followup.
        h = 8
        rng = np.random.default_rng(seed)
        period = rng.integers(0, 2, size=2**period_log).astype(bool)
        p = LocalHistoryPredictor(history_bits=h)
        outcomes = np.tile(period, max(8, 512 // period.size))
        misses = p.simulate(0, outcomes)
        assert not misses[-2 * period.size :].any()


class TestBranchSpec:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            BranchSpec("sometimes")

    def test_bad_execute_every(self):
        with pytest.raises(ValueError):
            BranchSpec("taken", execute_every=0)

    def test_conditional_flag(self):
        assert BranchSpec("taken").is_conditional
        assert not BranchSpec("uncond").is_conditional


class TestBranchUnit:
    """The 11 paper rows are covered end-to-end in tests/cat; here we cover
    unit-level behaviours and edge cases."""

    def test_always_taken_loop(self):
        c = BranchUnit().run([BranchSpec("taken")])
        assert c.cond_retired == 1.0
        assert c.cond_taken == 1.0
        assert c.mispredicted == 0.0
        assert c.cond_executed == 1.0

    def test_unpredictable_is_exactly_half_mispredicted(self):
        c = BranchUnit().run([BranchSpec("unpredictable")])
        assert c.mispredicted == 0.5
        assert c.cond_taken == 0.5

    def test_wrong_path_branches_inflate_executed_only(self):
        base = BranchUnit().run([BranchSpec("unpredictable")])
        wp = BranchUnit().run([BranchSpec("unpredictable", wrong_path_branches=2)])
        assert wp.cond_retired == base.cond_retired
        assert wp.cond_executed == base.cond_executed + 2 * wp.mispredicted

    def test_every_other_iteration_execution(self):
        c = BranchUnit().run([BranchSpec("not_taken", execute_every=2)])
        assert c.cond_retired == 0.5
        assert c.cond_taken == 0.0

    def test_unconditional_kinds(self):
        c = BranchUnit().run(
            [
                BranchSpec("uncond"),
                BranchSpec("uncond_indirect"),
                BranchSpec("call"),
                BranchSpec("ret"),
            ]
        )
        assert c.uncond_direct == 1.0
        assert c.uncond_indirect == 1.0
        assert c.calls == 1.0
        assert c.returns == 1.0
        assert c.cond_retired == 0.0
        assert c.all_retired == 4.0

    def test_ntaken_derivation(self):
        c = BranchUnit().run([BranchSpec("taken"), BranchSpec("not_taken")])
        assert c.cond_ntaken == 1.0

    def test_misp_taken_subset_of_mispredicted(self):
        c = BranchUnit().run([BranchSpec("unpredictable")])
        assert 0.0 <= c.misp_taken <= c.mispredicted

    def test_counts_are_exact_dyadics(self):
        # Steady-state counts over power-of-two periods are exact in FP.
        c = BranchUnit().run(
            [BranchSpec("taken"), BranchSpec("unpredictable"), BranchSpec("alternate")]
        )
        for value in (c.cond_retired, c.cond_taken, c.mispredicted):
            assert value == float(np.float64(value))
            assert (value * 4) == int(value * 4)  # quarter-granular exactly

    def test_determinism(self):
        specs = [BranchSpec("taken"), BranchSpec("unpredictable", wrong_path_branches=1)]
        a = BranchUnit().run(specs)
        b = BranchUnit().run(specs)
        assert a == b
