"""Tests for the simulated CPU machine (compute kernels + pointer chase)."""

import numpy as np
import pytest

from repro.activity import fp_instr_key
from repro.hardware import ComputeKernel, CPUConfig, PointerChase, SimulatedCPU
from repro.hardware.branch import BranchSpec


@pytest.fixture(scope="module")
def cpu():
    return SimulatedCPU(CPUConfig())


class TestComputeKernels:
    def test_fp_counts_pass_through(self, cpu):
        k = ComputeKernel(
            "k", fp_ops={fp_instr_key("256", "dp", "fma"): 12.0}
        )
        act = cpu.run_compute(k)
        assert act.get("instr.fp.256.dp.fma") == 12.0
        assert act.get("instr.fp.256.dp.nonfma") == 0.0

    def test_loop_overhead_present(self, cpu):
        act = cpu.run_compute(ComputeKernel("k"))
        assert act.get("instr.int") == 2.0
        assert act.get("branch.cond_retired") == 1.0  # loop back-branch
        assert act.get("cycles.core") > 0

    def test_instr_total_consistency(self, cpu):
        k = ComputeKernel("k", fp_ops={fp_instr_key("scalar", "sp", "nonfma"): 24.0})
        act = cpu.run_compute(k)
        assert act.get("instr.total") == pytest.approx(
            24.0 + act.get("instr.int") + act.get("branch.all_retired")
        )

    def test_mispredicts_add_cycles(self, cpu):
        clean = cpu.run_compute(ComputeKernel("k"))
        noisy = cpu.run_compute(
            ComputeKernel("k", branches=(BranchSpec("taken"), BranchSpec("unpredictable")))
        )
        assert noisy.get("cycles.core") > clean.get("cycles.core")

    def test_compute_kernels_have_no_cache_traffic(self, cpu):
        act = cpu.run_compute(ComputeKernel("k"))
        assert act.get("cache.l1d.demand_hit") == 0.0
        assert act.get("mem.loads_retired") == 0.0

    def test_determinism(self, cpu):
        k = ComputeKernel("k", fp_ops={fp_instr_key("512", "dp", "fma"): 12.0})
        a = cpu.run_compute(k).as_dict()
        b = cpu.run_compute(k).as_dict()
        assert a == b

    def test_512bit_work_is_slower_than_narrow(self, cpu):
        narrow = cpu.run_compute(
            ComputeKernel("n", fp_ops={fp_instr_key("128", "dp", "nonfma"): 96.0})
        )
        wide = cpu.run_compute(
            ComputeKernel("w", fp_ops={fp_instr_key("512", "dp", "nonfma"): 96.0})
        )
        assert wide.get("cycles.core") > narrow.get("cycles.core")


class TestPointerChase:
    def test_l1_resident(self, cpu):
        acts = cpu.run_pointer_chase(PointerChase(n_pointers=256, n_threads=2))
        for act in acts:
            assert act.get("cache.l1d.demand_hit") == 1.0
            assert act.get("cache.l1d.demand_miss") == 0.0

    def test_l2_resident(self, cpu):
        acts = cpu.run_pointer_chase(PointerChase(n_pointers=8192, n_threads=2))
        for act in acts:
            assert act.get("cache.l1d.demand_miss") == 1.0
            assert act.get("cache.l2.demand_rd_hit") == 1.0
            assert act.get("cache.l3.hit") == 0.0

    def test_l3_resident(self, cpu):
        # 2 threads x 4 MiB fits the 32 MiB shared L3.
        acts = cpu.run_pointer_chase(PointerChase(n_pointers=65536, n_threads=2))
        for act in acts:
            assert act.get("cache.l2.demand_rd_miss") == 1.0
            assert act.get("cache.l3.hit") == 1.0
            assert act.get("cache.l3.miss") == 0.0

    def test_memory_resident(self, cpu):
        acts = cpu.run_pointer_chase(PointerChase(n_pointers=2**21, n_threads=2))
        for act in acts:
            assert act.get("cache.l3.miss") == 1.0

    def test_l3_sharing_causes_contention(self, cpu):
        # Per-thread 4 MiB footprint: 2 threads fit the 32 MiB L3, 16 do not.
        few = cpu.run_pointer_chase(PointerChase(n_pointers=65536, n_threads=2))
        many = cpu.run_pointer_chase(PointerChase(n_pointers=65536, n_threads=16))
        assert few[0].get("cache.l3.hit") == 1.0
        assert many[0].get("cache.l3.hit") < 1.0

    def test_stride_controls_footprint(self, cpu):
        # 512 pointers at 128 B stride touch 512 lines over 64 KiB > L1.
        acts = cpu.run_pointer_chase(
            PointerChase(n_pointers=1024, stride_bytes=128, n_threads=1)
        )
        assert acts[0].get("cache.l1d.demand_miss") == 1.0

    def test_hit_plus_miss_is_one_per_access(self, cpu):
        for n in (256, 8192, 65536):
            acts = cpu.run_pointer_chase(PointerChase(n_pointers=n, n_threads=2))
            a = acts[0]
            assert a.get("cache.l1d.demand_hit") + a.get(
                "cache.l1d.demand_miss"
            ) == pytest.approx(1.0)

    def test_l2_accesses_equal_l1_misses(self, cpu):
        acts = cpu.run_pointer_chase(PointerChase(n_pointers=8192, n_threads=1))
        a = acts[0]
        assert a.get("cache.l2.all_demand_rd") == pytest.approx(
            a.get("cache.l1d.demand_miss")
        )

    def test_threads_are_symmetric_on_private_levels(self, cpu):
        acts = cpu.run_pointer_chase(PointerChase(n_pointers=8192, n_threads=4))
        first = acts[0]
        for other in acts[1:]:
            assert other.get("cache.l1d.demand_hit") == first.get("cache.l1d.demand_hit")
            assert other.get("cache.l2.demand_rd_hit") == first.get("cache.l2.demand_rd_hit")

    def test_tlb_walks_for_huge_footprints(self, cpu):
        small = cpu.run_pointer_chase(PointerChase(n_pointers=256, n_threads=1))[0]
        huge = cpu.run_pointer_chase(PointerChase(n_pointers=2**21, n_threads=1))[0]
        assert small.get("tlb.walks") == 0.0
        assert huge.get("tlb.walks") > 0.0

    def test_latency_grows_with_depth(self, cpu):
        l1 = cpu.run_pointer_chase(PointerChase(n_pointers=256, n_threads=1))[0]
        mem = cpu.run_pointer_chase(PointerChase(n_pointers=2**21, n_threads=1))[0]
        assert mem.get("cycles.core") > l1.get("cycles.core")

    def test_validation(self):
        with pytest.raises(ValueError):
            PointerChase(n_pointers=0)
        with pytest.raises(ValueError):
            PointerChase(n_pointers=10, stride_bytes=4)
        with pytest.raises(ValueError):
            PointerChase(n_pointers=10, n_threads=0)
