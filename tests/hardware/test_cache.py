"""Tests for the cache simulator, including the exact-vs-analytic property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import (
    CacheConfig,
    CacheHierarchy,
    CacheLevel,
    cyclic_steady_state,
)


def _tiny(name="T", size=1024, line=64, ways=2):
    return CacheConfig(name, size, line, ways)


class TestCacheConfig:
    def test_geometry(self):
        cfg = CacheConfig("L1", 48 * 1024, 64, 12)
        assert cfg.n_sets == 64
        assert cfg.capacity_lines == 768

    def test_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            CacheConfig("X", 1000, 64, 2)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig("X", 3 * 64 * 2, 64, 2)  # 3 sets

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheConfig("X", 0, 64, 2)

    def test_set_index_masks_low_bits(self):
        cfg = _tiny()  # 8 sets
        assert list(cfg.set_index(np.array([0, 7, 8, 15]))) == [0, 7, 0, 7]


class TestCacheLevelTrace:
    def test_cold_misses_then_hits(self):
        level = CacheLevel(_tiny())
        trace = [0, 1, 0, 1]
        hits = level.simulate_trace(trace)
        assert list(hits) == [False, False, True, True]

    def test_lru_eviction_order(self):
        # 2-way set: third distinct line in one set evicts the LRU one.
        level = CacheLevel(_tiny())  # 8 sets, 2-way
        t = [0, 8, 16]  # all map to set 0
        level.simulate_trace(t)
        hits = level.simulate_trace([0])  # line 0 was LRU -> evicted
        assert not hits[0]
        hits = level.simulate_trace([16])
        assert hits[0]

    def test_touch_refreshes_recency(self):
        level = CacheLevel(_tiny())
        level.simulate_trace([0, 8])  # set 0 holds {0, 8}
        level.simulate_trace([0])  # refresh 0 -> 8 becomes LRU
        level.simulate_trace([16])  # evicts 8
        assert level.simulate_trace([0])[0]
        assert not level.simulate_trace([8])[0]

    def test_reset(self):
        level = CacheLevel(_tiny())
        level.simulate_trace([0, 1, 2])
        level.reset()
        assert level.resident_lines() == 0
        assert not level.simulate_trace([0])[0]

    def test_state_persists_across_calls(self):
        level = CacheLevel(_tiny())
        level.simulate_trace([3])
        assert level.simulate_trace([3])[0]


class TestCyclicSteadyState:
    def test_fitting_working_set_all_hits(self):
        cfg = _tiny()  # capacity 16 lines
        lines = np.arange(16)
        hits, misses = cyclic_steady_state(lines, cfg)
        assert hits == 16 and misses == 0

    def test_overfull_set_all_miss(self):
        cfg = _tiny()  # 8 sets, 2 ways
        lines = np.array([0, 8, 16])  # 3 lines in set 0 > 2 ways
        hits, misses = cyclic_steady_state(lines, cfg)
        assert hits == 0 and misses == 3

    def test_mixed_sets(self):
        cfg = _tiny()
        lines = np.array([0, 8, 16, 1])  # set 0 overfull, set 1 fits
        hits, misses = cyclic_steady_state(lines, cfg)
        assert hits == 1 and misses == 3

    def test_duplicate_lines_rejected(self):
        with pytest.raises(ValueError):
            cyclic_steady_state(np.array([1, 1]), _tiny())

    def test_empty(self):
        assert cyclic_steady_state(np.zeros(0, dtype=np.int64), _tiny()) == (0, 0)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 4), st.integers(1, 64))
    def test_property_matches_exact_lru_simulation(self, seed, ways, n_lines):
        """The closed form equals the exact simulator once warm (the result
        the whole data-cache benchmark's analytic engine rests on)."""
        rng = np.random.default_rng(seed)
        n_sets = int(2 ** rng.integers(0, 4))
        cfg = CacheConfig("P", n_sets * 64 * ways, 64, ways)
        lines = rng.choice(4096, size=n_lines, replace=False).astype(np.int64)
        order = rng.permutation(n_lines)
        trace_one_pass = lines[order]

        level = CacheLevel(cfg)
        # Warm up two passes, measure the third.
        level.simulate_trace(np.tile(trace_one_pass, 2))
        exact_hits = int(level.simulate_trace(trace_one_pass).sum())
        analytic_hits, analytic_misses = cyclic_steady_state(lines, cfg)
        assert exact_hits == analytic_hits
        assert n_lines - exact_hits == analytic_misses


class TestCacheHierarchy:
    def _hier(self):
        return CacheHierarchy(
            [
                CacheConfig("L1", 4 * 64 * 2, 64, 2),  # 8 lines capacity
                CacheConfig("L2", 16 * 64 * 2, 64, 2),  # 32 lines capacity
            ]
        )

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                [CacheConfig("A", 1024, 64, 2), CacheConfig("B", 1024, 128, 2)]
            )

    def test_misses_propagate(self):
        h = self._hier()
        counts = h.simulate_trace(np.arange(8))
        assert counts.level("L1").misses == 8  # cold
        assert counts.level("L2").accesses == 8

    def test_small_set_hits_l1_steady(self):
        h = self._hier()
        lines = np.arange(8)
        counts = h.cyclic_steady_state(lines)
        assert counts.level("L1").hits == 8
        assert counts.level("L2").accesses == 0
        assert counts.memory_accesses == 0
        assert counts.survivors.size == 0

    def test_medium_set_hits_l2_steady(self):
        h = self._hier()
        lines = np.arange(32)  # > L1 (8), fits L2 (32)
        counts = h.cyclic_steady_state(lines)
        assert counts.level("L1").hits == 0
        assert counts.level("L2").hits == 32
        assert counts.memory_accesses == 0

    def test_large_set_misses_everywhere(self):
        h = self._hier()
        lines = np.arange(64)
        counts = h.cyclic_steady_state(lines)
        assert counts.memory_accesses == 64
        assert set(counts.survivors) == set(range(64))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 80))
    def test_property_hierarchy_analytic_matches_exact(self, seed, n_lines):
        rng = np.random.default_rng(seed)
        h = self._hier()
        lines = rng.choice(1024, size=n_lines, replace=False).astype(np.int64)
        trace = lines[rng.permutation(n_lines)]
        h.simulate_trace(np.tile(trace, 3))  # warm
        h2 = self._hier()
        h2.simulate_trace(np.tile(trace, 3))
        exact = h2.simulate_trace(trace)
        analytic = h.cyclic_steady_state(lines)
        for name in ("L1", "L2"):
            assert exact.level(name).hits == analytic.level(name).hits, name
        assert exact.memory_accesses == analytic.memory_accesses

    def test_conservation_invariant(self):
        # Accesses at each level == misses of the previous level.
        h = self._hier()
        lines = np.arange(48)
        counts = h.cyclic_steady_state(lines)
        assert counts.level("L2").accesses == counts.level("L1").misses
        assert counts.memory_accesses == counts.level("L2").misses
