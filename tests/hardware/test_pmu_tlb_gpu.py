"""Tests for the PMU scheduler, TLB model, GPU machine and system configs."""

import numpy as np
import pytest

from repro.activity import Activity, valu_instr_key
from repro.events import EventDomain, RawEvent
from repro.hardware import GPUKernel, PMU, SimulatedGPU, aurora_node, frontier_node
from repro.hardware.tlb import TLBConfig, tlb_activity


def _evt(name, qualifier=""):
    return RawEvent(name=name, qualifier=qualifier, domain=EventDomain.OTHER, response={"a": 1.0})


class TestPMUScheduling:
    def test_small_sets_fit_one_group(self):
        pmu = PMU(programmable_counters=8)
        schedule = pmu.schedule([_evt(f"E{i}") for i in range(8)])
        assert schedule.n_runs == 1

    def test_overflow_spills_to_new_group(self):
        pmu = PMU(programmable_counters=4, fixed_counters=0)
        schedule = pmu.schedule([_evt(f"E{i}") for i in range(9)])
        assert schedule.n_runs == 3
        assert sum(len(g) for g in schedule.groups) == 9

    def test_fixed_counters_host_architectural_events(self):
        pmu = PMU(programmable_counters=1, fixed_counters=2)
        events = [
            _evt("INST_RETIRED", "ANY"),
            _evt("CPU_CLK_UNHALTED", "THREAD"),
            _evt("SOMETHING_ELSE"),
        ]
        schedule = pmu.schedule(events)
        # The two fixed-eligible events ride fixed counters: 1 group total.
        assert schedule.n_runs == 1

    def test_run_of(self):
        pmu = PMU(programmable_counters=1, fixed_counters=0)
        a, b = _evt("A"), _evt("B")
        schedule = pmu.schedule([a, b])
        assert schedule.run_of(a) == 0
        assert schedule.run_of(b) == 1
        with pytest.raises(KeyError):
            schedule.run_of(_evt("C"))

    def test_read_covers_all_events(self):
        pmu = PMU(programmable_counters=2, fixed_counters=0)
        events = [_evt(f"E{i}") for i in range(5)]
        readings = pmu.read(events, Activity({"a": 7.0}), lambda e: None)
        assert len(readings) == 5
        assert all(v == 7.0 for v in readings.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            PMU(programmable_counters=0)
        with pytest.raises(ValueError):
            PMU(fixed_counters=-1)


class TestTLB:
    def test_fitting_pages_all_hit(self):
        act = tlb_activity(64 * 4096, 1000, TLBConfig(entries=64))
        assert act["tlb.walks"] == 0.0
        assert act["tlb.dtlb_load_miss"] == 0.0

    def test_stlb_covers_midsize(self):
        act = tlb_activity(1000 * 4096, 1000, TLBConfig(entries=64, stlb_entries=2048))
        assert act["tlb.dtlb_load_miss"] > 0
        assert act["tlb.stlb_hit"] > 0
        assert act["tlb.walks"] == 0.0

    def test_walks_beyond_stlb(self):
        act = tlb_activity(4000 * 4096, 10000, TLBConfig(entries=64, stlb_entries=2048))
        assert act["tlb.walks"] == 4000.0
        assert act["tlb.walk_cycles"] > 0

    def test_zero_footprint(self):
        act = tlb_activity(0, 0)
        assert act["tlb.walks"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0)
        with pytest.raises(ValueError):
            tlb_activity(-1, 10)


class TestSimulatedGPU:
    def test_valu_counts_pass_through(self):
        gpu = SimulatedGPU()
        act = gpu.run(GPUKernel("k", valu_ops={valu_instr_key("fma", "f64"): 24.0}))
        assert act.get("gpu.valu.fma.f64") == 24.0
        assert act.get("gpu.valu.total") == 24.0

    def test_loop_overhead(self):
        act = SimulatedGPU().run(GPUKernel("k"))
        assert act.get("gpu.salu") == 3.0
        assert act.get("gpu.branch") == 1.0

    def test_trans_pipe_is_slower(self):
        gpu = SimulatedGPU()
        mul = gpu.run(GPUKernel("m", valu_ops={valu_instr_key("mul", "f32"): 48.0}))
        sqrt = gpu.run(GPUKernel("s", valu_ops={valu_instr_key("trans", "f32"): 48.0}))
        assert sqrt.get("gpu.cycles") > mul.get("gpu.cycles")

    def test_f64_penalty(self):
        gpu = SimulatedGPU()
        f32 = gpu.run(GPUKernel("a", valu_ops={valu_instr_key("add", "f32"): 48.0}))
        f64 = gpu.run(GPUKernel("b", valu_ops={valu_instr_key("add", "f64"): 48.0}))
        assert f64.get("gpu.cycles") > f32.get("gpu.cycles")

    def test_determinism(self):
        k = GPUKernel("k", valu_ops={valu_instr_key("add", "f16"): 96.0})
        assert SimulatedGPU().run(k).as_dict() == SimulatedGPU().run(k).as_dict()


class TestSystems:
    def test_aurora_is_cpu(self):
        node = aurora_node()
        assert not node.is_gpu
        assert len(node.events) > 200
        assert "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE" in node.events

    def test_frontier_is_gpu(self):
        node = frontier_node()
        assert node.is_gpu
        assert len(node.events) > 1000

    def test_seed_propagates(self):
        assert aurora_node(seed=7).seed == 7
