"""Cross-validation of the analytic and exact-trace pointer-chase engines.

The data-cache benchmark uses the closed-form steady state; these tests run
the same configurations through per-access LRU simulation (randomized chase
orders, warm-up passes, round-robin thread interleaving at the shared L3)
and require agreement — the evidence that the fast engine is not an
approximation in the regimes the benchmark uses.
"""

import numpy as np
import pytest

from repro.hardware.cache import CacheConfig
from repro.hardware.cpu import CPUConfig, PointerChase, SimulatedCPU

CACHE_KEYS = (
    "cache.l1d.demand_hit",
    "cache.l1d.demand_miss",
    "cache.l2.demand_rd_hit",
    "cache.l2.demand_rd_miss",
    "cache.l3.hit",
    "cache.l3.miss",
)


@pytest.fixture(scope="module")
def small_cpu():
    """A downsized node so exact traces stay fast: L1 32 lines, L2 256,
    shared L3 1024."""
    return SimulatedCPU(
        CPUConfig(
            l1d=CacheConfig("L1D", 2 * 1024, 64, 2),
            l2=CacheConfig("L2", 16 * 1024, 64, 4),
            l3=CacheConfig("L3", 64 * 1024, 64, 4),
        )
    )


REGIMES = {
    "l1_resident": 16,
    "l2_resident": 128,
    "l3_resident": 384,  # 2 threads x 384 = 768 lines <= 1024 L3 capacity
    "memory_bound": 4096,
}


class TestEnginesAgree:
    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_per_access_rates_match(self, small_cpu, regime):
        chase = PointerChase(n_pointers=REGIMES[regime], n_threads=2)
        analytic = small_cpu.run_pointer_chase(chase)
        trace = small_cpu.run_pointer_chase_trace(chase, seed=7)
        for t in range(chase.n_threads):
            for key in CACHE_KEYS:
                assert analytic[t].get(key) == pytest.approx(
                    trace[t].get(key), abs=1e-12
                ), (regime, t, key)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_trace_engine_is_order_independent_in_steady_state(self, small_cpu, seed):
        """LRU steady-state rates for a cyclic walk do not depend on the
        (randomized) chase order — the property the closed form relies on."""
        chase = PointerChase(n_pointers=128, n_threads=1)
        reference = small_cpu.run_pointer_chase_trace(chase, seed=100)
        other = small_cpu.run_pointer_chase_trace(chase, seed=seed)
        for key in CACHE_KEYS:
            assert reference[0].get(key) == other[0].get(key), key

    def test_shared_l3_contention_matches(self, small_cpu):
        """Globally over-committed L3: both engines report universal misses."""
        chase = PointerChase(n_pointers=768, n_threads=2)  # 1536 > 1024
        analytic = small_cpu.run_pointer_chase(chase)
        trace = small_cpu.run_pointer_chase_trace(chase, seed=3)
        for acts in (analytic, trace):
            assert acts[0].get("cache.l3.miss") == pytest.approx(1.0)

    def test_stride_two_lines(self, small_cpu):
        chase = PointerChase(n_pointers=64, stride_bytes=128, n_threads=1)
        analytic = small_cpu.run_pointer_chase(chase)
        trace = small_cpu.run_pointer_chase_trace(chase, seed=5)
        for key in CACHE_KEYS:
            assert analytic[0].get(key) == pytest.approx(trace[0].get(key))

    def test_default_node_small_config_sanity(self):
        """The full-size node agrees too on a quick configuration."""
        cpu = SimulatedCPU()
        chase = PointerChase(n_pointers=512, n_threads=2)  # L1-resident
        analytic = cpu.run_pointer_chase(chase)
        trace = cpu.run_pointer_chase_trace(chase, seed=11)
        assert analytic[0].get("cache.l1d.demand_hit") == pytest.approx(
            trace[0].get("cache.l1d.demand_hit")
        )
