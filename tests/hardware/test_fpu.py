"""Tests for the FP pipeline cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.activity import fp_instr_key
from repro.hardware.fpu import FPUConfig, fp_pipeline_activity


def _costs(fp_ops, int_ops=2.0, branches=1.0, config=FPUConfig()):
    return fp_pipeline_activity(fp_ops, int_ops, branches, config)


class TestCostModel:
    def test_empty_kernel_has_overhead_only(self):
        costs = _costs({})
        assert costs["cycles.core"] > 0
        assert costs["uops.issued"] == pytest.approx(2.0 + 1.0 + 3.0)

    def test_uop_accounting(self):
        costs = _costs({fp_instr_key("256", "dp", "fma"): 10.0})
        assert costs["uops.issued"] == pytest.approx(10.0 + 2.0 + 1.0 + 3.0)
        assert costs["uops.retired"] == costs["uops.issued"]

    def test_throughput_bound_scales_with_work(self):
        small = _costs({fp_instr_key("128", "sp", "nonfma"): 24.0})
        large = _costs({fp_instr_key("128", "sp", "nonfma"): 96.0})
        assert large["cycles.core"] > small["cycles.core"]

    def test_512_bit_restricted_to_one_pipe(self):
        narrow = _costs({fp_instr_key("256", "dp", "nonfma"): 96.0})
        wide = _costs({fp_instr_key("512", "dp", "nonfma"): 96.0})
        assert wide["cycles.core"] > narrow["cycles.core"]

    def test_frontend_bound_kernels(self):
        # Huge uop counts with no FP work are issue-width limited.
        costs = _costs({}, int_ops=600.0)
        assert costs["cycles.core"] >= 600.0 / FPUConfig().issue_width

    def test_dsb_mite_split(self):
        costs = _costs({fp_instr_key("scalar", "dp", "nonfma"): 10.0})
        total = costs["frontend.dsb_uops"] + costs["frontend.mite_uops"]
        assert total == pytest.approx(costs["uops.issued"])

    def test_ref_cycles_fixed_ratio(self):
        costs = _costs({fp_instr_key("scalar", "sp", "nonfma"): 48.0})
        assert costs["cycles.ref"] == pytest.approx(costs["cycles.core"] * 0.8)

    @settings(max_examples=40)
    @given(st.floats(0, 200), st.floats(0, 200))
    def test_property_cycles_monotone_in_fp_work(self, a, b):
        lo, hi = sorted((a, b))
        key = fp_instr_key("256", "dp", "nonfma")
        assert _costs({key: hi})["cycles.core"] >= _costs({key: lo})["cycles.core"]

    @settings(max_examples=40)
    @given(st.floats(0, 100))
    def test_property_all_counts_nonnegative(self, work):
        costs = _costs({fp_instr_key("512", "sp", "fma"): work})
        assert all(v >= 0.0 for v in costs.values())
