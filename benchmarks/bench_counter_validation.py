"""EXP-VET: counter-validation fleet sweep across perturbed configs.

Runs a seeded validation campaign on every system in the fleet (SPR,
Zen3, MI250X), each across perturbed machine configurations, and renders
the per-system verdict census to ``results/counter_validation.md``.  A
healthy fleet must refute nothing: every deviation between measured and
analytically expected counts stays inside the tolerance band each
event's own noise model predicts.  A final forged-counter campaign
demonstrates the layer's sensitivity — the same sweep with one counter
deliberately overcounting by 1.5x must refute exactly that counter.

Timed portion: one mini-campaign per system.
"""

from repro.io.tables import write_markdown
from repro.vet import CampaignConfig, run_campaign

# (system, campaign domains): mini-campaigns keep the bench quick while
# still exercising every probe family the system measures.
FLEET = (
    ("aurora", ("cpu_flops", "branch")),
    ("frontier-cpu", ("cpu_flops", "branch")),
    ("frontier", ("gpu_flops",)),
)

FORGE_TARGET = "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE"

_ROWS = []


def _campaign(system, domains):
    config = CampaignConfig(
        seed=2024, n_configs=2, repetitions=3, domains=domains
    )
    return run_campaign(system, config)


def _census_row(label, report):
    counts = report.verdict_counts()
    refuted = report.refuted_events()
    return [
        label,
        report.arch,
        ", ".join(report.domains),
        counts["accurate"],
        counts["unvetted"],
        len(refuted),
        ", ".join(refuted) or "none",
    ]


def test_spr_fleet_campaign_refutes_nothing(benchmark):
    report = benchmark(lambda: _campaign("aurora", ("cpu_flops", "branch")))
    assert not report.refuted_events(), report.summary()
    _ROWS.append(_census_row("aurora (healthy)", report))


def test_zen3_fleet_campaign_refutes_nothing(benchmark):
    report = benchmark(
        lambda: _campaign("frontier-cpu", ("cpu_flops", "branch"))
    )
    assert not report.refuted_events(), report.summary()
    _ROWS.append(_census_row("frontier-cpu (healthy)", report))


def test_mi250x_fleet_campaign_refutes_nothing(benchmark):
    report = benchmark(lambda: _campaign("frontier", ("gpu_flops",)))
    assert not report.refuted_events(), report.summary()
    _ROWS.append(_census_row("frontier (healthy)", report))


def test_forged_counter_is_refuted(benchmark):
    config = CampaignConfig(
        seed=2024, n_configs=2, repetitions=3, domains=("cpu_flops",)
    )
    forge = {FORGE_TARGET: ("overcount", 1.5)}
    report = benchmark(lambda: run_campaign("aurora", config, forge=forge))
    assert report.refuted_events() == [FORGE_TARGET], report.summary()
    assert report.verdicts[FORGE_TARGET].verdict == "overcounting"
    _ROWS.append(_census_row("aurora (forged x1.5)", report))


def test_write_counter_validation_table(results_dir):
    assert _ROWS, "no campaign rows collected"
    path = write_markdown(
        results_dir / "counter_validation.md",
        [
            "campaign",
            "arch",
            "domains",
            "accurate",
            "unvetted",
            "refuted",
            "refuted events",
        ],
        _ROWS,
        title="EXP-VET: counter-validation fleet sweep "
        "(2 perturbed configs per system, seed 2024)",
    )
    assert "refuted" in path.read_text()
