"""EXP-AB5: extension — automatic threshold selection (Section-VII future
work, implemented in :mod:`repro.core.thresholds`).

Criteria: tau derived from the variability distribution and alpha derived
from selection-stability sweeps must reproduce the paper's hand-picked
selections on every domain, and the derived tau for the clean domains must
fall inside the paper's stated 1e-15..1e-4 free window.

Timed portions: the selection procedures themselves.
"""

import numpy as np
import pytest

from repro.core.thresholds import select_alpha, select_tau
from repro.io.tables import write_csv

DOMAINS = {
    "branch": "branch_result",
    "cpu_flops": "cpu_flops_result",
    "gpu_flops": "gpu_flops_result",
    "dcache": "dcache_result",
}


@pytest.mark.parametrize("domain", sorted(DOMAINS))
def test_auto_tau_is_consistent_with_paper(benchmark, domain, request, results_dir):
    result = request.getfixturevalue(DOMAINS[domain])
    values = list(result.noise.variabilities.values())

    selection = benchmark(lambda: select_tau(values))

    if domain == "dcache":
        # No free window exists; the fallback stays lenient like the paper.
        assert selection.method == "quantile"
        assert selection.tau > 1e-3
    else:
        # A clean gap hosting the paper's 1e-10 inside the 1e-15..1e-4 window.
        assert selection.method == "gap"
        assert selection.unambiguous
        assert 1e-15 < selection.tau < 1e-4

    write_csv(
        results_dir / f"autotune_tau_{domain}.csv",
        ["field", "value"],
        [
            ["method", selection.method],
            ["tau", selection.tau],
            ["gap_low", selection.gap_low],
            ["gap_high", selection.gap_high],
            ["gap_decades", selection.gap_decades],
        ],
    )


@pytest.mark.parametrize("domain", sorted(DOMAINS))
def test_auto_alpha_reproduces_paper_selection(benchmark, domain, request, results_dir):
    result = request.getfixturevalue(DOMAINS[domain])
    x = result.representation.x_matrix
    names = result.representation.event_names

    selection = benchmark(lambda: select_alpha(x))

    chosen = {names[i] for i in selection.selection}
    assert chosen == set(result.selected_events)

    write_csv(
        results_dir / f"autotune_alpha_{domain}.csv",
        ["field", "value"],
        [
            ["alpha", selection.alpha],
            ["plateau_low", selection.plateau_low],
            ["plateau_high", selection.plateau_high],
            ["plateau_decades", selection.plateau_decades],
            ["stable", selection.stable],
        ],
    )
