"""EXP-AB2: ablation — sensitivity of the QRCP tolerance alpha (Sec. V-E).

The paper: "A wide range of values for alpha lead to the creation of a
matrix X-hat that contains events that properly capture the behavior of
the hardware component."  Verified by sweeping alpha over several decades
on the CPU-FLOPs and data-cache representation matrices and checking the
selection is stable across the plateau.

Timed portion: the full alpha sweep.
"""

import numpy as np
import pytest

from repro.core.qrcp import qrcp_specialized
from repro.io.tables import write_csv

CPU_ALPHAS = np.logspace(-6, -1.5, 10)
#: The cache plateau spans roughly [1e-2.5, 5e-2]; the paper's 5e-2 sits at
#: its upper edge (see test_alpha_too_large_breaks_cache_selection).
CACHE_ALPHAS = np.logspace(-2.5, np.log10(5e-2), 8)


def _selections(x, names, alphas):
    out = {}
    for alpha in alphas:
        result = qrcp_specialized(x, alpha=float(alpha))
        out[float(alpha)] = frozenset(names[i] for i in result.selected)
    return out


def test_alpha_plateau_cpu_flops(benchmark, cpu_flops_result, results_dir):
    x = cpu_flops_result.representation.x_matrix
    names = cpu_flops_result.representation.event_names
    reference = frozenset(cpu_flops_result.selected_events)

    selections = benchmark(lambda: _selections(x, names, CPU_ALPHAS))

    rows = [
        [f"{alpha:.2e}", len(sel), "same" if sel == reference else "DIFFERENT"]
        for alpha, sel in selections.items()
    ]
    write_csv(
        results_dir / "ablation_alpha_cpu_flops.csv",
        ["alpha", "n_selected", "vs_paper_selection"],
        rows,
    )
    stable = sum(1 for sel in selections.values() if sel == reference)
    # The paper's 5e-4 sits on a wide plateau: the entire sweep holds here
    # because FP representations are exact.
    assert stable == len(CPU_ALPHAS)


def test_alpha_plateau_dcache(benchmark, dcache_result, results_dir):
    x = dcache_result.representation.x_matrix
    names = dcache_result.representation.event_names
    reference = frozenset(dcache_result.selected_events)

    selections = benchmark(lambda: _selections(x, names, CACHE_ALPHAS))

    rows = [
        [f"{alpha:.2e}", len(sel), "same" if sel == reference else "DIFFERENT"]
        for alpha, sel in selections.items()
    ]
    write_csv(
        results_dir / "ablation_alpha_dcache.csv",
        ["alpha", "n_selected", "vs_paper_selection"],
        rows,
    )
    stable = sum(1 for sel in selections.values() if sel == reference)
    # Noisier data narrows the plateau but the paper's 5e-2 is inside a
    # robust majority window.
    assert stable >= len(CACHE_ALPHAS) - 2


def test_alpha_too_large_breaks_cache_selection(benchmark, dcache_result):
    """Above the plateau, rounding merges genuinely different magnitudes:
    at alpha ~1e-1 the 0.955-scaled MEM_LOAD_L3_HIT_RETIRED:XSNP_NONE
    rounds to a perfect basis column and can displace L3_HIT."""
    x = dcache_result.representation.x_matrix
    names = dcache_result.representation.event_names
    reference = frozenset(dcache_result.selected_events)

    result = benchmark(lambda: qrcp_specialized(x, alpha=8e-2))
    big_alpha_selection = frozenset(names[i] for i in result.selected)
    assert big_alpha_selection != reference


def test_alpha_too_small_breaks_cache_selection(benchmark, dcache_result):
    """Below the noise scale, rounding no longer cleans the columns: tiny
    alphas inflate the scores of genuinely good events (the reason the
    cache domain needs alpha = 5e-2 rather than 5e-4)."""
    x = dcache_result.representation.x_matrix
    names = dcache_result.representation.event_names
    reference = frozenset(dcache_result.selected_events)

    result = benchmark(lambda: qrcp_specialized(x, alpha=1e-6))
    tiny_alpha_selection = frozenset(names[i] for i in result.selected)
    assert tiny_alpha_selection != reference
