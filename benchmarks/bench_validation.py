"""EXP-EXT2: extension — metric definitions validated on unseen workloads.

Figure 3 validates compositions on the calibration kernels themselves;
this bench generalizes the check: every composable metric from the CPU
FLOPs and branch pipelines is evaluated on randomized workloads the
calibration never saw, and compared against the simulator's ground truth.
Composable metrics must agree exactly; the uncomposable FMA best-effort
must *fail* validation (its error is not an artifact of the calibration
set).

Timed portion: the validation sweep.
"""

import numpy as np
import pytest

from repro.activity import fp_instr_key
from repro.core.validation import validate_definition
from repro.hardware import ComputeKernel
from repro.hardware.branch import BranchSpec
from repro.io.tables import write_csv, write_markdown

# Rows for the cross-domain markdown summary: each validation test appends
# here and the last test in the module renders results/validation_summary.md
# (floats route through io.tables.format_float, so the artifact is stable
# across numpy versions).
_SUMMARY_ROWS = []


def _record_summary(domain, validations, expectation):
    for v in validations:
        _SUMMARY_ROWS.append(
            [
                domain,
                v.metric,
                len(v.cases),
                v.max_rel_error,
                expectation,
                "PASS" if v.passed else "FAIL",
            ]
        )


def _random_fp_workloads(node, n=10, seed=42):
    rng = np.random.default_rng(seed)
    widths = ("scalar", "128", "256", "512")
    out = []
    for i in range(n):
        fp_ops = {}
        for _ in range(int(rng.integers(1, 6))):
            key = fp_instr_key(
                widths[rng.integers(0, 4)],
                ("sp", "dp")[rng.integers(0, 2)],
                ("nonfma", "fma")[rng.integers(0, 2)],
            )
            fp_ops[key] = fp_ops.get(key, 0.0) + float(rng.integers(1, 100))
        kernel = ComputeKernel(name=f"app{i}", fp_ops=fp_ops)
        out.append((kernel.name, node.machine.run_compute(kernel)))
    return out


def _random_branch_workloads(node, n=8, seed=11):
    rng = np.random.default_rng(seed)
    patterns = ("taken", "not_taken", "alternate", "unpredictable")
    out = []
    for i in range(n):
        body = tuple(
            BranchSpec(patterns[rng.integers(0, 4)])
            for _ in range(int(rng.integers(1, 4)))
        )
        kernel = ComputeKernel(name=f"app{i}", branches=(BranchSpec("taken"),) + body)
        out.append((kernel.name, node.machine.run_compute(kernel)))
    return out


def test_flops_metrics_validate_on_unseen_mixes(
    benchmark, aurora, cpu_flops_result, results_dir
):
    workloads = _random_fp_workloads(aurora)
    basis = cpu_flops_result.representation.basis
    composable = [
        m for m in cpu_flops_result.metrics.values() if m.composable
    ]

    def run_all():
        return [
            validate_definition(m, basis, workloads, aurora.events)
            for m in composable
        ]

    validations = benchmark(run_all)
    rows = []
    for v in validations:
        rows.append([v.metric, len(v.cases), v.max_rel_error, "PASS" if v.passed else "FAIL"])
        assert v.passed, v.summary()
    _record_summary("cpu_flops", validations, "must pass")
    write_csv(
        results_dir / "ext_validation_cpu_flops.csv",
        ["metric", "workloads", "max_rel_error", "status"],
        rows,
    )


def test_branch_metrics_validate_on_unseen_patterns(
    benchmark, aurora, branch_result, results_dir
):
    workloads = _random_branch_workloads(aurora)
    basis = branch_result.representation.basis
    composable = [m for m in branch_result.metrics.values() if m.composable]

    def run_all():
        return [
            validate_definition(m, basis, workloads, aurora.events)
            for m in composable
        ]

    validations = benchmark(run_all)
    rows = []
    for v in validations:
        rows.append([v.metric, len(v.cases), v.max_rel_error, "PASS" if v.passed else "FAIL"])
        assert v.passed, v.summary()
    _record_summary("branch", validations, "must pass")
    write_csv(
        results_dir / "ext_validation_branch.csv",
        ["metric", "workloads", "max_rel_error", "status"],
        rows,
    )


def test_uncomposable_fma_fails_validation(benchmark, aurora, cpu_flops_result):
    workloads = _random_fp_workloads(aurora, seed=77)
    basis = cpu_flops_result.representation.basis
    fma = cpu_flops_result.metrics["DP FMA Instrs."]

    validation = benchmark(
        lambda: validate_definition(fma, basis, workloads, aurora.events, tolerance=1e-3)
    )
    assert not validation.passed
    assert validation.max_rel_error > 0.05
    _record_summary("cpu_flops", [validation], "must fail")


def test_write_validation_summary(results_dir):
    """Render the cross-domain summary the per-domain CSVs never had.

    Runs last in the module (pytest preserves definition order), so every
    validation test above has contributed its rows.
    """
    assert _SUMMARY_ROWS, "no validation rows collected"
    path = write_markdown(
        results_dir / "validation_summary.md",
        ["domain", "metric", "workloads", "max_rel_error", "expectation", "status"],
        _SUMMARY_ROWS,
        title="EXP-EXT2: metric validation on unseen workloads",
    )
    text = path.read_text()
    assert "| domain" in text
