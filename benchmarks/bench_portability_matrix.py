"""EXP-EXT4: extension — the portability matrix across three architectures.

The paper's introduction motivates automation with the cost of porting
metric definitions between architectures; this bench quantifies the
situation on the three modelled machines and writes the one table a
middleware maintainer wants.

Shape criteria: the branch concepts are universal across the two CPUs
with *disjoint* raw vocabularies; the per-precision FP concepts are
Intel-only among the CPUs; "Conditional Branches Executed" composes
nowhere.

Timed portion: matrix construction from the cached pipeline results.

The Zen pipelines fan through the :class:`~repro.core.sweep.SweepEngine`
process pool (the portability workload is exactly what it parallelizes);
results are bit-identical to serial runs by the reproducibility contract.
"""

import pytest

from repro.core.crossarch import portability_matrix
from repro.core.sweep import SweepEngine, SweepTask, results_by_label


@pytest.fixture(scope="module")
def zen_results():
    outcomes = SweepEngine(max_workers=2).run(
        [
            SweepTask("frontier-cpu", "cpu_flops"),
            SweepTask("frontier-cpu", "branch"),
        ]
    )
    assert all(o.ok for o in outcomes), [o.error for o in outcomes]
    return results_by_label(outcomes)


@pytest.fixture(scope="module")
def zen_flops(zen_results):
    return zen_results["frontier-cpu:cpu_flops"]


@pytest.fixture(scope="module")
def zen_branch(zen_results):
    return zen_results["frontier-cpu:branch"]


def test_flops_portability_matrix(
    benchmark, cpu_flops_result, gpu_flops_result, zen_flops, results_dir
):
    matrix = benchmark(
        lambda: portability_matrix(
            [
                ("aurora-spr", cpu_flops_result),
                ("frontier-trento", zen_flops),
                ("frontier-mi250x", gpu_flops_result),
            ]
        )
    )
    (results_dir / "ext_portability_flops.md").write_text(
        f"# FLOPs metric portability across architectures\n\n{matrix.to_markdown()}\n"
    )
    # Per-precision CPU metrics: SPR-only among the CPUs; the GPU has its
    # own metric names entirely (recorded as absent on the CPUs).
    assert matrix.cell("DP Ops.", "aurora-spr").composable
    assert not matrix.cell("DP Ops.", "frontier-trento").composable
    assert not matrix.cell("DP Ops.", "frontier-mi250x").composable  # GPU names differ
    assert matrix.cell("All DP Ops.", "frontier-mi250x").composable
    # FMA isolation is impossible on both Intel and AMD CPUs.
    assert not matrix.cell("DP FMA Instrs.", "aurora-spr").composable
    assert not matrix.cell("DP FMA Instrs.", "frontier-trento").composable


def test_branch_portability_matrix(
    benchmark, branch_result, zen_branch, results_dir
):
    matrix = benchmark(
        lambda: portability_matrix(
            [("aurora-spr", branch_result), ("frontier-trento", zen_branch)]
        )
    )
    (results_dir / "ext_portability_branch.md").write_text(
        f"# Branch metric portability across architectures\n\n{matrix.to_markdown()}\n"
    )
    assert len(matrix.universal_metrics()) == 6
    assert matrix.uncomposable_everywhere() == ["Conditional Branches Executed."]
    # Same concepts, completely disjoint raw vocabularies: the exact
    # situation that makes hand-written preset tables expensive.
    assert matrix.vocabulary_overlap() == 0.0
