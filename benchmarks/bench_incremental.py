"""EXP-INCR: update-vs-refactor crossover and end-to-end refresh speedup.

The incremental engine's value proposition has two layers, and this
bench puts measured numbers on both (``results/incremental.md``):

* **Part A — the ELAPS-style crossover.**  Absorbing one column edit via
  :meth:`~repro.linalg.updates.UpdatableQR.replace_column` plus a solve
  off the maintained factors costs O(m^2) Givens work, while the
  from-scratch path (:func:`~repro.linalg.householder.qr_decompose` +
  :func:`~repro.linalg.lstsq.lstsq_qr`) re-pays O(m n^2) per edit.  The
  table sweeps problem sizes and records the measured ratio so the
  regime where updating beats refactoring is documented, not assumed.

* **Part B — the refresh-vs-resweep headline.**  A full catalog build
  over every (system, domain) of the sweep matrix, versus
  :func:`~repro.incr.engine.refresh_catalog` after a single-event
  registry edit with a warm column cache.  The refresh must be at least
  10x faster AND provably equivalent: refreshed entries content-digest
  identical to a from-scratch build on the edited registry, untouched
  entries answering with bit-identical coefficients.
"""

import time

import numpy as np

from repro.core.sweep import SWEEP_SYSTEMS, SYSTEM_DOMAINS
from repro.incr import RegistryEdit, apply_edits, refresh_catalog
from repro.io.cache import MeasurementCache
from repro.io.tables import write_markdown
from repro.linalg.householder import qr_decompose
from repro.linalg.lstsq import lstsq_qr
from repro.linalg.updates import UpdatableQR
from repro.serve.catalog import MetricCatalogStore

MIN_SPEEDUP = 10.0
REPEATS = 5


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _crossover_rows():
    """Part A: replace_column+solve vs qr_decompose+lstsq per size."""
    rng = np.random.default_rng(20240807)
    rows = []
    for n in (8, 16, 32, 64, 128):
        m = 2 * n
        a = rng.standard_normal((m, n))
        b = rng.standard_normal(m)
        new_col = rng.standard_normal(m)
        j = n // 2

        def full():
            a_new = a.copy()
            a_new[:, j] = new_col
            qr_decompose(a_new)
            lstsq_qr(a_new, b)

        base = UpdatableQR(a)

        def update():
            qr = UpdatableQR.__new__(UpdatableQR)
            qr.q = base.q.copy()
            qr.r = base.r.copy()
            qr.a = base.a.copy()
            qr.updates = 0
            qr.replace_column(j, new_col)
            qr.lstsq(b)

        t_full = _best_of(full)
        t_update = _best_of(update)

        # The timed update must still be numerically right: same solution
        # as the from-scratch solve on the edited matrix.
        a_new = a.copy()
        a_new[:, j] = new_col
        qr = UpdatableQR(a)
        qr.replace_column(j, new_col)
        np.testing.assert_allclose(
            qr.lstsq(b).x, lstsq_qr(a_new, b).x, rtol=1e-9, atol=1e-12
        )

        rows.append(
            [
                f"{m}x{n}",
                f"{t_full * 1e3:.3f}",
                f"{t_update * 1e3:.3f}",
                f"{t_full / t_update:.2f}",
            ]
        )
    return rows


def _build_everything(store, nodes, cache):
    """One full catalog build through the refresh path (empty store =
    from-scratch), over every (system, domain) of the sweep matrix."""
    reports = {}
    for system, node in nodes.items():
        reports[system] = refresh_catalog(
            store, node, SYSTEM_DOMAINS[system], cache=cache
        )
    return reports


def _coefficients(entries):
    return {
        key: tuple(float(c) for c in entry.coefficients)
        for key, entry in entries.items()
    }


def test_incremental_refresh(results_dir, tmp_path):
    nodes = {
        system: factory(seed=7) for system, factory in SWEEP_SYSTEMS.items()
    }
    cache = MeasurementCache(max_memory_entries=4096)

    # -- Part B: full build (cold cache) vs post-edit refresh (warm). ----
    store = MetricCatalogStore(tmp_path / "catalog")
    t0 = time.perf_counter()
    build_reports = _build_everything(store, nodes, cache)
    t_build = time.perf_counter() - t0
    total_entries = sum(
        len(report.refreshed) for report in build_reports.values()
    )

    # The canonical edit: one GPU VALU event counts differently now.
    # Only frontier's gpu_flops domain measures it, so 1 of the sweep's
    # 9 (system, domain) analyses is genuinely stale.
    target = next(
        e.full_name for e in nodes["frontier"].events if e.domain == "gpu_valu"
    )
    edit = RegistryEdit(action="scale-response", event=target, factor=1.05)
    edited = {
        system: apply_edits(node.events, [edit])
        if any(e.full_name == target for e in node.events)
        else node.events
        for system, node in nodes.items()
    }

    t0 = time.perf_counter()
    refresh_reports = {
        system: refresh_catalog(
            store,
            node,
            SYSTEM_DOMAINS[system],
            registry=edited[system],
            cache=cache,
        )
        for system, node in nodes.items()
    }
    t_refresh = time.perf_counter() - t0

    refreshed = [
        (system, domain, metric)
        for system, report in refresh_reports.items()
        for domain, metric in report.refreshed
    ]
    unchanged = sum(
        len(report.unchanged) for report in refresh_reports.values()
    )
    stale_domains = {
        (system, domain)
        for system, domain, _ in refreshed
    }
    assert stale_domains == {("frontier", "gpu_flops")}, stale_domains
    assert unchanged == total_entries - len(refreshed)

    speedup = t_build / t_refresh
    assert speedup >= MIN_SPEEDUP, (
        f"single-event refresh must be >= {MIN_SPEEDUP}x faster than the "
        f"full build; measured {speedup:.1f}x "
        f"({t_build:.2f}s vs {t_refresh:.2f}s)"
    )

    # -- Equivalence: refresh-after-edit == build-from-scratch. ----------
    scratch_store = MetricCatalogStore(tmp_path / "scratch")
    scratch_reports = {
        system: refresh_catalog(
            scratch_store,
            node,
            SYSTEM_DOMAINS[system],
            registry=edited[system],
            cache=cache,
        )
        for system, node in nodes.items()
    }
    refreshed_keys = {(d, m) for _, d, m in refreshed}
    for system in nodes:
        incr_entries = refresh_reports[system].entries
        scratch_entries = scratch_reports[system].entries
        assert set(incr_entries) == set(scratch_entries)
        for key, scratch_entry in scratch_entries.items():
            entry = incr_entries[key]
            if key in refreshed_keys:
                # Recomputed under the edited registry: every bit of the
                # stored definition must match the from-scratch build.
                assert entry.content_digest() == scratch_entry.content_digest()
            else:
                # Proven fresh: the definition itself is bit-identical
                # (its lineage legitimately records the pre-edit digest).
                assert tuple(entry.coefficients) == tuple(
                    scratch_entry.coefficients
                )
                assert entry.error == scratch_entry.error

    # -- No-op refresh: freshness proofs cost milliseconds. --------------
    t0 = time.perf_counter()
    noop = {
        system: refresh_catalog(
            store,
            node,
            SYSTEM_DOMAINS[system],
            registry=edited[system],
            cache=cache,
        )
        for system, node in nodes.items()
    }
    t_noop = time.perf_counter() - t0
    assert all(not report.refreshed for report in noop.values())

    # -- Render the report. -----------------------------------------------
    delta = refresh_reports["frontier"].deltas["gpu_flops"]
    part_b_rows = [
        ["full catalog build (9 analyses, cold cache)", f"{t_build:.3f}",
         f"{total_entries} entries"],
        ["refresh after 1-event edit (warm cache)", f"{t_refresh:.3f}",
         f"{len(refreshed)} entries recomputed, {unchanged} proven fresh; "
         f"{delta.reused}/{delta.total} columns reused"],
        ["no-op refresh (same edit again)", f"{t_noop:.3f}",
         f"0 recomputed, {total_entries} proven fresh"],
    ]
    path = write_markdown(
        results_dir / "incremental.md",
        ["scenario", "wall time (s)", "work"],
        part_b_rows,
        title="Incremental recomputation: refresh, don't resweep",
    )
    crossover = _crossover_rows()
    with path.open("a") as fh:
        fh.write(
            f"\nMeasured speedup: **{speedup:.1f}x** "
            f"(threshold {MIN_SPEEDUP:g}x).  Refreshed entries are "
            "content-digest identical to a from-scratch build on the "
            "edited registry; untouched entries keep bit-identical "
            "coefficients.\n"
        )
        fh.write(
            "\n## Rank-one update vs full refactorization "
            "(best of 5, one column replaced)\n\n"
        )
        fh.write("| size (m x n) | refactor (ms) | update (ms) | ratio |\n")
        fh.write("| --- | --- | --- | --- |\n")
        for row in crossover:
            fh.write("| " + " | ".join(row) + " |\n")
        fh.write(
            "\nThe update path (Givens chase, O(m^2)) wins by a widening "
            "margin as the O(m n^2) refactorization grows; both columns "
            "solve the same edited system to within 1e-9.\n"
        )
