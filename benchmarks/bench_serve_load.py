"""EXP-LOAD: saturation curves for the serving tier, ELAPS-style.

Two experiments, both judged request-by-request against the load
harness's invariant (every response bit-identical to the single-process
baseline answer, a typed 429/503 rejection, or explicitly stale):

1. **Tier comparison** — a read-dominated hot-catalog workload (the
   catalog's write-once-read-many serving profile: one coalesced
   analysis publishes the entries, then every client hammers keyed
   ``GET /v1/metric`` reads) driven closed-loop through (a) one
   in-process asyncio service and (b) the sharded multi-process pool.
   The sharded tier must win on achieved throughput: its dispatcher
   answers fully-fresh keyed reads straight from the shard store's
   read replicas (no worker hop, no per-read disk load-and-verify),
   while the single service re-reads and re-verifies every entry from
   disk per request.  Deliberately *not* a raw compute race — on a
   single-core host no process count can beat one busy process at
   arithmetic; the win measured here is the serving architecture doing
   strictly less work per request.
2. **Saturation sweep** — a hot catalog workload swept open-loop over
   offered request rates; per-step p50/p95/p99 latency and achieved
   throughput trace where the tier saturates.  The crossover data, not
   an anecdote, shows coalescing and backpressure holding.

Results land in ``results/serve_load.md``.  Worker processes spawn per
drill, so this is among the slower benches; rounds are pinned to 1.
"""

import asyncio

import pytest

from repro.io.tables import write_markdown
from repro.serve import LoadStep, Workload, run_load_drill
from repro.serve.chaos import _baseline_digests

SEED = 2024

#: Read-dominated population: one rendezvous analysis per client (all
#: coalesce), then hot keyed reads against the published entries.
THROUGHPUT_WORKLOAD = Workload(
    clients=2,
    requests_per_client=100,
    base_seed=SEED,
    seed_pool=1,
    hot_fraction=1.0,
)

#: Hot catalog population for the saturation sweep.
HOT_WORKLOAD = Workload(
    clients=4,
    requests_per_client=6,
    base_seed=SEED,
    seed_pool=2,
    hot_fraction=0.7,
)

SWEEP_RPS = (5.0, 10.0, 20.0, 40.0)

_TIER_ROWS = []
_SWEEP_ROWS = []
_TIER_RPS = {}


@pytest.fixture(scope="module")
def throughput_baseline():
    baseline, _ = asyncio.run(
        _baseline_digests(THROUGHPUT_WORKLOAD.universe(), None)
    )
    return baseline


def _tier_row(report):
    step = report.steps[0]
    return [
        report.target,
        step.requests,
        f"{step.duration_seconds:.2f}",
        f"{step.achieved_rps:.1f}",
        f"{step.p50_ms:.0f}",
        f"{step.p95_ms:.0f}",
        f"{step.p99_ms:.0f}",
        len(report.violations),
    ]


def test_single_tier_throughput(benchmark, tmp_path, throughput_baseline):
    report = benchmark.pedantic(
        lambda: run_load_drill(
            str(tmp_path / "catalog"),
            target="single",
            workload=THROUGHPUT_WORKLOAD,
            steps=(LoadStep("closed"),),
            cache_dir=str(tmp_path / "cache"),
            baseline=throughput_baseline,
        ),
        rounds=1,
        iterations=1,
    )
    assert report.ok, report.violations
    _TIER_RPS["single"] = report.steps[0].achieved_rps
    _TIER_ROWS.append(_tier_row(report))


def test_sharded_tier_throughput_beats_single(
    benchmark, tmp_path, throughput_baseline
):
    report = benchmark.pedantic(
        lambda: run_load_drill(
            str(tmp_path / "catalog"),
            target="sharded",
            workers=3,
            shards=3,
            workload=THROUGHPUT_WORKLOAD,
            steps=(LoadStep("closed"),),
            cache_dir=str(tmp_path / "cache"),
            baseline=throughput_baseline,
        ),
        rounds=1,
        iterations=1,
    )
    assert report.ok, report.violations
    _TIER_RPS["sharded"] = report.steps[0].achieved_rps
    _TIER_ROWS.append(_tier_row(report))
    # The acceptance bar: real parallelism must show up as throughput.
    assert _TIER_RPS["sharded"] > _TIER_RPS["single"], (
        f"sharded tier ({_TIER_RPS['sharded']:.1f} rps) did not beat the "
        f"single-process tier ({_TIER_RPS['single']:.1f} rps) on a "
        "pipeline-bound workload"
    )


def test_saturation_sweep(benchmark, tmp_path):
    steps = [LoadStep("closed")] + [
        LoadStep("open", offered_rps=rate) for rate in SWEEP_RPS
    ]
    report = benchmark.pedantic(
        lambda: run_load_drill(
            str(tmp_path / "catalog"),
            target="sharded",
            workers=2,
            shards=2,
            workload=HOT_WORKLOAD,
            steps=steps,
            cache_dir=str(tmp_path / "cache"),
        ),
        rounds=1,
        iterations=1,
    )
    # The invariant must hold at every offered rate, saturated or not.
    assert report.ok, report.violations
    assert report.coalesced >= 1, "rendezvous requests never coalesced"
    for step in report.steps:
        row = step.to_row()
        _SWEEP_ROWS.append(
            [
                row["step"],
                row["offered_rps"] if row["offered_rps"] is not None else "-",
                row["achieved_rps"],
                row["requests"],
                row["identical"],
                row["stale"],
                row["rejected"],
                row["violations"],
                row["p50_ms"],
                row["p95_ms"],
                row["p99_ms"],
            ]
        )


def test_write_serve_load_tables(results_dir):
    assert _TIER_ROWS and _SWEEP_ROWS, "no drill rows collected"
    tier_table = write_markdown(
        results_dir / "serve_load.md",
        [
            "tier",
            "requests",
            "seconds",
            "achieved rps",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "violations",
        ],
        _TIER_ROWS,
        title="EXP-LOAD: serving-tier load drills (seed 2024)",
    )
    text = tier_table.read_text()
    text += (
        "\nClosed-loop tier comparison on a read-dominated hot-catalog "
        f"workload ({THROUGHPUT_WORKLOAD.clients} clients x "
        f"{THROUGHPUT_WORKLOAD.requests_per_client} requests, one coalesced "
        "rendezvous analysis then keyed metric reads): the sharded pool "
        "(3 workers, 3 shards, dispatcher answering fresh keyed reads from "
        "its shard-store read replicas) against one in-process service that "
        "loads and verifies every entry from disk per read.\n"
        "\n## Saturation sweep (sharded, 2 workers, 2 shards, hot catalog "
        "workload)\n\n"
    )
    from repro.io.tables import render_markdown_table

    text += render_markdown_table(
        [
            "step",
            "offered rps",
            "achieved rps",
            "requests",
            "identical",
            "stale",
            "rejected",
            "violations",
            "p50 ms",
            "p95 ms",
            "p99 ms",
        ],
        _SWEEP_ROWS,
    )
    text += (
        "\nEvery response at every offered rate was bit-identical to the "
        "single-process baseline answer, a typed 429/503 rejection, or "
        "explicitly stale; `violations` counts anything else (must be 0). "
        "`identical` and `stale` count per-metric verdicts, and a domain "
        "analysis carries every metric of its domain, so they can exceed "
        "`requests`.\n"
    )
    (results_dir / "serve_load.md").write_text(text)
    assert "Saturation sweep" in (results_dir / "serve_load.md").read_text()
