"""EXP-F2a-d: Figure 2 — sorted max-RNMSE event variabilities per benchmark.

Shape criteria from the paper:

* branching / CPU-FLOPs / GPU-FLOPs (Figs. 2a-c): a cluster of events with
  *exactly zero* variability, cleanly separated from a noisy tail — any
  tau between ~1e-15 and 1e-4 splits them; the paper (and this pipeline)
  uses 1e-10.
* data cache (Fig. 2d): no zero cluster at all (thread interference
  perturbs everything); the lenient tau = 1e-1 keeps the mid-noise cache
  events and drops the worst.

Timed portion: the max-RNMSE analysis over all measured events.
"""

import numpy as np
import pytest

from repro.core.noise_filter import analyze_noise
from repro.io.tables import write_csv
from repro.viz.ascii import log_scatter
from repro.viz.series import fig2_series

PANELS = {
    "branch": ("fig2a", "branch_result", 1e-10),
    "cpu_flops": ("fig2b", "cpu_flops_result", 1e-10),
    "gpu_flops": ("fig2c", "gpu_flops_result", 1e-10),
    "dcache": ("fig2d", "dcache_result", 1e-1),
}


def _write_panel(results_dir, fig_id, domain, series):
    write_csv(
        results_dir / f"{fig_id}_{domain}_variabilities.csv",
        ["rank", "event", "max_rnmse"],
        [
            [i, name, value]
            for i, (name, value) in enumerate(zip(series.event_names, series.values))
        ],
    )
    plot = log_scatter(
        series.values,
        threshold=series.tau,
        title=f"Sorted event variabilities — {domain} (tau={series.tau:g})",
    )
    (results_dir / f"{fig_id}_{domain}_variabilities.txt").write_text(plot + "\n")


@pytest.mark.parametrize("domain", ["branch", "cpu_flops", "gpu_flops"])
def test_fig2_zero_noise_cluster_panels(benchmark, domain, results_dir, request):
    fig_id, fixture, tau = PANELS[domain]
    result = request.getfixturevalue(fixture)
    noise = benchmark(lambda: analyze_noise(result.measurement, tau=tau))
    series = fig2_series(noise)
    _write_panel(results_dir, fig_id, domain, series)

    # A substantial zero-variability cluster exists...
    assert series.n_zero_noise >= 10
    # ...and the threshold window separating it from the tail is wide:
    lo, hi = series.separation_gap()
    assert lo == 0.0, "events below tau should be exactly noise-free"
    assert hi > 1e-10, "the noisy tail must sit above the paper's tau"
    assert hi / max(lo, 1e-300) > 1e4
    # The tail spans many decades, as in the figure.
    assert series.values.max() > 1e-2


def test_fig2d_cache_panel_has_no_zero_cluster(benchmark, results_dir, dcache_result):
    fig_id, _, tau = PANELS["dcache"]
    noise = benchmark(lambda: analyze_noise(dcache_result.measurement, tau=tau))
    series = fig2_series(noise)
    _write_panel(results_dir, fig_id, "dcache", series)

    assert series.n_zero_noise == 0, "multithreaded cache runs leave nothing exact"
    assert series.values.min() > 1e-6
    # The lenient threshold keeps a usable population and drops the worst.
    kept = int(np.count_nonzero(series.values <= tau))
    assert kept >= 20
    assert series.n_above_tau >= 10


@pytest.mark.parametrize("domain", sorted(PANELS))
def test_fig2_event_population_scale(benchmark, domain, request):
    """Event-population sanity vs the paper's x-axes (within our catalog
    sizes): branch ~140, CPU ~350 (ours ~240), GPU ~1200, cache ~300."""
    _, fixture, _ = PANELS[domain]
    result = request.getfixturevalue(fixture)
    n = benchmark(lambda: result.noise.n_measured)
    expected_floor = {"branch": 100, "cpu_flops": 200, "gpu_flops": 1000, "dcache": 120}
    assert n >= expected_floor[domain]
