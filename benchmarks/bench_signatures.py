"""EXP-T1..T4: Tables I-IV — signature tables and expectation bases.

Regenerates all four signature tables, checks them against the paper's
literal values, writes them to ``results/``, and times basis construction.
"""

import numpy as np
import pytest

from repro.core.basis import (
    BRANCH_EXPECTATION_MATRIX,
    branch_basis,
    cpu_flops_basis,
    dcache_basis,
    gpu_flops_basis,
)
from repro.core.signatures import signatures_for
from repro.io.tables import write_markdown

PAPER_TABLES = {
    "cpu_flops": {  # Table I
        "SP Instrs.": [1, 1, 1, 1, 0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0],
        "SP Ops.": [1, 4, 8, 16, 0, 0, 0, 0, 2, 8, 16, 32, 0, 0, 0, 0],
        "SP FMA Instrs.": [0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0],
        "DP Instrs.": [0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 2, 2, 2, 2],
        "DP Ops.": [0, 0, 0, 0, 1, 2, 4, 8, 0, 0, 0, 0, 2, 4, 8, 16],
        "DP FMA Instrs.": [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2],
    },
    "gpu_flops": {  # Table II
        "HP Add Ops.": [1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        "HP Sub Ops.": [0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        "HP Add and Sub Ops.": [1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
        "All HP Ops.": [1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0, 0],
        "All SP Ops.": [0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0],
        "All DP Ops.": [0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2],
    },
    "branch": {  # Table III
        "Unconditional Branches.": [0, 0, 0, 1, 0],
        "Conditional Branches Taken.": [0, 0, 1, 0, 0],
        "Conditional Branches Not Taken.": [0, 1, -1, 0, 0],
        "Mispredicted Branches.": [0, 0, 0, 0, 1],
        "Correctly Predicted Branches.": [0, 1, 0, 0, -1],
        "Conditional Branches Retired.": [0, 1, 0, 0, 0],
        "Conditional Branches Executed.": [1, 0, 0, 0, 0],
    },
    "dcache": {  # Table IV
        "L1 Misses.": [1, 0, 0, 0],
        "L1 Hits.": [0, 1, 0, 0],
        "L1 Reads.": [1, 1, 0, 0],
        "L2 Hits.": [0, 0, 1, 0],
        "L2 Misses.": [1, 0, -1, 0],
        "L3 Hits.": [0, 0, 0, 1],
    },
}

_BASIS_BUILDERS = {
    "cpu_flops": cpu_flops_basis,
    "gpu_flops": gpu_flops_basis,
    "branch": branch_basis,
    "dcache": dcache_basis,
}

_TABLE_IDS = {
    "cpu_flops": "table1",
    "gpu_flops": "table2",
    "branch": "table3",
    "dcache": "table4",
}


@pytest.mark.parametrize("domain", sorted(PAPER_TABLES))
def test_signature_tables(benchmark, domain, results_dir):
    basis = _BASIS_BUILDERS[domain]()
    signatures = benchmark(lambda: signatures_for(domain))

    table = PAPER_TABLES[domain]
    rows = []
    for sig in signatures:
        assert sig.coords.tolist() == [float(v) for v in table[sig.name]], sig.name
        rows.append([sig.name, "(" + ",".join(f"{v:g}" for v in sig.coords) + ")"])
    write_markdown(
        results_dir / f"{_TABLE_IDS[domain]}_{domain}_signatures.md",
        ["Performance Metric", f"Signature ({', '.join(basis.dimension_labels)})"],
        rows,
        title=f"Paper Table for {domain} metric signatures (reproduced)",
    )
    assert len(rows) == len(table)


def test_branch_basis_equals_equation3_from_simulation(benchmark):
    """The derived expectation matrix (real predictor simulation) equals
    the paper's Equation 3, exactly — timed over the full derivation."""
    derived = benchmark(lambda: branch_basis(derive=True))
    assert np.array_equal(derived.matrix, BRANCH_EXPECTATION_MATRIX)


@pytest.mark.parametrize("domain", sorted(_BASIS_BUILDERS))
def test_basis_construction(benchmark, domain):
    basis = benchmark(_BASIS_BUILDERS[domain])
    assert np.linalg.matrix_rank(basis.matrix) == basis.n_dimensions
