"""EXP-AB4: ablation — median-across-threads de-noising (Secs. IV & VII).

The paper keeps the median reading across the data-cache benchmark's
threads to suppress noise before the RNMSE analysis.  Quantified here:
per-event max-RNMSE computed from single-thread readings vs from the
8-thread median, over the same raw data.

Timed portion: the median-based noise analysis.
"""

import numpy as np
import pytest

from repro.cat.measurement import MeasurementSet
from repro.core.noise_filter import analyze_noise, max_rnmse
from repro.io.tables import write_csv


def _single_thread_view(measurement: MeasurementSet, thread: int) -> MeasurementSet:
    return MeasurementSet(
        benchmark=measurement.benchmark,
        row_labels=list(measurement.row_labels),
        event_names=list(measurement.event_names),
        data=measurement.data[:, thread : thread + 1, :, :],
    )


def test_median_reduces_variability(benchmark, dcache_result, results_dir):
    measurement = dcache_result.measurement
    assert measurement.n_threads == 8

    median_report = benchmark(lambda: analyze_noise(measurement, tau=1e-1))
    single_report = analyze_noise(_single_thread_view(measurement, 0), tau=1e-1)

    common = set(median_report.variabilities) & set(single_report.variabilities)
    assert len(common) > 30
    median_vals = np.array([median_report.variabilities[e] for e in sorted(common)])
    single_vals = np.array([single_report.variabilities[e] for e in sorted(common)])

    write_csv(
        results_dir / "ablation_median_vs_single_thread.csv",
        ["event", "single_thread_rnmse", "thread_median_rnmse"],
        [
            [e, single_report.variabilities[e], median_report.variabilities[e]]
            for e in sorted(common)
        ],
    )

    # The median is a strict improvement in aggregate...
    assert np.median(median_vals) < np.median(single_vals)
    # ...and for a solid majority of individual events.
    improved = np.count_nonzero(median_vals <= single_vals)
    assert improved >= 0.6 * len(common)


def test_median_rescues_key_cache_events(benchmark, dcache_result):
    """The four Table-VIII events must survive tau = 1e-1 after the
    median; timed over the per-event RNMSE of the median view."""
    measurement = dcache_result.measurement
    key_events = [
        "MEM_LOAD_RETIRED:L1_HIT",
        "MEM_LOAD_RETIRED:L1_MISS",
        "L2_RQSTS:DEMAND_DATA_RD_HIT",
        "MEM_LOAD_RETIRED:L3_HIT",
    ]

    def score():
        return {
            e: max_rnmse(measurement.repetition_vectors(e)) for e in key_events
        }

    values = benchmark(score)
    for event, value in values.items():
        assert value <= 1e-1, (event, value)
