"""Shared helpers for the table-reproduction benches."""

from __future__ import annotations

from repro.io.tables import write_markdown


def nonzero_terms(metric, tol=1e-6):
    """Event -> coefficient for coefficients above a numerical floor."""
    return {
        e: float(c)
        for e, c in zip(metric.event_names, metric.coefficients)
        if abs(c) > tol
    }


def rounded_terms(metric, tol=1e-6):
    return {e: round(c) for e, c in nonzero_terms(metric, tol).items()}


def write_metric_table(results_dir, filename, title, metrics):
    """Render a paper-style 'Metric | Combination | Error' table."""
    rows = []
    for metric in metrics:
        combo = " + ".join(
            f"{c:g} x {e}" for e, c in nonzero_terms(metric).items()
        ) or "(none)"
        rows.append([metric.metric, combo, f"{metric.error:.2e}"])
    write_markdown(
        results_dir / filename,
        ["Metric", "Combination of Raw Events", "Error"],
        rows,
        title=title,
    )
