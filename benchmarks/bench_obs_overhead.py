"""EXP-OBS: cost of the observability hooks, disabled and enabled.

The tracing contract is "off-by-default-cheap": every hook in the hot
path is a ``get_tracer()`` lookup that lands on the null tracer, so a
run outside an ``obs.tracing`` scope must pay only that lookup.  This
bench puts numbers on the contract:

* microbenchmark the disabled primitives (``get_tracer``, null span
  enter/exit, null ``incr``) and bound the total hook cost of a
  ``BenchmarkRunner.run`` as hooks-per-run x cost-per-hook — asserted
  **< 2%** of the measured hot-path time;
* clock the runner hot path and the full branch pipeline with tracing
  disabled vs enabled, so the *enabled* cost (span records, counter
  dict updates, snapshotting the trace) stays visible in review.

A results table (``results/obs_overhead.md``) records the measurements
next to the guard-overhead table this layout mirrors.
"""

from __future__ import annotations

import time

from repro import obs
from repro.cat import BenchmarkRunner, BranchBenchmark
from repro.core import AnalysisPipeline
from repro.hardware.systems import aurora_node
from repro.io.tables import write_markdown
from repro.obs import NULL_TRACER, get_tracer


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _per_call(fn, calls=100_000, repeats=3):
    """Best-of per-call cost of a micro-operation, in seconds."""

    def batch():
        for _ in range(calls):
            fn()

    return _best_of(batch, repeats) / calls


def _disabled_hook_cost():
    """Seconds per hook when no tracer is active (the default)."""

    def hook():
        tracer = get_tracer()
        with tracer.span("x"):
            pass
        tracer.incr("c")

    return _per_call(hook)


def test_disabled_hooks_hit_null_tracer():
    assert get_tracer() is NULL_TRACER
    with obs.tracing() as tracer:
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_runner_disabled_overhead_under_2_percent(results_dir):
    node = aurora_node(seed=2024)
    bench = BranchBenchmark()
    runner = BenchmarkRunner(node, repetitions=5)
    registry = node.events

    run_disabled = _best_of(lambda: runner.run(bench, events=registry))

    def run_traced():
        with obs.tracing(seed=2024):
            runner.run(bench, events=registry)

    run_enabled = _best_of(run_traced)

    # The runner's own hooks: one runner-run span plus three incrs; the
    # per-hook microbenchmark (span + incr) upper-bounds each of them.
    hooks_per_run = 4
    hook_cost = _disabled_hook_cost()
    bound = hooks_per_run * hook_cost
    overhead = bound / run_disabled
    assert overhead < 0.02, (
        f"disabled tracing hooks cost {bound * 1e6:.1f}us "
        f"({overhead:.2%}) of the {run_disabled * 1e3:.1f}ms hot path"
    )

    # The whole pipeline, both ways, for the table.
    pipeline = AnalysisPipeline.for_domain("branch", node)
    pipe_disabled = _best_of(lambda: pipeline.run(), repeats=3)

    def pipe_traced():
        with obs.tracing(seed=2024):
            pipeline.run()

    pipe_enabled = _best_of(pipe_traced, repeats=3)

    write_markdown(
        results_dir / "obs_overhead.md",
        headers=["path", "disabled (ms)", "enabled (ms)", "enabled/disabled"],
        rows=[
            [
                "runner.run (branch, full catalog)",
                f"{run_disabled * 1e3:.2f}",
                f"{run_enabled * 1e3:.2f}",
                f"{run_enabled / run_disabled:.3f}",
            ],
            [
                "pipeline.run (branch, end to end)",
                f"{pipe_disabled * 1e3:.2f}",
                f"{pipe_enabled * 1e3:.2f}",
                f"{pipe_enabled / pipe_disabled:.3f}",
            ],
            [
                "disabled hook bound (runner)",
                f"{bound * 1e3:.4f}",
                "-",
                f"{overhead:.4%} of hot path",
            ],
        ],
        title=(
            "Observability overhead (best of 5; disabled bound = "
            f"{hooks_per_run} hooks x {hook_cost * 1e9:.0f}ns/hook)"
        ),
    )

    # Enabled tracing stays cheap too: well under 2x on the hot path.
    assert run_enabled / run_disabled < 2.0
