"""EXP-T7: Table VII — branching metric definitions on SPR.

Shape criteria: six metrics compose exactly (machine-epsilon errors) with
the paper's combinations; "Conditional Branches Executed." is certified
uncomposable with backward error exactly 1.0 and near-zero coefficients —
Sapphire Rapids has no speculative branch-execution event.

Timed portion: metric composition over the 4-event X-hat.
"""

import numpy as np
import pytest

from _helpers import rounded_terms, write_metric_table
from repro.core.metrics import compose_metric
from repro.core.signatures import branch_signatures

PAPER_COMBINATIONS = {
    "Unconditional Branches.": {
        "BR_INST_RETIRED:COND": -1,
        "BR_INST_RETIRED:ALL_BRANCHES": 1,
    },
    "Conditional Branches Taken.": {"BR_INST_RETIRED:COND_TAKEN": 1},
    "Conditional Branches Not Taken.": {
        "BR_INST_RETIRED:COND": 1,
        "BR_INST_RETIRED:COND_TAKEN": -1,
    },
    "Mispredicted Branches.": {"BR_MISP_RETIRED": 1},
    "Correctly Predicted Branches.": {
        "BR_MISP_RETIRED": -1,
        "BR_INST_RETIRED:COND": 1,
    },
    "Conditional Branches Retired.": {"BR_INST_RETIRED:COND": 1},
}


def test_table7_metric_definitions(benchmark, branch_result, results_dir):
    result = branch_result
    signatures = branch_signatures()

    def compose_all():
        return [
            compose_metric(s.name, result.x_hat, result.selected_events, s)
            for s in signatures
        ]

    metrics = benchmark(compose_all)
    by_name = {m.metric: m for m in metrics}
    write_metric_table(
        results_dir,
        "table7_branch_metrics.md",
        "Table VII: branching metrics (reproduced)",
        metrics,
    )

    for name, combination in PAPER_COMBINATIONS.items():
        m = by_name[name]
        assert m.error < 1e-12, name
        assert rounded_terms(m) == combination, name


def test_table7_executed_branches_uncomposable(benchmark, branch_result):
    """The paper's absence certificate: error exactly 1, coefficients ~0
    (Table VII's last row shows 1e-16-scale coefficients)."""
    signature = [s for s in branch_signatures() if "Executed" in s.name][0]

    metric = benchmark(
        lambda: compose_metric(
            signature.name, branch_result.x_hat, branch_result.selected_events, signature
        )
    )
    assert np.isclose(metric.error, 1.0)
    assert np.abs(metric.coefficients).max() < 1e-10
