"""EXP-F3a-f: Figure 3 — rounded cache combinations vs signatures across
pointer-chain sizes.

Each panel overlays the measured raw-event combination (after Section
VI-D rounding) on the metric's signature in kernel space, across the
L1 | L2 | L3 | M size groups for both strides.  Shape criterion: the
combination tracks the signature within measurement noise in *every*
group — the paper's "rounding provides an exact match" claim.

Timed portion: series extraction over the measured matrix.
"""

import numpy as np
import pytest

from repro.core.basis import dcache_basis
from repro.core.metrics import round_coefficients
from repro.core.signatures import dcache_signatures
from repro.io.tables import write_csv
from repro.viz.ascii import grouped_series
from repro.viz.series import fig3_series

PANELS = {
    "L1 Hits.": "fig3a",
    "L1 Misses.": "fig3b",
    "L1 Reads.": "fig3c",
    "L2 Hits.": "fig3d",
    "L2 Misses.": "fig3e",
    "L3 Hits.": "fig3f",
}


@pytest.mark.parametrize("metric_name", sorted(PANELS))
def test_fig3_panels(benchmark, metric_name, dcache_result, results_dir):
    result = dcache_result
    basis = dcache_basis()
    signature = {s.name: s for s in dcache_signatures()}[metric_name]
    rounded = round_coefficients(result.metrics[metric_name], x_hat=result.x_hat)

    surviving = result.measurement.select_events(result.selected_events)
    matrix = surviving.measurement_matrix()

    series = benchmark(
        lambda: fig3_series(
            rounded, signature, basis, matrix, result.selected_events
        )
    )

    # The rounded combination matches the signature within measurement
    # noise at every chain size and stride.
    assert series.max_abs_deviation < 0.02, series.max_abs_deviation

    fig_id = PANELS[metric_name]
    group_labels = [
        label.split("/", 1)[1].replace("/", ":") for label in series.row_labels
    ]
    write_csv(
        results_dir / f"{fig_id}_{metric_name.rstrip('.').replace(' ', '_').lower()}.csv",
        ["row", "measured_combination", "signature"],
        list(zip(series.row_labels, series.measured, series.expected)),
    )
    plot = grouped_series(
        [l.split(":")[1] for l in group_labels],
        [("signature", series.expected), ("measured", series.measured)],
        title=f"{metric_name} combination vs signature "
        "(left: stride 64B, right: stride 128B)",
        y_max=1.5,
    )
    (results_dir / f"{fig_id}_{metric_name.rstrip('.').replace(' ', '_').lower()}.txt").write_text(
        plot + "\n"
    )


def test_fig3_unrounded_combination_is_close_but_inexact(benchmark, dcache_result):
    """Contrast: the raw least-squares combination tracks the signature
    too, but carries the small cross-term wiggle rounding removes."""
    result = dcache_result
    basis = dcache_basis()
    signature = {s.name: s for s in dcache_signatures()}["L2 Misses."]
    metric = result.metrics["L2 Misses."]
    surviving = result.measurement.select_events(result.selected_events)
    matrix = surviving.measurement_matrix()

    series = benchmark(
        lambda: fig3_series(metric, signature, basis, matrix, result.selected_events)
    )
    assert series.max_abs_deviation < 0.05
