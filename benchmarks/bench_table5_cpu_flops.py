"""EXP-T5: Table V — CPU floating-point metric definitions on SPR.

Shape criteria (paper values reproduced exactly by the simulation):

* SP/DP Instrs.: unit coefficients over the four per-precision events,
  backward error at machine-epsilon scale.
* SP/DP Ops.: coefficients {1,4,8,16} (SP) and {1,2,4,8} (DP).
* SP/DP FMA Instrs.: *absence detection* — coefficients ~0.8 across all
  four per-precision events and backward error ~2.36e-1 because
  FP_ARITH events double-count FMA and no dedicated FMA counter exists.

Timed portion: the least-squares metric composition over X-hat.
"""

import numpy as np
import pytest

from _helpers import nonzero_terms, rounded_terms, write_metric_table
from repro.core.metrics import compose_metric
from repro.core.signatures import cpu_flops_signatures

PAPER_ERRORS = {
    "SP Instrs.": 1.67e-16,
    "SP Ops.": 6.05e-18,
    "SP FMA Instrs.": 2.36e-1,
    "DP Instrs.": 5.55e-17,
    "DP Ops.": 1.69e-19,
    "DP FMA Instrs.": 2.36e-1,
}


def test_table5_metric_definitions(benchmark, cpu_flops_result, results_dir):
    result = cpu_flops_result
    signatures = cpu_flops_signatures()

    def compose_all():
        return [
            compose_metric(s.name, result.x_hat, result.selected_events, s)
            for s in signatures
        ]

    metrics = benchmark(compose_all)
    by_name = {m.metric: m for m in metrics}
    write_metric_table(
        results_dir,
        "table5_cpu_flops_metrics.md",
        "Table V: CPU floating-point metrics (reproduced)",
        metrics,
    )

    # Instruction metrics: unit coefficients, machine-epsilon errors.
    for name, prec in (("SP Instrs.", "SINGLE"), ("DP Instrs.", "DOUBLE")):
        m = by_name[name]
        assert m.error < 1e-12
        terms = rounded_terms(m)
        assert set(terms.values()) == {1}
        assert len(terms) == 4 and all(prec in e for e in terms)

    # Operations metrics: FLOPs-per-instruction coefficients.
    assert rounded_terms(by_name["DP Ops."]) == {
        "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE": 1,
        "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE": 2,
        "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE": 4,
        "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE": 8,
    }
    assert rounded_terms(by_name["SP Ops."]) == {
        "FP_ARITH_INST_RETIRED:SCALAR_SINGLE": 1,
        "FP_ARITH_INST_RETIRED:128B_PACKED_SINGLE": 4,
        "FP_ARITH_INST_RETIRED:256B_PACKED_SINGLE": 8,
        "FP_ARITH_INST_RETIRED:512B_PACKED_SINGLE": 16,
    }
    assert by_name["DP Ops."].error < 1e-12
    assert by_name["SP Ops."].error < 1e-12

    # FMA metrics: the paper's 0.8 / 2.36e-1 fingerprint of absence.
    for name in ("SP FMA Instrs.", "DP FMA Instrs."):
        m = by_name[name]
        assert m.error == pytest.approx(PAPER_ERRORS[name], abs=2e-3)
        coeffs = np.array(list(nonzero_terms(m).values()))
        assert np.allclose(coeffs, 0.8, atol=1e-6)


def test_table5_error_magnitudes_vs_paper(benchmark, cpu_flops_result):
    """Composable rows land at machine-epsilon scale like the paper's
    1e-16..1e-19 column; uncomposable rows match 2.36e-1 tightly."""
    errors = benchmark(
        lambda: {name: m.error for name, m in cpu_flops_result.metrics.items()}
    )
    for name, paper_error in PAPER_ERRORS.items():
        if paper_error < 1e-10:
            assert errors[name] < 1e-10, name
        else:
            assert errors[name] == pytest.approx(paper_error, abs=2e-3), name
