"""EXP-EXT5: extension — selection stability across measurement-noise seeds.

The paper runs on one machine at one time; a practitioner wants to know
whether a rerun next week lands on the same preset definitions.  This
bench reruns the pipelines across node seeds and checks:

* exact-measurement domains (branch, CPU FLOPs): bit-stable selections;
* noisy domains (dcache): the unique-carrier dimensions never vary, and
  the shared dimensions only move within their semantic equivalence class
  (interchangeable raw events measuring the same concept).

The multi-seed sweeps run once per session (fixtures); the timed portion
is the carrier aggregation.
"""

import pytest

from repro.core.stability import selection_stability
from repro.hardware import aurora_node
from repro.io.tables import write_csv

SEEDS = [1, 2, 7, 42, 1234]


@pytest.fixture(scope="module")
def branch_stability():
    return selection_stability(lambda s: aurora_node(seed=s), "branch", seeds=SEEDS)


@pytest.fixture(scope="module")
def flops_stability():
    return selection_stability(
        lambda s: aurora_node(seed=s), "cpu_flops", seeds=SEEDS[:3]
    )


@pytest.fixture(scope="module")
def dcache_stability():
    return selection_stability(lambda s: aurora_node(seed=s), "dcache", seeds=SEEDS)


def test_branch_stability(benchmark, results_dir, branch_stability):
    report = branch_stability
    deterministic = benchmark(lambda: report.is_deterministic)
    assert deterministic
    _write(results_dir, report)


def test_cpu_flops_stability(benchmark, results_dir, flops_stability):
    report = flops_stability
    families = benchmark(report.carrier_families)
    assert report.is_deterministic
    assert all(len(events) == 1 for events in families.values())
    _write(results_dir, report)


def test_dcache_stability_within_equivalence_classes(
    benchmark, results_dir, dcache_stability
):
    report = dcache_stability
    families = benchmark(report.carrier_families)
    # Unique carriers: stable across every seed.
    assert families["L1DH"] == ["MEM_LOAD_RETIRED:L1_HIT"]
    assert families["L2DH"] == ["L2_RQSTS:DEMAND_DATA_RD_HIT"]
    assert families["L3DH"] == ["MEM_LOAD_RETIRED:L3_HIT"]
    # Shared dimension: only semantically equivalent events ever win.
    assert set(families["L1DM"]) <= {
        "MEM_LOAD_RETIRED:L1_MISS",
        "L2_RQSTS:ALL_DEMAND_DATA_RD",
        "L2_RQSTS:ALL_DEMAND_REFERENCES",
        "OFFCORE_REQUESTS:DEMAND_DATA_RD",
    }
    _write(results_dir, report)


def _write(results_dir, report):
    rows = []
    for dim, counter in report.dimension_carriers.items():
        for event, count in counter.most_common():
            rows.append([report.domain, dim, event, count])
    write_csv(
        results_dir / f"ext_stability_{report.domain}.csv",
        ["domain", "dimension", "carrier_event", "seeds_won"],
        rows,
    )
