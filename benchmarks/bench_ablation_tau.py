"""EXP-AB3: ablation — sensitivity of the noise threshold tau (Sec. IV).

The paper reads Figure 2a as: "setting tau to any value from 1e-4 to
1e-15 unambiguously divides the zero-noise events from the noisy events."
Verified by sweeping tau across that window on the branching benchmark
and checking the kept-event set never changes; and by showing the cache
benchmark has no such free window (hence its lenient 1e-1).

Timed portion: the tau sweep over cached variabilities.
"""

import numpy as np
import pytest

from repro.core.noise_filter import analyze_noise
from repro.io.tables import write_csv

BRANCH_TAUS = np.logspace(-15, -4, 12)
CACHE_TAUS = np.logspace(-4, 0, 9)


def test_tau_window_branch(benchmark, branch_result, results_dir):
    measurement = branch_result.measurement

    def sweep():
        return {
            float(tau): frozenset(analyze_noise(measurement, tau=float(tau)).kept)
            for tau in BRANCH_TAUS
        }

    kept_sets = benchmark(sweep)
    sizes = {tau: len(kept) for tau, kept in kept_sets.items()}
    write_csv(
        results_dir / "ablation_tau_branch.csv",
        ["tau", "events_kept"],
        sorted(sizes.items()),
    )
    # One and the same kept set across eleven decades of tau.
    assert len(set(kept_sets.values())) == 1


def test_tau_has_no_free_window_for_cache(benchmark, dcache_result, results_dir):
    measurement = dcache_result.measurement

    def sweep():
        return {
            float(tau): len(analyze_noise(measurement, tau=float(tau)).kept)
            for tau in CACHE_TAUS
        }

    sizes = benchmark(sweep)
    write_csv(
        results_dir / "ablation_tau_dcache.csv",
        ["tau", "events_kept"],
        sorted(sizes.items()),
    )
    # Kept population grows continually with tau: no clean separation.
    counts = [sizes[t] for t in sorted(sizes)]
    assert counts[0] == 0
    assert counts[-1] > 40
    assert len(set(counts)) >= 5


def test_lenient_cache_tau_beats_strict(benchmark, aurora, dcache_result):
    """With the branch-style tau = 1e-10, *every* cache event is filtered
    and no metric can be composed — the reason Section IV argues for
    leniency plus downstream noise handling."""
    measurement = dcache_result.measurement
    strict = benchmark(lambda: analyze_noise(measurement, tau=1e-10))
    assert len(strict.kept) == 0
