"""EXP-INGEST: parser throughput and ingested-vs-simulated wall-clock.

Two questions, one table (``results/ingest.md``):

* **Parser throughput.** The perf-interval and PAPI parsers are the
  ingestion hot path — a real collection campaign produces interval
  logs in the 10^5-line range per kernel sweep.  Each parser is clocked
  on a synthetic 100,000-line log (best-of timing, lines/second
  reported), and the round-trip serializer alongside it, so a
  throughput regression in either direction of the bit-stability
  contract is visible in review.

* **Ingested vs simulated wall-clock.** Ingesting the checked-in SPR
  fixture corpus (25 files: parse, merge, calibrate, analyze) is
  clocked against the equivalent simulator path (measure + analyze the
  same branch domain).  Ingestion skips the simulation but pays for
  parsing and assembly; the table records both so the "identical
  pipeline" claim has a cost sheet attached.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.core.pipeline import AnalysisPipeline
from repro.hardware.systems import aurora_node
from repro.ingest import (
    assemble,
    load_manifest,
    parse_papi_csv,
    parse_perf,
    run_ingest,
    serialize_papi_csv,
    serialize_samples,
)
from repro.io.tables import write_markdown

DATA = Path(__file__).resolve().parent.parent / "tests" / "data" / "ingest"
SPR_MANIFEST = DATA / "spr_branch" / "manifest.json"

#: Synthetic log size: ~10^5 lines, the scale of one real interval
#: campaign (1000 intervals x 100 events).
N_INTERVALS = 1_000
N_EVENTS = 100
N_LINES = N_INTERVALS * N_EVENTS

_ROWS = []


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _synthetic_interval_log() -> str:
    lines = []
    for i in range(N_INTERVALS):
        ts = float(i + 1)
        for e in range(N_EVENTS):
            value = float(1000 * i + e)
            lines.append(f"{ts!r},{value!r},,synthetic.event_{e:03d},0,100.00")
    return "\n".join(lines) + "\n"


def _synthetic_papi_log() -> str:
    events = ",".join(f"SYN_EVT_{e:03d}" for e in range(N_EVENTS))
    lines = [f"row,repetition,{events}"]
    for i in range(N_INTERVALS):
        cells = ",".join(repr(float(1000 * i + e)) for e in range(N_EVENTS))
        lines.append(f"k{i % 11:02d},{i // 11},{cells}")
    return "\n".join(lines) + "\n"


def test_perf_interval_parser_throughput():
    text = _synthetic_interval_log()
    elapsed, (fmt, samples) = _best_of(
        lambda: parse_perf(text, format="perf-interval")
    )
    assert fmt == "perf-interval"
    assert len(samples) == N_INTERVALS
    assert sum(len(s.readings) for s in samples) == N_LINES
    _ROWS.append(
        [
            "parse perf-interval",
            f"{N_LINES:,} lines",
            f"{elapsed:.3f}",
            f"{N_LINES / elapsed:,.0f} lines/s",
        ]
    )

    ser_elapsed, canonical = _best_of(
        lambda: serialize_samples("perf-interval", samples)
    )
    assert canonical == text  # the synthetic log is already canonical
    _ROWS.append(
        [
            "serialize perf-interval",
            f"{N_LINES:,} lines",
            f"{ser_elapsed:.3f}",
            f"{N_LINES / ser_elapsed:,.0f} lines/s",
        ]
    )


def test_papi_parser_throughput():
    text = _synthetic_papi_log()
    n_cells = N_INTERVALS * N_EVENTS
    elapsed, matrix = _best_of(lambda: parse_papi_csv(text))
    assert len(matrix.records) == N_INTERVALS
    _ROWS.append(
        [
            "parse papi-csv",
            f"{n_cells:,} cells",
            f"{elapsed:.3f}",
            f"{n_cells / elapsed:,.0f} cells/s",
        ]
    )
    ser_elapsed, canonical = _best_of(lambda: serialize_papi_csv(matrix))
    assert canonical == text
    _ROWS.append(
        [
            "serialize papi-csv",
            f"{n_cells:,} cells",
            f"{ser_elapsed:.3f}",
            f"{n_cells / ser_elapsed:,.0f} cells/s",
        ]
    )


def test_ingested_vs_simulated_wall_clock():
    def ingested():
        return run_ingest(assemble(load_manifest(SPR_MANIFEST)))

    def simulated():
        node = aurora_node(seed=2024)
        return AnalysisPipeline.for_domain("branch", node).run()

    ing_elapsed, outcome = _best_of(ingested)
    sim_elapsed, result = _best_of(simulated)
    assert outcome.result.metrics
    assert result.metrics
    _ROWS.append(
        [
            "ingest SPR corpus (parse+assemble+analyze)",
            "25 files, 3x11x10 matrix",
            f"{ing_elapsed:.3f}",
            "-",
        ]
    )
    _ROWS.append(
        [
            "simulate branch domain (measure+analyze)",
            "aurora seed 2024",
            f"{sim_elapsed:.3f}",
            "-",
        ]
    )


def test_write_ingest_table(results_dir):
    assert _ROWS, "no bench rows collected"
    path = write_markdown(
        results_dir / "ingest.md",
        ["operation", "workload", "best-of seconds", "throughput"],
        _ROWS,
        title="EXP-INGEST: parser throughput (synthetic 100k-line logs) "
        "and ingested-vs-simulated wall-clock",
    )
    assert "perf-interval" in path.read_text()
