"""Shared fixtures for the benchmark harness.

Every table and figure of the paper has a bench module; pipeline results
are computed once per session and shared, so the timed portions measure
the analysis kernels (QRCP, least squares, RNMSE) rather than redundant
benchmark re-runs.  Artifacts (reproduced tables, figure series, ASCII
plots) are written under ``results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.pipeline import AnalysisPipeline
from repro.hardware.systems import aurora_node, frontier_node

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def aurora():
    return aurora_node()


@pytest.fixture(scope="session")
def frontier():
    return frontier_node()


@pytest.fixture(scope="session")
def branch_result(aurora):
    return AnalysisPipeline.for_domain("branch", aurora).run()


@pytest.fixture(scope="session")
def cpu_flops_result(aurora):
    return AnalysisPipeline.for_domain("cpu_flops", aurora).run()


@pytest.fixture(scope="session")
def gpu_flops_result(frontier):
    return AnalysisPipeline.for_domain("gpu_flops", frontier).run()


@pytest.fixture(scope="session")
def dcache_result(aurora):
    return AnalysisPipeline.for_domain("dcache", aurora).run()
