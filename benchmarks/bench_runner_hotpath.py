"""EXP-PERF1: the measurement hot path — vectorized runner vs scalar loop.

The measure stage dominates every sweep: ~300 events over all kernel rows,
threads and repetitions.  Its Python-interpreter cost used to live in the
true-count evaluation — a per-(thread, row, event) triple loop over
``event.true_count`` — which this repo replaced with the packed
weight-matrix product.  This bench times that stage on the full Sapphire
Rapids catalog against the pre-vectorization reference loop (reproduced
here so the speedup stays measurable after the code moved on), checks the
two produce bit-identical counts, and records a regression baseline in
``results/runner_hotpath.csv``.

Rows written:

* ``truecount_scalar`` / ``truecount_vectorized`` — the measurement
  stage this PR vectorizes (speedup asserted >= 3x);
* ``run_scalar`` / ``run_vectorized`` — whole ``BenchmarkRunner.run``
  equivalents, including the stages both variants share (kernel
  execution, PMU scheduling, per-event noise draws);
* ``run_cached`` — a content-addressed cache hit, which skips
  measurement entirely (asserted: the benchmark is never executed).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cat import BenchmarkRunner, CPUFlopsBenchmark
from repro.cat.measurement import MeasurementSet
from repro.io.cache import MeasurementCache, measurement_cache_key
from repro.io.tables import write_csv
from repro.hardware.systems import aurora_node


def _scalar_true_counts(event_list, activities, n_threads, n_rows):
    """The pre-PR true-count stage: the Python triple loop."""
    true_counts = np.zeros((n_threads, n_rows, len(event_list)))
    for thread in range(n_threads):
        for row, row_acts in enumerate(activities):
            activity = row_acts[thread]
            for j, event in enumerate(event_list):
                true_counts[thread, row, j] = event.true_count(activity)
    return true_counts


def _vectorized_true_counts(packed, activities, n_threads, n_rows):
    """The current true-count stage: packed activity x weight product."""
    flat = [row_acts[thread] for thread in range(n_threads) for row_acts in activities]
    matrix = packed.pack_activities(flat)
    counts = packed.true_counts(matrix)
    for j, event in packed.fallback:
        for i, activity in enumerate(flat):
            counts[i, j] = event.true_count(activity)
    return counts.reshape(n_threads, n_rows, len(packed.events))


def _scalar_reference_run(runner, bench, registry) -> MeasurementSet:
    """The pre-PR measurement loop end to end (noise stage unchanged)."""
    event_list = list(registry)
    activities = bench.execute(runner.node.machine)
    n_rows = len(activities)
    n_threads = max(len(row) for row in activities)
    schedule = runner.node.pmu.schedule(event_list)

    true_counts = _scalar_true_counts(event_list, activities, n_threads, n_rows)
    data = np.zeros((runner.repetitions, n_threads, n_rows, len(event_list)))
    batch_shape = (runner.repetitions, n_threads, n_rows)
    for j, event in enumerate(event_list):
        if event.noise.is_deterministic:
            data[:, :, :, j] = true_counts[:, :, j][None, :, :]
            continue
        rng = runner._rng(event.full_name)
        tiled = np.broadcast_to(true_counts[:, :, j], batch_shape)
        data[:, :, :, j] = event.noise.apply_batch(tiled, rng)

    return MeasurementSet(
        benchmark=bench.name,
        row_labels=bench.row_labels(),
        event_names=[e.full_name for e in event_list],
        data=data,
        pmu_runs=schedule.n_runs,
    )


def _best_of(fn, repeats=5):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def node():
    return aurora_node()


def test_runner_hotpath_speedup_and_cache(node, results_dir):
    bench = CPUFlopsBenchmark()
    runner = BenchmarkRunner(node, repetitions=5)
    # Full catalog, not just the domain sweep: the worst (realistic) case.
    registry = node.events
    event_list = list(registry)
    packed = registry.weight_matrix()  # built once per registry, cached
    activities = bench.execute(node.machine)
    n_rows = len(activities)
    n_threads = max(len(row) for row in activities)

    # --- the measurement stage this PR vectorized ---------------------
    scalar_tc_s, scalar_tc = _best_of(
        lambda: _scalar_true_counts(event_list, activities, n_threads, n_rows)
    )
    vector_tc_s, vector_tc = _best_of(
        lambda: _vectorized_true_counts(packed, activities, n_threads, n_rows)
    )
    assert np.array_equal(scalar_tc, vector_tc)  # bit-identical counts
    stage_speedup = scalar_tc_s / vector_tc_s
    assert stage_speedup >= 3.0, (
        f"vectorized true-count stage only {stage_speedup:.1f}x faster "
        f"({scalar_tc_s * 1e3:.2f}ms -> {vector_tc_s * 1e3:.2f}ms)"
    )

    # --- whole runs (shared stages included) --------------------------
    scalar_run_s, scalar_ms = _best_of(
        lambda: _scalar_reference_run(runner, bench, registry)
    )
    vector_run_s, vector_ms = _best_of(lambda: runner.run(bench, events=registry))
    assert np.array_equal(scalar_ms.data, vector_ms.data)
    assert scalar_ms.event_names == vector_ms.event_names

    # --- cache hit: measurement skipped entirely ----------------------
    cache = MeasurementCache()
    key = measurement_cache_key(node, bench, registry, runner.repetitions)
    cache.put(key, vector_ms)
    executed = []
    original_execute = bench.execute

    def tracked_execute(machine):
        executed.append(1)
        return original_execute(machine)

    bench.execute = tracked_execute
    try:
        cached_s, cached_ms = _best_of(
            lambda: cache.get_or_measure(
                key, lambda: runner.run(bench, events=registry)
            )
        )
    finally:
        bench.execute = original_execute
    assert cached_ms is vector_ms
    assert not executed, "cache hit must not re-execute the benchmark"

    write_csv(
        results_dir / "runner_hotpath.csv",
        ["variant", "seconds", "speedup_vs_scalar"],
        [
            ["truecount_scalar", f"{scalar_tc_s:.6f}", "1.00"],
            [
                "truecount_vectorized",
                f"{vector_tc_s:.6f}",
                f"{stage_speedup:.2f}",
            ],
            ["run_scalar", f"{scalar_run_s:.6f}", "1.00"],
            [
                "run_vectorized",
                f"{vector_run_s:.6f}",
                f"{scalar_run_s / vector_run_s:.2f}",
            ],
            [
                "run_cached",
                f"{cached_s:.6f}",
                f"{scalar_run_s / max(cached_s, 1e-9):.2f}",
            ],
        ],
    )


def test_vectorized_determinism_across_runs(node):
    bench = CPUFlopsBenchmark()
    a = BenchmarkRunner(node, repetitions=3).run(bench, events=node.events)
    b = BenchmarkRunner(node, repetitions=3).run(bench, events=node.events)
    assert np.array_equal(a.data, b.data)
    assert a.pmu_runs == b.pmu_runs
