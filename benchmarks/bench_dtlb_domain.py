"""EXP-EXT3: extension — a fifth benchmark domain (data TLB).

The paper states its analysis "is not limited to one type of events";
this bench applies the unmodified pipeline to the address-translation
hierarchy via a page-stride pointer chase, producing TLB metrics the
paper never tabulated.

Shape criteria: the QRCP selects genuine translation events (the
two-stride sweep de-confounds them from cache misses); all five metrics
compose with machine-epsilon errors; "DTLB Hits" — which has no direct
event on SPR — derives by subtraction from the retired-loads counter.

Timed portion: the full dtlb pipeline.
"""

import pytest

from _helpers import write_metric_table
from repro.core import AnalysisPipeline
from repro.core.noise_filter import analyze_noise


@pytest.fixture(scope="module")
def dtlb_result(aurora):
    return AnalysisPipeline.for_domain("dtlb", aurora).run()


def test_dtlb_selection_and_metrics(benchmark, aurora, dtlb_result, results_dir):
    pipeline = AnalysisPipeline.for_domain("dtlb", aurora)
    result = benchmark(lambda: pipeline.run(measurement=dtlb_result.measurement))

    selected = set(result.selected_events)
    assert {
        "DTLB_LOAD_MISSES:WALK_COMPLETED",
        "DTLB_LOAD_MISSES:STLB_HIT",
    } <= selected
    # The third pivot carries the per-access "translation reads" direction;
    # several events are interchangeable there (retired loads, or L1 misses
    # — page strides alias the L1 sets, so every access misses L1).
    assert len(selected) == 3
    for name, metric in result.metrics.items():
        assert metric.error < 1e-10, name
    write_metric_table(
        results_dir,
        "ext_dtlb_metrics.md",
        "Extension: data-TLB metrics (fifth domain)",
        list(result.metrics.values()),
    )


def test_dtlb_noise_profile_matches_cache_regime(benchmark, dtlb_result, results_dir):
    """Translation counters live in the same no-zero-cluster noise regime
    as the cache events (multi-threaded benchmark jitter)."""
    noise = benchmark(lambda: analyze_noise(dtlb_result.measurement, tau=1e-1))
    assert all(v > 0 for v in noise.variabilities.values())
    kept = set(noise.kept)
    assert "DTLB_LOAD_MISSES:WALK_COMPLETED" in kept
    assert "DTLB_LOAD_MISSES:STLB_HIT" in kept


def test_dtlb_hits_subtraction(benchmark, dtlb_result):
    rounded = benchmark(lambda: dtlb_result.rounded_metrics["DTLB Hits."])
    terms = dict(rounded.terms())
    assert terms.pop("DTLB_LOAD_MISSES:STLB_HIT") == -1.0
    assert terms.pop("DTLB_LOAD_MISSES:WALK_COMPLETED") == -1.0
    (carrier, coeff), = terms.items()
    assert coeff == 1.0
