"""EXP-AB1: ablation — standard (Algorithm 1) vs specialized (Algorithm 2)
QRCP pivoting.

The paper's motivation for the specialized scheme: standard norm-based
pivoting prefers large columns (aggregate or cycles-like events), whereas
the analysis needs basis-aligned columns.  Demonstrated on the actual
CPU-FLOPs representation matrix: Algorithm 1's first pivots are the
aggregate FP events (largest representations), Algorithm 2's selection is
exactly the eight pure per-class events.

Timed portions: each factorization over the same X.
"""

import numpy as np
import pytest

from repro.core.qrcp import qrcp_specialized, qrcp_standard
from repro.io.tables import write_markdown

PURE_FP_EVENTS = {
    f"FP_ARITH_INST_RETIRED:{w}_PACKED_{p}"
    for w in ("128B", "256B", "512B")
    for p in ("SINGLE", "DOUBLE")
} | {"FP_ARITH_INST_RETIRED:SCALAR_SINGLE", "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE"}


def test_standard_qrcp_prefers_aggregates(benchmark, cpu_flops_result, results_dir):
    x = cpu_flops_result.representation.x_matrix
    names = cpu_flops_result.representation.event_names

    result = benchmark(lambda: qrcp_standard(x))
    selected = [names[i] for i in result.selected]

    write_markdown(
        results_dir / "ablation_qrcp_standard_selection.md",
        ["pivot order", "event"],
        [[i + 1, n] for i, n in enumerate(selected)],
        title="Ablation: standard norm-pivoted QRCP selection (CPU FLOPs)",
    )
    # The norm criterion picks aggregate events among its pivots — the
    # failure mode the paper designs around.
    aggregates = {n for n in selected} - PURE_FP_EVENTS
    assert aggregates, "standard pivoting should admit aggregate events"
    # Its very first pivot is an aggregate (largest norm by construction).
    assert selected[0] not in PURE_FP_EVENTS


def test_specialized_qrcp_prefers_pure_events(benchmark, cpu_flops_result, results_dir):
    x = cpu_flops_result.representation.x_matrix
    names = cpu_flops_result.representation.event_names

    result = benchmark(lambda: qrcp_specialized(x, alpha=5e-4))
    selected = {names[i] for i in result.selected}
    write_markdown(
        results_dir / "ablation_qrcp_specialized_selection.md",
        ["pivot order", "event"],
        [[i + 1, names[idx]] for i, idx in enumerate(result.selected)],
        title="Ablation: specialized QRCP selection (CPU FLOPs)",
    )
    assert selected == PURE_FP_EVENTS


def test_both_algorithms_agree_on_rank(benchmark, cpu_flops_result):
    """Whatever the pivot order, the subspace dimension is the same."""
    x = cpu_flops_result.representation.x_matrix

    def ranks():
        return qrcp_standard(x).rank, qrcp_specialized(x, alpha=5e-4).rank

    standard_rank, specialized_rank = benchmark(ranks)
    assert standard_rank == specialized_rank == 8
