"""EXP-T6: Table VI — GPU floating-point metric definitions on MI250X.

Shape criteria:

* "HP Add Ops." and "HP Sub Ops." in isolation: coefficient 0.5 on
  SQ_INSTS_VALU_ADD_F16 with backward error ~4.14e-1 (the ADD counter
  fires for both adds and subs, so neither is separable).
* "HP Add and Sub Ops.": exactly 1 x ADD_F16, machine-epsilon error.
* "All {HP,SP,DP} Ops.": 2 x FMA + 1 x MUL + 1 x TRANS + 1 x ADD at the
  respective precision, machine-epsilon error.

Timed portion: metric composition over the 12-event X-hat.
"""

import numpy as np
import pytest

from _helpers import nonzero_terms, rounded_terms, write_metric_table
from repro.core.metrics import compose_metric
from repro.core.signatures import gpu_flops_signatures

PAPER_ERRORS = {
    "HP Add Ops.": 4.14e-1,
    "HP Sub Ops.": 4.14e-1,
    "HP Add and Sub Ops.": 5.55e-17,
    "All HP Ops.": 2.39e-17,
    "All SP Ops.": 2.39e-17,
    "All DP Ops.": 2.39e-17,
}


def test_table6_metric_definitions(benchmark, gpu_flops_result, results_dir):
    result = gpu_flops_result
    signatures = gpu_flops_signatures()

    def compose_all():
        return [
            compose_metric(s.name, result.x_hat, result.selected_events, s)
            for s in signatures
        ]

    metrics = benchmark(compose_all)
    by_name = {m.metric: m for m in metrics}
    write_metric_table(
        results_dir,
        "table6_gpu_flops_metrics.md",
        "Table VI: GPU floating-point metrics (reproduced)",
        metrics,
    )

    for name in ("HP Add Ops.", "HP Sub Ops."):
        m = by_name[name]
        assert m.error == pytest.approx(PAPER_ERRORS[name], abs=2e-3)
        terms = nonzero_terms(m)
        assert set(terms) == {"rocm:::SQ_INSTS_VALU_ADD_F16:device=0"}
        assert terms["rocm:::SQ_INSTS_VALU_ADD_F16:device=0"] == pytest.approx(0.5)

    add_sub = by_name["HP Add and Sub Ops."]
    assert add_sub.error < 1e-12
    assert rounded_terms(add_sub) == {"rocm:::SQ_INSTS_VALU_ADD_F16:device=0": 1}

    for name, suffix in (
        ("All HP Ops.", "F16"),
        ("All SP Ops.", "F32"),
        ("All DP Ops.", "F64"),
    ):
        m = by_name[name]
        assert m.error < 1e-12
        assert rounded_terms(m) == {
            f"rocm:::SQ_INSTS_VALU_FMA_{suffix}:device=0": 2,
            f"rocm:::SQ_INSTS_VALU_MUL_{suffix}:device=0": 1,
            f"rocm:::SQ_INSTS_VALU_TRANS_{suffix}:device=0": 1,
            f"rocm:::SQ_INSTS_VALU_ADD_{suffix}:device=0": 1,
        }


def test_table6_add_event_counts_sub_kernels(benchmark, gpu_flops_result):
    """Section V-B observation: ADD events fire equally for addition and
    subtraction kernels — verified on the measured data itself."""
    ms = gpu_flops_result.measurement

    def vector():
        return ms.mean_vector("rocm:::SQ_INSTS_VALU_ADD_F16:device=0")

    v = benchmark(vector)
    labels = ms.row_labels
    add_rows = [i for i, l in enumerate(labels) if l.startswith("add_f16/")]
    sub_rows = [i for i, l in enumerate(labels) if l.startswith("sub_f16/")]
    assert np.allclose(v[add_rows], v[sub_rows])
    assert v[add_rows].tolist() == [24.0, 48.0, 96.0]
