"""EXP-EXT1: beyond the paper — the pipeline on AMD Zen 3 (Trento).

Extends the evaluation to Frontier's host CPU and checks the
architecture-specific findings the method should discover there:

* per-precision FP metrics uncomposable (merged-precision FLOP counters —
  the AMD limitation the paper's Section III-B mentions);
* "Conditional Branches Taken" composed as all-taken minus unconditional;
* "L1 Hits" composed by subtraction (no L1-hit event exists);
* CE uncomposable, as on Intel.

Timed portions: the full metric composition per domain on the Zen node.

The three domain pipelines fan through the sweep engine's process pool —
independent (node, domain) pipelines are exactly its workload, and the
reproducibility contract makes the parallel results bit-identical to a
serial run.
"""

import numpy as np
import pytest

from _helpers import write_metric_table
from repro.core.metrics import compose_metric
from repro.core.sweep import SweepEngine, expand_grid


@pytest.fixture(scope="module")
def zen_results():
    outcomes = SweepEngine(max_workers=3).run(
        expand_grid(["frontier-cpu"], ["cpu_flops", "branch", "dcache"])
    )
    assert all(o.ok for o in outcomes), [o.error for o in outcomes]
    return {o.task.domain: o.result for o in outcomes}


def test_zen3_flops_absence_detection(benchmark, zen_results, results_dir):
    result = zen_results["cpu_flops"]

    def compose_all():
        return [
            compose_metric(m.metric, result.x_hat, result.selected_events, m.signature)
            for m in result.metrics.values()
        ]

    metrics = benchmark(compose_all)
    write_metric_table(
        results_dir,
        "ext_zen3_flops_metrics.md",
        "Extension: Zen 3 FP metrics (merged-precision counters)",
        metrics,
    )
    for metric in metrics:
        assert not metric.composable, metric.metric
        assert metric.error > 0.1


def test_zen3_branch_compositions(benchmark, zen_results, results_dir):
    result = zen_results["branch"]
    metrics = benchmark(lambda: list(result.metrics.values()))
    write_metric_table(
        results_dir,
        "ext_zen3_branch_metrics.md",
        "Extension: Zen 3 branching metrics",
        metrics,
    )
    by_name = {m.metric: m for m in metrics}
    taken = by_name["Conditional Branches Taken."]
    assert taken.error < 1e-10
    terms = {e: round(c) for e, c in taken.terms().items() if abs(c) > 1e-6}
    assert terms == {"EX_RET_BRN_TKN": 1, "EX_RET_UNCOND_BRNCH_INSTR": -1}
    assert np.isclose(by_name["Conditional Branches Executed."].error, 1.0)


def test_zen3_cache_compositions(benchmark, zen_results, results_dir):
    result = zen_results["dcache"]
    rounded = benchmark(lambda: dict(result.rounded_metrics))
    write_metric_table(
        results_dir,
        "ext_zen3_dcache_metrics.md",
        "Extension: Zen 3 data-cache metrics (rounded)",
        list(rounded.values()),
    )
    for name, metric in rounded.items():
        assert all(c == round(c) for c in metric.terms().values()), name
    # L1 Hits derived by subtraction.
    assert sorted(rounded["L1 Hits."].terms().values()) == [-1.0, 1.0]
