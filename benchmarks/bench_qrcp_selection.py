"""EXP-QR-A..D: Section V — events chosen by the specialized QRCP.

The paper's headline qualitative result: with alpha = 5e-4 (5e-2 for the
cache), Algorithm 2 selects exactly the architecture's "good" events per
domain.  Timed portion: the specialized QRCP over the representation
matrix X.
"""

import pytest

from repro.core.qrcp import qrcp_specialized
from repro.io.tables import write_markdown

EXPECTED = {
    "cpu_flops": (
        "cpu_flops_result",
        5e-4,
        {
            "FP_ARITH_INST_RETIRED:SCALAR_SINGLE",
            "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE",
            "FP_ARITH_INST_RETIRED:128B_PACKED_SINGLE",
            "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE",
            "FP_ARITH_INST_RETIRED:256B_PACKED_SINGLE",
            "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE",
            "FP_ARITH_INST_RETIRED:512B_PACKED_SINGLE",
            "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE",
        },
    ),
    "gpu_flops": (
        "gpu_flops_result",
        5e-4,
        {
            f"rocm:::SQ_INSTS_VALU_{op}_{p}:device=0"
            for op in ("ADD", "MUL", "TRANS", "FMA")
            for p in ("F16", "F32", "F64")
        },
    ),
    "branch": (
        "branch_result",
        5e-4,
        {
            "BR_MISP_RETIRED",
            "BR_INST_RETIRED:COND",
            "BR_INST_RETIRED:COND_TAKEN",
            "BR_INST_RETIRED:ALL_BRANCHES",
        },
    ),
    "dcache": (
        "dcache_result",
        5e-2,
        {
            "MEM_LOAD_RETIRED:L3_HIT",
            "L2_RQSTS:DEMAND_DATA_RD_HIT",
            "MEM_LOAD_RETIRED:L1_MISS",
            "MEM_LOAD_RETIRED:L1_HIT",
        },
    ),
}


@pytest.mark.parametrize("domain", sorted(EXPECTED))
def test_qrcp_selects_paper_events(benchmark, domain, results_dir, request):
    fixture, alpha, expected = EXPECTED[domain]
    result = request.getfixturevalue(fixture)
    x = result.representation.x_matrix
    names = result.representation.event_names

    qrcp = benchmark(lambda: qrcp_specialized(x, alpha=alpha))
    selected = {names[i] for i in qrcp.selected}
    assert selected == expected

    write_markdown(
        results_dir / f"sectionV_{domain}_selected_events.md",
        ["#", "Selected event"],
        [[i + 1, names[idx]] for i, idx in enumerate(qrcp.selected)],
        title=f"Section V selection for {domain} (alpha={alpha:g})",
    )


@pytest.mark.parametrize("domain", sorted(EXPECTED))
def test_qrcp_rank_matches_architecture(benchmark, domain, request):
    """Selections are square-or-overdetermined vs the basis (paper Sec. V):
    CPU 8 of 16 dims, GPU 12 of 15, branch 4 of 5, cache 4 of 4."""
    fixture, alpha, expected = EXPECTED[domain]
    result = request.getfixturevalue(fixture)
    rank = benchmark(lambda: result.qrcp.rank)
    assert rank == len(expected)
    assert rank <= result.representation.basis.n_dimensions
