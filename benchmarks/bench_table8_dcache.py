"""EXP-T8: Table VIII — data-cache metric definitions on SPR.

Shape criteria: all six metrics compose with tiny backward error; the
raw least-squares coefficients are *noisy* — within ~2% of {-1, 0, 1}
with small cross-terms (the paper's bound: within 2% of one or smaller
than 5.87e-3) — and Section VI-D's integer rounding recovers the exact
combinations.

Timed portion: metric composition over the noisy 4-event X-hat.
"""

import numpy as np
import pytest

from _helpers import write_metric_table
from repro.core.metrics import compose_metric, round_coefficients
from repro.core.signatures import dcache_signatures

PAPER_ROUNDED = {
    "L1 Misses.": {"MEM_LOAD_RETIRED:L1_MISS": 1.0},
    "L1 Hits.": {"MEM_LOAD_RETIRED:L1_HIT": 1.0},
    "L1 Reads.": {
        "MEM_LOAD_RETIRED:L1_MISS": 1.0,
        "MEM_LOAD_RETIRED:L1_HIT": 1.0,
    },
    "L2 Hits.": {"L2_RQSTS:DEMAND_DATA_RD_HIT": 1.0},
    "L2 Misses.": {
        "MEM_LOAD_RETIRED:L1_MISS": 1.0,
        "L2_RQSTS:DEMAND_DATA_RD_HIT": -1.0,
    },
    "L3 Hits.": {"MEM_LOAD_RETIRED:L3_HIT": 1.0},
}


def test_table8_metric_definitions(benchmark, dcache_result, results_dir):
    result = dcache_result
    signatures = dcache_signatures()

    def compose_all():
        return [
            compose_metric(s.name, result.x_hat, result.selected_events, s)
            for s in signatures
        ]

    metrics = benchmark(compose_all)
    write_metric_table(
        results_dir,
        "table8_dcache_metrics.md",
        "Table VIII: data-cache metrics (reproduced, raw least squares)",
        metrics,
    )

    for metric in metrics:
        # Tiny least-squares error despite the noise.
        assert metric.error < 1e-10, metric.metric
        # Coefficients within 2% of an integer, or below the paper's
        # 5.87e-3 cross-term bound.
        for c in metric.coefficients:
            nearest = round(c)
            close = abs(c - nearest) <= 0.02 * max(abs(nearest), 1.0)
            assert close or abs(c) < 5.87e-3, (metric.metric, c)
        # ...but NOT exactly integral: the noise is real.
        assert any(c != round(c) for c in metric.coefficients), metric.metric


def test_table8_rounding_recovers_exact_combinations(
    benchmark, dcache_result, results_dir
):
    result = dcache_result

    def snap_all():
        return {
            name: round_coefficients(m, x_hat=result.x_hat)
            for name, m in result.metrics.items()
        }

    rounded = benchmark(snap_all)
    write_metric_table(
        results_dir,
        "table8_dcache_metrics_rounded.md",
        "Table VIII after Section VI-D rounding (reproduced)",
        list(rounded.values()),
    )
    for name, expected in PAPER_ROUNDED.items():
        assert rounded[name].terms() == expected, name
