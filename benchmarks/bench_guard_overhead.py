"""EXP-GUARD: overhead of the numerical-robustness layer.

The guard's contract is "pure observation below the thresholds": on a
healthy catalog a guarded run is bit-identical to an unguarded one, so
its entire cost is the sentinel arithmetic (condition estimation over the
R factors) plus the leave-one-kernel-out certification refits.  This
bench puts numbers on both:

* the guarded vs unguarded specialized QRCP over the branch
  representation matrix (sentinels only — certification lives upstream);
* the guarded vs unguarded end-to-end analysis stages (QRCP through
  composition and certification) on precomputed measurements.

A results table records the measured ratio so regressions in the guard's
cost profile show up in review next to the tables it protects.
"""

import time

import numpy as np
import pytest

from repro.core.metrics import compose_metric
from repro.core.qrcp import qrcp_specialized
from repro.guard import GuardConfig, certify_metric
from repro.io.tables import write_markdown

ALPHA = 5e-4


@pytest.fixture(scope="module")
def x_matrix(branch_result):
    return branch_result.representation.x_matrix


def _analysis_stages(result, guard):
    """QRCP + composition (+ certification under a guard) on precomputed
    measurements — the exact stages the guard can slow down."""
    qrcp = qrcp_specialized(
        result.representation.x_matrix, alpha=ALPHA, guard=guard
    )
    selected_idx = qrcp.selected
    names = [result.representation.event_names[i] for i in selected_idx]
    x_hat = result.representation.x_matrix[:, selected_idx]
    kept_idx = {name: i for i, name in enumerate(result.noise.kept)}
    matrix = result.measurement.select_events(
        result.noise.kept
    ).measurement_matrix()
    m_sel = matrix[:, [kept_idx[name] for name in names]]
    basis = result.representation.basis
    for definition_full in result.metrics.values():
        definition = compose_metric(
            definition_full.metric,
            x_hat,
            names,
            definition_full.signature,
            guard=guard,
        )
        if guard is not None and guard.certify:
            certify_metric(
                definition_full.metric,
                basis.matrix,
                m_sel,
                definition_full.signature.coords,
                names,
                definition.coefficients,
                definition.error,
                config=guard,
            )


def test_guard_bit_identical_on_branch(x_matrix):
    plain = qrcp_specialized(x_matrix, alpha=ALPHA)
    guarded = qrcp_specialized(x_matrix, alpha=ALPHA, guard=GuardConfig())
    np.testing.assert_array_equal(guarded.permutation, plain.permutation)
    np.testing.assert_array_equal(guarded.r_factor, plain.r_factor)
    assert guarded.health is not None and guarded.health.guards_fired == ()


def test_qrcp_sentinel_overhead(benchmark, x_matrix):
    benchmark(lambda: qrcp_specialized(x_matrix, ALPHA, guard=GuardConfig()))


def test_analysis_guarded_overhead(benchmark, branch_result):
    benchmark(lambda: _analysis_stages(branch_result, GuardConfig()))


def test_write_overhead_table(branch_result, x_matrix, results_dir):
    def clock(fn, repeat=5):
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    rows = []
    plain = clock(lambda: qrcp_specialized(x_matrix, alpha=ALPHA))
    guarded = clock(
        lambda: qrcp_specialized(x_matrix, alpha=ALPHA, guard=GuardConfig())
    )
    rows.append(
        ["qrcp (sentinels only)", plain * 1e3, guarded * 1e3, guarded / plain]
    )
    plain = clock(lambda: _analysis_stages(branch_result, None))
    guarded = clock(lambda: _analysis_stages(branch_result, GuardConfig()))
    rows.append(
        ["analysis + certification", plain * 1e3, guarded * 1e3, guarded / plain]
    )
    write_markdown(
        results_dir / "guard_overhead.md",
        headers=["stage", "unguarded (ms)", "guarded (ms)", "ratio"],
        rows=rows,
        title="Guard-layer overhead on the branch domain (best of 5)",
    )
    # The guard must stay a rounding error next to measurement (~seconds);
    # certification dominates and is bounded by holdouts * selected fits.
    assert guarded / plain < 200.0
